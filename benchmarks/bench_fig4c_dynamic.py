"""Fig. 4c — dynamic faults: sensitization period vs accuracy.

A dynamic fault fires every n-th XNOR operation; the paper observes the
model's accuracy stabilizing back at its fault-free value by n ≈ 4.
"""

from repro.experiments import fig4

from .conftest import print_sweep_series

PERIODS = (0, 1, 2, 3, 4)
RATE = 0.15
REPEATS = 5
TEST_IMAGES = 400


def test_fig4c_dynamic_faults(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        return fig4.run_fig4c(lenet, test, periods=PERIODS, rate=RATE,
                              repeats=REPEATS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep_series(
        f"Fig. 4c: dynamic fault period vs accuracy (rate {RATE:.0%})",
        {"combined": result}, x_label="period", results_dir=results_dir,
        csv_name="fig4c_dynamic.csv", baseline=result.baseline)

    means = result.mean()
    # static faults (period 0) hurt the most; long periods approach baseline
    assert means[-1] > means[0]
    assert means[-1] > result.baseline - 0.10
