"""Ablation — mask-application semantics: OUTPUT (fast) vs PRODUCT (exact).

FLIM's contribution is abstracting faults to the XNOR-operation level,
"trad[ing] simulation accuracy with noteworthy performance improvement".
This ablation quantifies both sides of that trade on the LeNet workload:
accuracy estimates under each semantics and the runtime gap between them.
"""

import time

import numpy as np

from repro.analysis import markdown_table, write_csv
from repro.core import FaultCampaign, FaultSpec, Semantics

RATE = 0.10
REPEATS = 3
TEST_IMAGES = 200


def test_ablation_semantics(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)
    campaign = FaultCampaign(lenet, test.x, test.y, rows=40, cols=10)

    def sweep(semantics):
        start = time.perf_counter()
        result = campaign.run(
            lambda r: FaultSpec.bitflip(r, semantics=semantics),
            xs=[RATE], repeats=REPEATS, layers=["conv1"],
            label=semantics.value)
        return result, time.perf_counter() - start

    def run_both():
        return sweep(Semantics.OUTPUT), sweep(Semantics.PRODUCT)

    (fast, fast_time), (exact, exact_time) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    rows = [
        ("output (FLIM fast path)", 100 * fast.mean()[0],
         100 * fast.std()[0], fast_time),
        ("product (device-true)", 100 * exact.mean()[0],
         100 * exact.std()[0], exact_time),
    ]
    print(f"\n=== Ablation: semantics level (bit-flips at {RATE:.0%}, conv1) ===")
    print(markdown_table(["semantics", "accuracy %", "std %", "runtime s"], rows))
    write_csv(results_dir / "ablation_semantics.csv",
              ["semantics", "accuracy_pct", "std_pct", "runtime_s"], rows)

    # both semantics must show degradation relative to the baseline
    assert fast.mean()[0] < fast.baseline
    assert exact.mean()[0] < exact.baseline
    assert np.isfinite(fast_time) and np.isfinite(exact_time)
