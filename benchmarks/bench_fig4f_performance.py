"""Fig. 4f — runtime: X-Fault (device level) vs FLIM vs vanilla.

Paper protocol: LeNet inference over the MNIST test set; FLIM and vanilla
run full passes, the device-level baseline is measured on a few images
and extrapolated ("we estimate the total run time of X-Fault based on
five images").  The paper reports FLIM 29375× faster than X-Fault on CPU;
the expected shape here is FLIM ≈ vanilla and 3-5 orders of magnitude
faster than the device-level path.

Also prints the Table-I equivalent (adopted experimental setup).
"""

from repro.analysis import ascii_bars, write_csv
from repro.experiments import fig4
from repro.experiments.tables import table1_setup

PASSES = 2          # paper: fifty passes; scaled for CPU
XFAULT_IMAGES = 2   # paper: five images
TEST_IMAGES = 400


def test_fig4f_performance(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    print("\n=== Table I: adopted experimental setup ===")
    for key, value in table1_setup():
        print(f"  {key:22s} {value}")

    def run():
        return fig4.run_fig4f(lenet, test, passes=PASSES,
                              xfault_images=XFAULT_IMAGES)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Fig. 4f: runtime for {outcome['images']} images ===")
    for sample in outcome["samples"]:
        print(f"  {sample.describe()}")
    rows = []
    chart = {}
    for platform, seconds, speedup in outcome["table"]:
        print(f"  {platform:8s} {seconds:12.4g} s   speedup vs X-Fault: "
              f"{speedup:10.1f}x")
        rows.append((platform, seconds, speedup))
        chart[platform] = seconds
    print(ascii_bars(chart, title="runtime (log scale)", log=True, unit="s"))
    write_csv(results_dir / "fig4f_performance.csv",
              ["platform", "seconds", "speedup_vs_xfault"], rows)

    by_name = {platform: speedup for platform, _, speedup in outcome["table"]}
    # the paper's headline shape: FLIM orders of magnitude above X-Fault
    # (paper: 29375x on CPU), and within a small factor of vanilla
    assert by_name["FLIM"] > 1000.0
    assert by_name["FLIM"] > by_name["device-tile"] > by_name["X-Fault"]
    assert by_name["vanilla"] >= by_name["FLIM"] * 0.5
