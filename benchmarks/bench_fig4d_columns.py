"""Fig. 4d — impact of faulty crossbar columns, per layer (40×10 crossbar).

Expected shape (paper findings): accuracy declines with the number of
faulty columns, the deepest mapped layer (dense1) almost linearly, and
columns hit substantially harder than rows (compare Fig. 4e) — a faulty
column on a 40×10 crossbar covers 40 mask cells, a faulty row only 10,
matching the column-wise parallelism of the XNOR mapping.
"""

import pytest

from repro.experiments import fig4

from .conftest import print_sweep_series

COUNTS = (0, 1, 2, 3, 4)
REPEATS = 5
TEST_IMAGES = 400


def test_fig4d_faulty_columns(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        return fig4.run_fig4d(lenet, test, counts=COUNTS, repeats=REPEATS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = next(iter(results.values())).baseline
    print_sweep_series(
        "Fig. 4d: faulty columns vs accuracy (per layer)", results,
        x_label="columns", results_dir=results_dir,
        csv_name="fig4d_columns.csv", baseline=baseline)

    for label, result in results.items():
        assert result.mean()[0] == pytest.approx(baseline), label
        assert result.mean()[-1] < baseline, label
