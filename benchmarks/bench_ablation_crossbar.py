"""Ablation — crossbar geometry: reuse amplification of permanent faults.

A fixed *number* of stuck cells hurts more on a smaller crossbar: fewer
cells execute the same op stream, so each faulty cell covers a larger
share of the layer's weights (DESIGN.md §3).  This ablation fixes 16
stuck cells and sweeps the crossbar size.
"""

from repro.analysis import markdown_table, write_csv
from repro.core import FaultCampaign, FaultSpec, StuckPolarity

GEOMETRIES = ((20, 5), (40, 10), (80, 20))
STUCK_CELLS = 16
REPEATS = 3
TEST_IMAGES = 200


def test_ablation_crossbar_size(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        outcomes = []
        for rows, cols in GEOMETRIES:
            rate = STUCK_CELLS / (rows * cols)
            campaign = FaultCampaign(lenet, test.x, test.y,
                                     rows=rows, cols=cols)
            result = campaign.run(
                lambda _x: FaultSpec.stuck_at(rate,
                                              polarity=StuckPolarity.RANDOM),
                xs=[0], repeats=REPEATS, label=f"{rows}x{cols}")
            outcomes.append(((rows, cols), result))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows_out = []
    print(f"\n=== Ablation: crossbar size at {STUCK_CELLS} stuck cells ===")
    for (rows, cols), result in outcomes:
        reuse_note = rows * cols
        rows_out.append((f"{rows}x{cols}", reuse_note,
                         100 * result.mean()[0], 100 * result.std()[0]))
    print(markdown_table(
        ["crossbar", "cells", "accuracy %", "std %"], rows_out))
    write_csv(results_dir / "ablation_crossbar_size.csv",
              ["crossbar", "cells", "accuracy_pct", "std_pct"], rows_out)

    accuracies = [result.mean()[0] for _, result in outcomes]
    # more cells -> lower per-cell coverage -> (weakly) better accuracy
    assert accuracies[-1] >= accuracies[0] - 0.02


def test_ablation_mask_caching(benchmark, lenet, mnist_test, results_dir):
    """Paper claim: offline mask generation 'significantly improves
    performance because the expensive mapping and distribution of faults
    are performed once and reused over the whole simulation'."""
    import time

    import numpy as np

    from repro.core import FaultGenerator, FaultInjector

    test = mnist_test.subset(TEST_IMAGES)
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=40, cols=10, seed=0)

    def cached():
        plan = generator.generate(lenet)       # generated once...
        injector = FaultInjector()
        with injector.injecting(lenet, plan):
            for _ in range(5):                 # ...reused across passes
                lenet.predict(test.x)

    def regenerated():
        injector = FaultInjector()
        for _ in range(5):
            plan = generator.generate(lenet)   # rebuilt every pass
            with injector.injecting(lenet, plan):
                lenet.predict(test.x)

    start = time.perf_counter()
    cached()
    cached_time = time.perf_counter() - start
    start = time.perf_counter()
    regenerated()
    regen_time = time.perf_counter() - start
    benchmark.pedantic(cached, rounds=1, iterations=1)

    print("\n=== Ablation: offline vs per-pass mask generation ===")
    print(f"  cached masks:      {cached_time:.3f}s / 5 passes")
    print(f"  regenerated masks: {regen_time:.3f}s / 5 passes")
    write_csv(results_dir / "ablation_mask_caching.csv",
              ["mode", "seconds"],
              [("cached", cached_time), ("regenerated", regen_time)])
    assert np.isfinite(cached_time) and np.isfinite(regen_time)
