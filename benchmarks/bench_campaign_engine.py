"""Campaign-engine benchmark: seed serial loop vs the job-based engine.

Runs a Fig. 4a-style sweep (bit-flip rates × repetitions on the trained
binary LeNet / synthetic MNIST) through

* the **seed** execution strategy — the pre-engine serial triple loop:
  per-repetition fault generation inside the loop, a fresh injector
  mapping per attach, a full ``model.evaluate`` per repetition and a
  baseline recomputation per ``run()``;
* the job-based **engine** (``repro.core.engine``) in every
  executor × backend combination (serial / multiprocessing /
  shared_memory × float / packed).

Besides wall-clock speedups the JSON tracks the **payload bytes** each
pool executor pickles into a worker (shared memory must beat the pickled
baseline — the script fails otherwise), the **prefix planes** the
shared-memory executor publishes (workers must attach the parent's
fault-free prefix activations instead of recomputing them — the script
fails if nothing was published), the **input-cache hit rate** of a
campaign with more test batches than the legacy 8-slot FIFO held (must
be >0%, where the FIFO cycled at exactly 0%), the **journal
overhead**: the cost of streaming cells into a resumable JSONL journal
plus the cost of resuming a completed journal (which evaluates nothing),
and the **telemetry overhead**: the same grid instrumented with a
``repro.obs.Observability`` (spans, counters, per-cell evaluate traces)
must stay within 2% of the shielded ``obs=None`` run.

All strategies must agree bit-for-bit; the script fails (exit code 1) if
they do not, so the reported speedups are guaranteed to be
like-for-like.  Results are written as JSON for trend tracking::

    python benchmarks/bench_campaign_engine.py --quick --json out.json

Usage (full protocol: 4 rates x 10 repeats, 800 test images)::

    python benchmarks/bench_campaign_engine.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (FaultCampaign, FaultGenerator, FaultInjector,  # noqa: E402
                        FaultSpec)
from repro.experiments.common import get_mnist, trained_lenet  # noqa: E402
from repro.obs import Observability, activated  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "artifacts" / "results"


def seed_engine_run(model, x_test, y_test, xs, repeats, seed,
                    rows=40, cols=10, batch_size=256):
    """The seed repo's FaultCampaign.run, replicated strategy-for-strategy."""
    injector = FaultInjector(True)
    injector._mapping_cache = _NoCache()  # seed rebuilt mappings per attach
    accuracies = np.zeros((len(xs), repeats), dtype=np.float64)
    for i, x_value in enumerate(xs):
        specs = FaultSpec.bitflip(x_value)
        for j in range(repeats):
            generator = FaultGenerator(specs, rows=rows, cols=cols,
                                       seed=seed + 7919 * j + 104729 * i)
            plan = generator.generate(model)
            with injector.injecting(model, plan):
                accuracies[i, j] = model.evaluate(x_test, y_test, batch_size)
    baseline = model.evaluate(x_test, y_test, batch_size)  # per-run recompute
    return accuracies, baseline


class _NoCache(dict):
    """A dict that forgets: restores the seed's per-attach mapping rebuild."""

    def __setitem__(self, key, value):
        pass


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid (2 rates x 3 repeats, 200 images) "
                             "for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--images", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the multiprocessing executor "
                             "(default: cpu count)")
    parser.add_argument("--json", type=Path, default=None,
                        help="output path (default: "
                             "artifacts/results/bench_campaign_engine.json)")
    args = parser.parse_args(argv)

    if args.quick:
        rates = [0.0, 0.2]
        repeats = args.repeats or 3
        images = args.images or 200
    else:
        rates = [0.0, 0.1, 0.2, 0.3]
        repeats = args.repeats or 10
        images = args.images or 800
    seed = 0

    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(images)
    # at least two workers so the pool paths are exercised even on
    # single-core containers (where the speedup is simply ~1x)
    n_jobs = args.jobs or max(2, os.cpu_count() or 1)

    print(f"grid: {len(rates)} rates x {repeats} repeats on {images} images "
          f"(cpu count {os.cpu_count()})")

    (seed_acc, seed_baseline), seed_time = timed(
        seed_engine_run, model, test.x, test.y, rates, repeats, seed)
    print(f"seed serial engine          : {seed_time:7.2f} s")

    timings: dict[str, float] = {"seed_serial": seed_time}
    payload_bytes: dict[str, int] = {}
    prefix_planes: dict[str, dict] = {}
    resilience: dict[str, dict] = {}
    mismatches: list[str] = []
    for executor, backend in [("serial", "float"), ("serial", "packed"),
                              ("multiprocessing", "float"),
                              ("multiprocessing", "packed"),
                              ("shared_memory", "float"),
                              ("shared_memory", "packed")]:
        campaign = FaultCampaign(model, test.x, test.y, executor=executor,
                                 n_jobs=n_jobs, backend=backend)
        result, duration = timed(
            campaign.run, FaultSpec.bitflip, xs=rates, repeats=repeats,
            seed=seed)
        key = f"engine_{executor}_{backend}"
        timings[key] = duration
        shipped = getattr(campaign._executor, "payload_bytes", None)
        if shipped is not None:
            payload_bytes[f"{executor}_{backend}"] = shipped
        planes = result.meta.get("prefix_plane")
        if planes is not None:
            prefix_planes[f"{executor}_{backend}"] = planes
        # a timing measured through retries, rebuilds or a degraded rung
        # is not a timing of the named executor — record and reject it
        # (the zeroed resilience block is always attached; only nonzero
        # counters mean the supervisor actually intervened)
        interference = result.meta.get("resilience") or {}
        disturbed = (interference.get("retries")
                     or interference.get("timeouts")
                     or interference.get("workers_lost")
                     or interference.get("quarantined")
                     or interference.get("degraded"))
        if disturbed:
            resilience[f"{executor}_{backend}"] = interference
            mismatches.append(f"supervision_interfered_{key}")
            print(f"FAIL: supervision interfered with {key}: "
                  f"{interference}", file=sys.stderr)
        identical = (np.array_equal(result.accuracies, seed_acc)
                     and result.baseline == seed_baseline)
        if not identical:
            mismatches.append(key)
        print(f"engine {executor:16s}/{backend:6s}: {duration:7.2f} s  "
              f"bit-identical={identical}"
              + (f"  payload={shipped}B" if shipped else "")
              + (f"  planes={planes['batches']}" if planes else ""))
        campaign.close()  # unlink the published shared-memory planes
    model.set_execution_backend("float")

    # the shared-memory executor must have published prefix activation
    # planes for the workers to attach (no per-worker prefix recompute)
    for key in ("shared_memory_float", "shared_memory_packed"):
        planes = prefix_planes.get(key)
        if not planes or planes.get("batches", 0) <= 0:
            mismatches.append(f"prefix_planes_missing_{key}")
            print(f"FAIL: no prefix activation planes published for {key}",
                  file=sys.stderr)

    shm_payload = payload_bytes.get("shared_memory_float")
    mp_payload = payload_bytes.get("multiprocessing_float")
    if shm_payload and mp_payload and shm_payload >= mp_payload:
        mismatches.append("shared_memory_payload_not_smaller")
        print(f"FAIL: shared-memory payload ({shm_payload} B) does not "
              f"undercut the pickled baseline ({mp_payload} B)",
              file=sys.stderr)

    # journal overhead: stream every cell to JSONL, then resume the
    # finished journal (pure replay — zero evaluations)
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "bench_journal.jsonl"
        campaign = FaultCampaign(model, test.x, test.y)
        journaled, journal_time = timed(
            campaign.run, FaultSpec.bitflip, xs=rates, repeats=repeats,
            seed=seed, journal=journal_path)
        resumed, resume_time = timed(
            campaign.run, FaultSpec.bitflip, xs=rates, repeats=repeats,
            seed=seed, journal=journal_path)
        resume_identical = (
            np.array_equal(journaled.accuracies, seed_acc)
            and np.array_equal(resumed.accuracies, journaled.accuracies)
            and resumed.meta["resumed_cells"] == len(rates) * repeats)
        if not resume_identical:
            mismatches.append("journal_resume")
    timings["engine_serial_float_journaled"] = journal_time
    timings["journal_full_resume"] = resume_time
    print(f"journaled serial/float      : {journal_time:7.2f} s  "
          f"(full resume {resume_time:.3f} s, "
          f"bit-identical={resume_identical})")

    # input-representation cache on a suffix split with more test batches
    # than the legacy 8-slot FIFO held: the FIFO cycled at a 0% hit rate,
    # the campaign-sized cache must hit on every repetition after the first
    cache_batch_size = max(1, images // 10)  # > 8 batches by construction
    n_batches = -(-images // cache_batch_size)
    campaign = FaultCampaign(model, test.x, test.y,
                             batch_size=cache_batch_size)
    cache_result, cache_time = timed(
        campaign.run, FaultSpec.bitflip, xs=rates, repeats=repeats,
        seed=seed)
    cache_stats = campaign.input_cache_stats()
    timings["engine_serial_float_small_batches"] = cache_time
    # static bit-flips are batch-size independent: the small-batch grid
    # must still reproduce the seed accuracies bit-for-bit
    if not np.array_equal(cache_result.accuracies, seed_acc):
        mismatches.append("input_cache_run")
    if cache_stats["hit_rate"] <= 0.0:
        mismatches.append("input_cache_hit_rate_zero")
        print(f"FAIL: input-cache hit rate is 0 on a {n_batches}-batch "
              "campaign", file=sys.stderr)
    print(f"input cache ({n_batches} batches of {cache_batch_size}): "
          f"hit rate {100 * cache_stats['hit_rate']:.1f}% "
          f"({cache_stats['hits']} hits / {cache_stats['misses']} misses, "
          f"{cache_stats['bytes']} B pinned)")

    # telemetry overhead: the obs layer must be ~free.  The serial/float
    # grid runs instrumented (a fresh Observability per run — campaign/
    # plan/dispatch/reduce spans, one evaluate span and counter update
    # per cell) and shielded (ambient observability explicitly
    # deactivated); best-of-3 each so scheduler noise is not billed to
    # the instrumentation.  Past 2% the layer stopped being free.
    uninstrumented_s = instrumented_s = float("inf")
    for _ in range(3):
        with activated(None):
            plain_result, plain_t = timed(
                FaultCampaign(model, test.x, test.y).run,
                FaultSpec.bitflip, xs=rates, repeats=repeats, seed=seed)
        uninstrumented_s = min(uninstrumented_s, plain_t)
        obs_result, obs_t = timed(
            FaultCampaign(model, test.x, test.y, obs=Observability()).run,
            FaultSpec.bitflip, xs=rates, repeats=repeats, seed=seed)
        instrumented_s = min(instrumented_s, obs_t)
        if not (np.array_equal(plain_result.accuracies, seed_acc)
                and np.array_equal(obs_result.accuracies, seed_acc)):
            mismatches.append("telemetry_overhead_run")
            print("FAIL: telemetry-overhead runs diverged from the seed "
                  "accuracies", file=sys.stderr)
            break
    overhead_pct = (100.0 * (instrumented_s - uninstrumented_s)
                    / uninstrumented_s)
    if overhead_pct > 2.0:
        mismatches.append("telemetry_overhead")
        print(f"FAIL: telemetry overhead {overhead_pct:.2f}% exceeds the "
              "2% budget", file=sys.stderr)
    print(f"telemetry overhead          : {overhead_pct:+6.2f}%  "
          f"(off {uninstrumented_s:.2f} s, on {instrumented_s:.2f} s, "
          "best of 3)")

    report = {
        "protocol": {"rates": rates, "repeats": repeats, "images": images,
                     "seed": seed, "model": "binary_lenet",
                     "dataset": "synth_mnist"},
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform(),
                    "python": platform.python_version(),
                    "numpy": np.__version__},
        "timings_s": {k: round(v, 4) for k, v in timings.items()},
        "speedup_vs_seed": {
            k: round(timings["seed_serial"] / v, 2)
            for k, v in timings.items()
            if k not in ("seed_serial", "journal_full_resume")},
        "serial_vs_parallel": round(
            timings["engine_serial_float"]
            / timings["engine_multiprocessing_float"], 2),
        "serial_vs_shared_memory": round(
            timings["engine_serial_float"]
            / timings["engine_shared_memory_float"], 2),
        "float_vs_packed": round(
            timings["engine_serial_float"] / timings["engine_serial_packed"],
            2),
        "payload_bytes": payload_bytes,
        "prefix_plane": prefix_planes,
        "resilience": resilience,  # empty on a clean (undisturbed) run
        "input_cache": {
            "batch_size": cache_batch_size,
            "batches": n_batches,
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
            "cache_hit_rate": round(cache_stats["hit_rate"], 4),
            "bytes": cache_stats["bytes"],
        },
        "journal": {
            "overhead_s": round(
                timings["engine_serial_float_journaled"]
                - timings["engine_serial_float"], 4),
            "full_resume_s": round(timings["journal_full_resume"], 4),
        },
        "telemetry_overhead": {
            "uninstrumented_s": round(uninstrumented_s, 4),
            "instrumented_s": round(instrumented_s, 4),
            "overhead_pct": round(overhead_pct, 2),
        },
        "n_jobs": n_jobs,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }

    out = args.json or (RESULTS_DIR / "bench_campaign_engine.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nbest speedup vs seed engine: "
          f"{max(report['speedup_vs_seed'].values()):.2f}x")
    print(f"[json] {out}")
    if mismatches:
        print(f"FAIL: results diverged for {mismatches}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
