"""Fig. 5b — stuck-at resilience of the nine Table-II architectures.

The paper sweeps stuck-at rates over 0-2% — an order of magnitude tighter
than the 0-20% bit-flip axis — because permanent faults are amplified by
cell reuse.  Expected shape: visible degradation already within this
tight range, confirming stuck-at ≫ bit-flip per unit rate.
"""

from repro.experiments import fig5

from .conftest import print_sweep_series

RATES = (0.0, 0.005, 0.01, 0.02)
REPEATS = 2
TEST_IMAGES = 100


def test_fig5b_models_stuckat(benchmark, imagenet_test, results_dir):
    test = imagenet_test.subset(TEST_IMAGES)

    def run():
        return fig5.run_fig5b(rates=RATES, repeats=REPEATS, test=test)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep_series(
        "Fig. 5b: stuck-at rate vs accuracy (per model)", results,
        x_label="rate", results_dir=results_dir,
        csv_name="fig5b_models_stuckat.csv")

    for name, result in results.items():
        assert result.mean()[-1] <= result.mean()[0], name
