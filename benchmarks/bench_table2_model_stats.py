"""Table II — characteristics of the nine BNN models.

Prints the reproduction's measured values side by side with the paper's
reference numbers (absolute sizes differ — our models are scaled for CPU
training — but the binarized fractions and relative ordering must hold).
"""

from repro.analysis import markdown_table, write_csv
from repro.experiments.tables import table2_model_stats


def test_table2_model_stats(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_model_stats(measure_accuracy=True),
        rounds=1, iterations=1)

    header = ["model", "top1%", "size MB", "params", "MACs", "binarized%",
              "paper top1%", "paper size MB", "paper params", "paper MACs",
              "paper bin%"]
    table_rows = [
        (r["model"], r["top1_pct"], r["size_mb"], r["params"], r["macs"],
         r["binarized_pct"], r["paper_top1_pct"], r["paper_size_mb"],
         r["paper_params"], r["paper_macs"], r["paper_binarized_pct"])
        for r in rows
    ]
    print("\n=== Table II: BNN models and their characteristics ===")
    print(markdown_table(header, table_rows))
    write_csv(results_dir / "table2_model_stats.csv", header, table_rows)

    by_name = {r["model"]: r for r in rows}
    # Table II invariants that must survive the scaling:
    # densenet depth ordering by size
    assert (by_name["binary_densenet45"]["size_mb"]
            > by_name["binary_densenet37"]["size_mb"]
            > by_name["binary_densenet28"]["size_mb"])
    # every model stays overwhelmingly binarized
    for row in rows:
        assert row["binarized_pct"] > 85.0, row["model"]
    # every model must have learned the task (well above 10% chance)
    for row in rows:
        assert row["top1_pct"] > 30.0, row["model"]
