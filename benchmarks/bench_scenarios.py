"""Scenario-subsystem benchmark: compiled grids through the engine.

Runs a zoo lifetime scenario (``end-of-life``) through every
executor × backend combination and fails (exit 1) unless all
trajectories are bit-identical to the serial float reference — the
compiled-grid path must inherit the engine's determinism contract
wholesale.  Also measures:

* **compile time** — lowering a scenario must be negligible against a
  single campaign cell;
* **correlation effect** — the ``clustered-variation-attack`` scenario
  against an i.i.d. twin at identical rates: the JSON records the mean
  absolute accuracy gap, the quantity the spatial-correlation literature
  (arXiv:2302.09902) shows is non-zero;
* **journal round-trip** — a journaled scenario run resumed from a
  completed journal must replay bit-identically with zero evaluations;
* **API-layer parity** — the registered ``end-of-life`` entry
  (``repro.api``) must stream exactly one ``CellDone`` event per grid
  cell plus one ``CheckpointDone`` per device age, and reproduce the
  direct ``run_scenario`` trajectory bit-for-bit.

Usage::

    python benchmarks/bench_scenarios.py --quick --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import get_mnist, trained_lenet  # noqa: E402
from repro.scenarios import (compile_scenario, get_scenario,  # noqa: E402
                             run_scenario)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "artifacts" / "results"


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def iid_twin(scenario):
    """The same scenario with every clause forced to i.i.d. placement."""
    clauses = tuple(replace(c, spatial="iid", cluster_size=0)
                    for c in scenario.clauses)
    return replace(scenario, name=scenario.name + "-iid", clauses=clauses)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small protocol (2 repeats, 200 images) for "
                             "CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--images", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 5)
    images = args.images or (200 if args.quick else 800)
    n_jobs = args.jobs or max(2, os.cpu_count() or 1)
    seed = 0

    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(images)

    scenario = get_scenario("end-of-life")
    grid, compile_time = timed(compile_scenario, scenario, model)
    print(f"compile end-of-life: {1e3 * compile_time:.2f} ms "
          f"({len(grid.cells)} cells)")

    timings: dict[str, float] = {"compile_s": compile_time}
    mismatches: list[str] = []
    reference = None
    for executor, backend in [("serial", "float"), ("serial", "packed"),
                              ("multiprocessing", "float"),
                              ("shared_memory", "packed")]:
        result, duration = timed(
            run_scenario, scenario, model, test.x, test.y, repeats=repeats,
            seed=seed, executor=executor, n_jobs=n_jobs, backend=backend)
        key = f"{executor}_{backend}"
        timings[key] = duration
        if reference is None:
            reference = result
            identical = True
        else:
            identical = (np.array_equal(result.accuracies,
                                        reference.accuracies)
                         and result.baseline == reference.baseline)
        if not identical:
            mismatches.append(key)
        print(f"scenario {executor:16s}/{backend:6s}: {duration:7.2f} s  "
              f"bit-identical={identical}")
    model.set_execution_backend("float")

    # correlation effect: clustered placement vs an i.i.d. twin at the
    # exact same per-checkpoint rates
    attack = get_scenario("clustered-variation-attack")
    clustered, clustered_time = timed(
        run_scenario, attack, model, test.x, test.y, repeats=repeats,
        seed=seed)
    iid, iid_time = timed(
        run_scenario, iid_twin(attack), model, test.x, test.y,
        repeats=repeats, seed=seed)
    gap = np.abs(clustered.accuracies.mean(axis=2)
                 - iid.accuracies.mean(axis=2))
    timings["clustered_attack"] = clustered_time
    timings["iid_twin"] = iid_time
    print(f"clustered vs iid placement : mean |gap| {100 * gap.mean():.2f}% "
          f"(max {100 * gap.max():.2f}%)")

    # journal round-trip: resume of a completed scenario journal replays
    # without evaluating anything and reproduces the result bit-for-bit
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "scenario.jsonl"
        journaled, journal_time = timed(
            run_scenario, scenario, model, test.x, test.y, repeats=repeats,
            seed=seed, journal=journal)
        resumed, resume_time = timed(
            run_scenario, scenario, model, test.x, test.y, repeats=repeats,
            seed=seed, journal=journal)
        cells = len(grid.cells) * repeats
        if not (np.array_equal(journaled.accuracies, reference.accuracies)
                and np.array_equal(resumed.accuracies, journaled.accuracies)
                and resumed.sweep.meta["resumed_cells"] == cells):
            mismatches.append("journal_resume")
    timings["journaled"] = journal_time
    timings["journal_full_resume"] = resume_time
    print(f"journaled serial/float     : {journal_time:7.2f} s "
          f"(full resume {resume_time:.3f} s)")

    # API-layer parity: the registered entry streams typed events over
    # the same engine and must not change a single number
    from repro import api
    events: list = []
    handle = api.submit(api.RunRequest(
        "end-of-life", params={"repeats": repeats, "images": images}))
    handle.subscribe(events.append)
    api_report, api_time = timed(handle.run)
    timings["api_run"] = api_time
    cell_events = sum(isinstance(e, api.CellDone) for e in events)
    checkpoint_events = sum(isinstance(e, api.CheckpointDone)
                            for e in events)
    expected_cells = len(grid.cells) * repeats
    api_identical = (
        np.array_equal(api_report.raw.accuracies, reference.accuracies)
        and cell_events == expected_cells
        and checkpoint_events == grid.n_checkpoints)
    if not api_identical:
        mismatches.append("api_run")
    print(f"api end-of-life entry      : {api_time:7.2f} s  "
          f"({cell_events} CellDone, {checkpoint_events} CheckpointDone, "
          f"bit-identical={api_identical})")

    report = {
        "protocol": {"scenario": "end-of-life", "cells": len(grid.cells),
                     "repeats": repeats, "images": images, "seed": seed,
                     "model": "binary_lenet", "dataset": "synth_mnist"},
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform(),
                    "python": platform.python_version(),
                    "numpy": np.__version__},
        "timings_s": {k: round(v, 4) for k, v in timings.items()},
        "trajectory": {
            "ages": reference.ages,
            "nominal_accuracy": [round(float(a), 6)
                                 for a in reference.trajectory()],
            "baseline": round(float(reference.baseline), 6),
        },
        "correlation_effect": {
            "scenario": "clustered-variation-attack",
            "mean_abs_gap": round(float(gap.mean()), 6),
            "max_abs_gap": round(float(gap.max()), 6),
        },
        "api": {
            "cell_events": cell_events,
            "checkpoint_events": checkpoint_events,
            "bit_identical": api_identical,
        },
        "n_jobs": n_jobs,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    out = args.json or (RESULTS_DIR / "bench_scenarios.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[json] {out}")
    if mismatches:
        print(f"FAIL: results diverged for {mismatches}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
