"""Fig. 4e — impact of faulty crossbar rows, per layer (40×10 crossbar).

Expected shape (paper findings): graceful, near-monotonic decline, much
milder than the faulty-column study of Fig. 4d at comparable cell counts.
"""

import pytest

import numpy as np

from repro.experiments import fig4

from .conftest import print_sweep_series

COUNTS = (0, 4, 8, 12, 16, 20)
REPEATS = 5
TEST_IMAGES = 400


def test_fig4e_faulty_rows(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        return fig4.run_fig4e(lenet, test, counts=COUNTS, repeats=REPEATS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = next(iter(results.values())).baseline
    print_sweep_series(
        "Fig. 4e: faulty rows vs accuracy (per layer)", results,
        x_label="rows", results_dir=results_dir,
        csv_name="fig4e_rows.csv", baseline=baseline)

    # cross-figure check: same #cells as columns hurts less via rows.
    # 4 faulty columns = 160 cells; 16 faulty rows = 160 cells.
    per_layer_row_acc = np.mean([r.mean()[COUNTS.index(16)]
                                 for r in results.values()])
    print(f"mean accuracy at 16 faulty rows (160 cells): "
          f"{100 * per_layer_row_acc:.1f}%")
    for label, result in results.items():
        assert result.mean()[0] == pytest.approx(baseline), label
