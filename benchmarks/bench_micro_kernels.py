"""Micro-benchmarks of the computational kernels.

Not a paper figure — these quantify the building blocks that make FLIM's
fast path fast: binary GEMM formulations, mask generation/application and
the device-level gate program they replace.
"""

import numpy as np
import pytest

from repro.binary import bitops
from repro.core import FaultSpec, assemble_layer_masks
from repro.core.semantics import apply_output_flips
from repro.lim import Crossbar, CrossbarConfig, ideal_device_params
from repro.nn import ops


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_float_binary_gemm(benchmark, rng):
    """Float GEMM on bipolar operands — FLIM's fast-path formulation."""
    a = rng.choice([-1.0, 1.0], size=(256, 512)).astype(np.float32)
    b = rng.choice([-1.0, 1.0], size=(512, 128)).astype(np.float32)
    benchmark(lambda: a @ b)


def test_bench_packed_xnor_gemm(benchmark, rng):
    """Bit-packed XNOR/popcount GEMM — the bit-exact integer formulation."""
    a = rng.choice([-1.0, 1.0], size=(256, 512)).astype(np.float32)
    b = rng.choice([-1.0, 1.0], size=(512, 128)).astype(np.float32)
    benchmark(lambda: bitops.binary_matmul(a, b))


def test_bench_im2col_conv(benchmark, rng):
    """The convolution kernel used by every mapped conv layer."""
    x = rng.standard_normal((16, 28, 28, 8)).astype(np.float32)
    kernel = rng.standard_normal((5, 5, 8, 16)).astype(np.float32)
    benchmark(lambda: ops.conv2d(x, kernel, 1, "valid"))


def test_bench_mask_generation(benchmark, rng):
    """Offline fault-mask construction (the Fault Generator's hot loop)."""
    specs = [FaultSpec.bitflip(0.1), FaultSpec.stuck_at(0.05)]

    def build():
        return assemble_layer_masks(40, 10, specs, np.random.default_rng(0))

    benchmark(build)


def test_bench_mask_application(benchmark, rng):
    """Online mask application — the only per-inference cost FLIM adds."""
    feature_map = rng.standard_normal((64, 8, 8, 16)).astype(np.float32)
    selector = rng.random(8 * 8 * 16) < 0.1
    benchmark(lambda: apply_output_flips(feature_map, selector))


def test_bench_device_level_tile(benchmark, rng):
    """One device-level crossbar evaluation (11-step IMPLY program).

    Comparing this against the mask-application benchmark explains the
    orders of magnitude in Fig. 4f.
    """
    xbar = Crossbar(CrossbarConfig(rows=40, cols=10,
                                   device=ideal_device_params()))
    a = rng.integers(0, 2, (40, 10)).astype(np.uint8)
    b = rng.integers(0, 2, (40, 10)).astype(np.uint8)
    benchmark(lambda: xbar.compute_xnor(a, b))


def test_bench_fault_vector_io(benchmark, rng, tmp_path):
    """Serialization round-trip of an annotated fault-vector file."""
    from repro.core import load_fault_vectors, save_fault_vectors
    plan = {f"layer{i}": assemble_layer_masks(
        40, 10, [FaultSpec.bitflip(0.1)], np.random.default_rng(i))
        for i in range(4)}
    path = tmp_path / "plan.flim"

    def roundtrip():
        save_fault_vectors(path, plan)
        return load_fault_vectors(path)

    benchmark(roundtrip)
