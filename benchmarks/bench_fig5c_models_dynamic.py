"""Fig. 5c — dynamic-fault resilience of the nine Table-II architectures.

Expected shape (paper findings): accuracy recovers toward the fault-free
value as the sensitization period grows.
"""

from repro.experiments import fig5

from .conftest import print_sweep_series

PERIODS = (0, 2, 4)
RATE = 0.15
REPEATS = 2
TEST_IMAGES = 100


def test_fig5c_models_dynamic(benchmark, imagenet_test, results_dir):
    test = imagenet_test.subset(TEST_IMAGES)

    def run():
        return fig5.run_fig5c(periods=PERIODS, rate=RATE, repeats=REPEATS,
                              test=test)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep_series(
        f"Fig. 5c: dynamic fault period vs accuracy (rate {RATE:.0%})",
        results, x_label="period", results_dir=results_dir,
        csv_name="fig5c_models_dynamic.csv")

    # recovery with period: robust to per-model sampling noise at these
    # reduced repeat counts — the mean across architectures must recover,
    # and so must a clear majority of individual models
    import numpy as np

    static = np.mean([result.mean()[0] for result in results.values()])
    relaxed = np.mean([result.mean()[-1] for result in results.values()])
    assert relaxed > static
    recovering = sum(result.mean()[-1] >= result.mean()[0] - 0.02
                     for result in results.values())
    assert recovering >= 7, f"only {recovering}/9 models recover"
