"""Extension bench — LIM energy/latency by gate family (IMPLY vs MAGIC).

Not a paper figure: quantifies the execution-cost side of the logic
families the paper builds on (Kvatinsky et al.'s MAGIC and IMPLY).  The
stateful IMPLY XNOR costs an 11-step program per operation; MAGIC's
complementary-pair read-out costs 3 — the latency/energy ratio follows.
"""

from repro.analysis import markdown_table, write_csv
from repro.lim import estimate_model_cost


def test_gate_family_cost(benchmark, lenet, results_dir):
    def run():
        return {gate: estimate_model_cost(lenet, rows=40, cols=10,
                                          gate_family=gate)
                for gate in ("imply", "magic")}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for gate, layer_costs in costs.items():
        energy = sum(c.energy_nj for c in layer_costs)
        latency = sum(c.latency_us for c in layer_costs)
        steps = sum(c.driver_steps for c in layer_costs)
        rows.append((gate, steps, round(energy, 2), round(latency, 2)))
    print("\n=== LIM execution cost per image (binary LeNet, 40x10) ===")
    print(markdown_table(
        ["gate family", "driver steps", "energy nJ", "latency us"], rows))
    per_layer = [(c.layer, c.xnor_ops, c.driver_steps, c.energy_nj,
                  c.latency_us) for c in costs["imply"]]
    print("\nper-layer breakdown (IMPLY):")
    print(markdown_table(
        ["layer", "XNOR ops", "driver steps", "energy nJ", "latency us"],
        per_layer))
    write_csv(results_dir / "gate_energy.csv",
              ["gate", "driver_steps", "energy_nj", "latency_us"], rows)

    by_gate = {gate: {"steps": steps, "energy": energy, "latency": latency}
               for gate, steps, energy, latency in rows}
    assert by_gate["imply"]["latency"] > by_gate["magic"]["latency"]
    assert by_gate["imply"]["steps"] == by_gate["magic"]["steps"] / 3 * 11
