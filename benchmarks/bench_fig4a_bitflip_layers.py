"""Fig. 4a — impact of bit-flips on individual LeNet layers.

Paper protocol: binary LeNet on MNIST, one 40×10 crossbar per layer,
bit-flip injection rate swept 0-30%, each point repeated with fresh
seeds; series for conv1, conv2, dense0, dense1 and all layers combined.

Expected shape (paper findings): accuracy degrades with rate; the
combined curve is the worst; conv layers are more susceptible than dense
layers; deeper mapped layers are more resilient.
"""

import pytest

from repro.experiments import fig4

from .conftest import print_sweep_series

RATES = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
REPEATS = 5
TEST_IMAGES = 400


def test_fig4a_bitflip_layer_resilience(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        return fig4.run_fig4a(lenet, test, rates=RATES, repeats=REPEATS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = next(iter(results.values())).baseline
    print_sweep_series(
        "Fig. 4a: bit-flip rate vs accuracy (per layer)", results,
        x_label="rate", results_dir=results_dir,
        csv_name="fig4a_bitflip_layers.csv", baseline=baseline)

    combined = results["combined"]
    assert combined.accuracies.shape == (len(RATES), REPEATS)
    # rate 0 must reproduce the fault-free baseline exactly
    assert combined.mean()[0] == pytest.approx(baseline)
    # heavy injection must visibly degrade the combined accuracy
    assert combined.mean()[-1] < baseline - 0.05
