"""Fig. 4b — impact of stuck-at faults on individual LeNet layers.

Same protocol as Fig. 4a with permanent stuck-at faults: a dead gate's
output line rails at ±K independent of the data (DESIGN.md §3).

Expected shape (paper findings): stuck-at faults hit harder than
bit-flips at the same rate and affect all layers more uniformly.
"""

import pytest

from repro.experiments import fig4

from .conftest import print_sweep_series

RATES = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
REPEATS = 5
TEST_IMAGES = 400


def test_fig4b_stuckat_layer_resilience(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)

    def run():
        return fig4.run_fig4b(lenet, test, rates=RATES, repeats=REPEATS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = next(iter(results.values())).baseline
    print_sweep_series(
        "Fig. 4b: stuck-at rate vs accuracy (per layer)", results,
        x_label="rate", results_dir=results_dir,
        csv_name="fig4b_stuckat_layers.csv", baseline=baseline)

    combined = results["combined"]
    assert combined.mean()[0] == pytest.approx(baseline)
    assert combined.mean()[-1] < baseline - 0.10
