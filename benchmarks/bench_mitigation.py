"""Extension bench — effectiveness of the mitigation strategies.

Not a paper figure: quantifies the reliability strategies the paper's
conclusion calls for.  Column remapping is evaluated against structural
column faults on the final classifier layer; majority voting against
independent stuck-at banks.
"""

import numpy as np

from repro.analysis import markdown_table, write_csv
from repro.core import (FaultGenerator, FaultInjector, FaultSpec,
                        majority_vote_predict, remap_columns)
from repro.core.detection import apply_column_permutation
from repro.core.masks import LayerMasks

TEST_IMAGES = 300
BANKS = 3
STUCK_RATE = 0.08


def test_mitigation_column_remap(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)
    injector = FaultInjector()
    rows, cols, filters = 40, 16, 10  # 6 spare columns on dense1

    def run():
        outcomes = []
        for seed in range(4):
            rng = np.random.default_rng(seed)
            masks = LayerMasks(rows=rows, cols=cols)
            for col in rng.choice(cols, size=3, replace=False):
                masks.stuck_mask[:, col] = True
                masks.stuck_values[:, col] = rng.integers(0, 2)
            with injector.injecting(lenet, {"dense1": masks}):
                damaged = lenet.evaluate(test.x, test.y)
            perm = remap_columns(masks, filters)
            remapped_masks = apply_column_permutation(masks, perm)
            with injector.injecting(lenet, {"dense1": remapped_masks}):
                repaired = lenet.evaluate(test.x, test.y)
            outcomes.append((damaged, repaired))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    damaged = np.mean([d for d, _ in outcomes])
    repaired = np.mean([r for _, r in outcomes])
    rows_out = [("3 dead columns, no mitigation", 100 * damaged),
                ("after column remapping", 100 * repaired)]
    print("\n=== Mitigation: column remapping (dense1, 6 spare columns) ===")
    print(markdown_table(["configuration", "accuracy %"], rows_out))
    write_csv(results_dir / "mitigation_remap.csv",
              ["configuration", "accuracy_pct"], rows_out)
    assert repaired > damaged


def test_mitigation_majority_vote(benchmark, lenet, mnist_test, results_dir):
    test = mnist_test.subset(TEST_IMAGES)
    spec = FaultSpec.stuck_at(STUCK_RATE)
    plans = [FaultGenerator(spec, rows=40, cols=10, seed=s).generate(lenet)
             for s in range(BANKS)]

    def run():
        injector = FaultInjector()
        singles = []
        for plan in plans:
            with injector.injecting(lenet, plan):
                singles.append(lenet.evaluate(test.x, test.y))
        voted = majority_vote_predict(lenet, test.x, plans)
        return singles, float((voted == test.y).mean())

    singles, voted = benchmark.pedantic(run, rounds=1, iterations=1)
    rows_out = [(f"bank {i}", 100 * acc) for i, acc in enumerate(singles)]
    rows_out.append((f"majority vote over {BANKS} banks", 100 * voted))
    print(f"\n=== Mitigation: majority vote (stuck-at {STUCK_RATE:.0%}) ===")
    print(markdown_table(["configuration", "accuracy %"], rows_out))
    write_csv(results_dir / "mitigation_vote.csv",
              ["configuration", "accuracy_pct"], rows_out)
    assert voted >= np.mean(singles) - 0.02
