"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper: it
runs the experiment (at CPU-friendly sweep sizes), prints the same series
the paper plots, writes a CSV under ``artifacts/results/`` and feeds the
timed portion to pytest-benchmark.

Trained models come from the weight cache (``repro.experiments.common``);
the first run trains them (~15 minutes for all nine zoo models), later
runs load instantly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ascii_plot, write_csv
from repro.data import Dataset
from repro.experiments.common import (get_imagenet, get_mnist, trained_lenet)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "artifacts" / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def lenet():
    """The trained binary LeNet of the Fig. 4 experiments."""
    return trained_lenet()


@pytest.fixture(scope="session")
def mnist_test() -> Dataset:
    _, test = get_mnist()
    return test


@pytest.fixture(scope="session")
def imagenet_test() -> Dataset:
    _, test = get_imagenet()
    return test


def print_sweep_series(title: str, results: dict, x_label: str,
                       results_dir: Path, csv_name: str,
                       baseline: float | None = None) -> None:
    """Print the figure's series (paper-style) and persist them as CSV."""
    print(f"\n=== {title} ===")
    if baseline is not None:
        print(f"fault-free baseline accuracy: {100 * baseline:.2f}%")
    rows = []
    series = {}
    for label, result in results.items():
        xs = result.xs
        means = result.mean()
        stds = result.std()
        series[label] = (xs, [100 * m for m in means])
        print(f"  {label}:")
        for x, mean, std in zip(xs, means, stds):
            print(f"    {x_label}={x:g}: accuracy {100 * mean:5.1f}% "
                  f"(± {100 * std:.1f})")
            rows.append((label, x, 100 * mean, 100 * std))
    print(ascii_plot(series, title=title, x_label=x_label,
                     y_label="accuracy %", y_range=(0.0, 100.0)))
    write_csv(results_dir / csv_name,
              ["series", x_label, "accuracy_pct", "std_pct"], rows)
    print(f"[csv] {results_dir / csv_name}")
