"""Fig. 5a — bit-flip resilience of the nine Table-II architectures.

Expected shape (paper findings): all models degrade with rate; shortcut /
dense-connectivity families (DenseNets, ResNetE, Bi-Real) retain accuracy
longer than the plain stacks (BinaryAlexNet, XNOR-Net).
"""

from repro.experiments import fig5

from .conftest import print_sweep_series

RATES = (0.0, 0.05, 0.10, 0.20)
REPEATS = 2
TEST_IMAGES = 100


def test_fig5a_models_bitflip(benchmark, imagenet_test, results_dir):
    test = imagenet_test.subset(TEST_IMAGES)

    def run():
        return fig5.run_fig5a(rates=RATES, repeats=REPEATS, test=test)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep_series(
        "Fig. 5a: bit-flip rate vs accuracy (per model)", results,
        x_label="rate", results_dir=results_dir,
        csv_name="fig5a_models_bitflip.csv")

    for name, result in results.items():
        assert result.accuracies.shape == (len(RATES), REPEATS), name
        # heavy bit-flips must cost accuracy on every architecture
        assert result.mean()[-1] <= result.mean()[0], name
