"""Device-level simulation vs the FLIM fast path — verification + runtime.

Reproduces both verification contracts of the paper on a small model:

* fault-free: FLIM == vanilla == device-level crossbar simulation,
  bit-exactly;
* faulty: FLIM's product-level semantics matches the device-level
  simulator op-for-op;

then measures the runtime gap that motivates FLIM (Fig. 4f in miniature).

Run:  python examples/device_level_vs_flim.py
"""

import time

import numpy as np

from repro import nn
from repro.binary import QuantConv2D, QuantDense
from repro.core import FaultInjector
from repro.core.masks import LayerMasks
from repro.lim import CrossbarConfig, XFaultSimulator, ideal_device_params


def build_model():
    model = nn.Sequential([
        QuantConv2D(4, 3, input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign", name="conv"),
        nn.BatchNorm(),
        nn.Sign(),
        nn.Flatten(),
        QuantDense(4, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign", name="dense"),
    ], name="demo").build((8, 8, 2), seed=0)
    bn = model.layers_of_type(nn.BatchNorm)[0]
    bn.running_mean[...] = 0.1
    bn.running_var[...] = 1.2
    return model


def main():
    rng = np.random.default_rng(0)
    model = build_model()
    x = rng.standard_normal((2, 8, 8, 2)).astype(np.float32)

    # -- contract 1: fault-free equivalence ---------------------------------
    sim = XFaultSimulator(model, CrossbarConfig(
        rows=6, cols=3, gate_family="imply", device=ideal_device_params()))
    vanilla = model.predict(x)
    device = sim.run(x)
    print("fault-free FLIM == device level:",
          bool(np.array_equal(vanilla, device)))

    # -- contract 2: faulty equivalence (product semantics) -----------------
    conv = model.layers[0]
    sim.crossbar_for(conv).inject_bitflip(2, 1, period=0)
    device_faulty = sim.run(x)

    masks = LayerMasks(rows=6, cols=3)
    masks.flip_mask[2, 1] = True
    masks.flip_semantics = "product"
    with FaultInjector().injecting(model, {conv.name: masks}):
        flim_faulty = model.predict(x)
    print("faulty FLIM(product) == device level:",
          bool(np.array_equal(flim_faulty, device_faulty)))

    # -- the runtime gap that motivates FLIM ---------------------------------
    batch = rng.standard_normal((8, 8, 8, 2)).astype(np.float32)
    start = time.perf_counter()
    model.predict(batch)
    fast = time.perf_counter() - start
    start = time.perf_counter()
    sim.run(batch)
    slow = time.perf_counter() - start
    print(f"\nruntime, 8 images: FLIM fast path {fast * 1e3:.1f} ms, "
          f"device level {slow * 1e3:.0f} ms "
          f"-> {slow / fast:.0f}x slower at device granularity")
    print("(the paper's Fig. 4f measures this gap at 4-5 orders of "
          "magnitude on the full LeNet/MNIST workload)")


if __name__ == "__main__":
    main()
