"""Layer-resilience study on binary LeNet — the paper's Fig. 4a/4b in small.

Runs the registered ``fig4a`` (bit-flip) and ``fig4b`` (stuck-at)
experiments through the typed :mod:`repro.api` surface: one
``RunRequest`` per figure, per-cell progress consumed from the typed
event stream, and the plotted series read off the normalized
``RunReport`` (the trained LeNet + synthetic MNIST are resolved by the
registry entries themselves).

Run:  python examples/layer_resilience_mnist.py
"""

from repro import api
from repro.analysis import ascii_plot

PARAMS = {"rates": [0.0, 0.1, 0.2, 0.3], "repeats": 3, "images": 300}


def on_event(event):
    if isinstance(event, api.CellDone):
        print(f"  [{event.done}/{event.total}] {event.series}: "
              f"{100 * event.accuracy:.1f}%", end="\r")
    elif isinstance(event, api.RunWarning):
        print(f"  warning: {event.message}")


def show(title, report):
    print(f"\n=== {title} ===")
    series = {}
    for curve in report.series:
        series[curve.label] = (curve.xs, [100 * m for m in curve.mean])
        points = ", ".join(f"{x:.0%}:{100 * m:.0f}%"
                           for x, m in zip(curve.xs, curve.mean))
        print(f"  {curve.label:9s} {points}")
    print(ascii_plot(series, title=title, x_label="injection rate",
                     y_label="accuracy %", y_range=(0, 100)))


def main():
    print("experiments registered:", ", ".join(api.experiment_names()))
    print("loading/training binary LeNet on synthetic MNIST...")

    bitflips = api.run("fig4a", params=PARAMS, on_event=on_event)
    print(f"baseline accuracy: {bitflips.baseline:.1%}")
    show("bit-flips per layer (Fig. 4a)", bitflips)

    stuck = api.run("fig4b", params=PARAMS, on_event=on_event)
    show("stuck-at per layer (Fig. 4b)", stuck)

    print("\nkey observation (paper §IV): stuck-at faults impact the model "
          "more severely than bit-flips at the same injection rate.")


if __name__ == "__main__":
    main()
