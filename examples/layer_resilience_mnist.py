"""Layer-resilience study on binary LeNet — the paper's Fig. 4a/4b in small.

Trains (or loads) the binary LeNet on synthetic MNIST, then sweeps
bit-flip and stuck-at injection rates per mapped layer (conv1, conv2,
dense0, dense1) and combined, printing the accuracy series and an ASCII
rendition of the two figures.

Run:  python examples/layer_resilience_mnist.py
"""

from repro.analysis import ascii_plot
from repro.experiments import fig4, get_mnist, trained_lenet

RATES = (0.0, 0.1, 0.2, 0.3)
REPEATS = 3
TEST_IMAGES = 300


def show(title, results):
    print(f"\n=== {title} ===")
    series = {}
    for label, result in results.items():
        series[label] = (result.xs, [100 * m for m in result.mean()])
        points = ", ".join(f"{x:.0%}:{100 * m:.0f}%"
                           for x, m in zip(result.xs, result.mean()))
        print(f"  {label:9s} {points}")
    print(ascii_plot(series, title=title, x_label="injection rate",
                     y_label="accuracy %", y_range=(0, 100)))


def main():
    print("loading/training binary LeNet on synthetic MNIST...")
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(TEST_IMAGES)
    print(f"baseline accuracy: {model.evaluate(test.x, test.y):.1%}")

    bitflips = fig4.run_fig4a(model, test, rates=RATES, repeats=REPEATS)
    show("bit-flips per layer (Fig. 4a)", bitflips)

    stuck = fig4.run_fig4b(model, test, rates=RATES, repeats=REPEATS)
    show("stuck-at per layer (Fig. 4b)", stuck)

    print("\nkey observation (paper §IV): stuck-at faults impact the model "
          "more severely than bit-flips at the same injection rate.")


if __name__ == "__main__":
    main()
