"""Accuracy over a device lifetime — from endurance physics to BNN failure.

The paper's conclusion calls for "strategies able to monitor and/or
mitigate applications' degradation during their lifetime".  This example
closes that loop quantitatively: a Weibull endurance model turns
cumulative switching cycles into stuck-cell rates, FLIM injects the
corresponding faults, and the output is the accuracy-over-age curve an
operator would use to schedule replacement.

Run:  python examples/lifetime_reliability.py
"""


from repro.analysis import ascii_plot
from repro.core import FaultCampaign, FaultSpec
from repro.experiments import get_mnist, trained_lenet
from repro.lim import EnduranceModel, lifetime_fault_rates

AGES = [0.0, 3e7, 6e7, 1e8, 1.5e8, 2e8]
REPEATS = 3
TEST_IMAGES = 300


def main():
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(TEST_IMAGES)

    endurance = EnduranceModel(mean_cycles=3e8, shape=2.0,
                               upset_rate_per_cycle=1e-12)
    # a crossbar cell switches ~11 times per XNOR op (IMPLY program);
    # reuse makes cells cycle thousands of times per inference
    cycles_per_inference = 11 * 500
    points = lifetime_fault_rates(cycles_per_inference, AGES, endurance)

    campaign = FaultCampaign(model, test.x, test.y, rows=40, cols=10)
    print(f"fault-free accuracy: {campaign.baseline_accuracy():.1%}\n")
    print(f"{'age (cycles)':>14} {'stuck rate':>11} {'accuracy':>9}")

    xs, ys = [], []
    for point in points:
        result = campaign.run(
            lambda _x, p=point: FaultSpec.stuck_at(min(p.stuck_rate, 1.0)),
            xs=[0], repeats=REPEATS)
        accuracy = result.mean()[0]
        xs.append(point.cycles / 1e8)
        ys.append(100 * accuracy)
        print(f"{point.cycles:14.2g} {point.stuck_rate:11.4%} {accuracy:9.1%}")

    print()
    print(ascii_plot({"accuracy": (xs, ys)},
                     title="BNN accuracy over device lifetime",
                     x_label="age (1e8 cycles)", y_label="accuracy %",
                     y_range=(0, 100)))
    print("\nreading: replace (or remap, see fault_mitigation.py) the part "
          "before the knee of this curve.")


if __name__ == "__main__":
    main()
