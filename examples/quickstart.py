"""Quickstart: inject faults into a binary neural network in ~30 lines.

Builds a small fully binarized model, trains it on a toy task, then uses
the FLIM pipeline — FaultGenerator -> fault plan -> FaultInjector — to
measure how bit-flip and stuck-at faults on the logic-in-memory crossbar
degrade accuracy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.binary import QuantDense
from repro.core import FaultGenerator, FaultInjector, FaultSpec


def main():
    # 1. a tiny fully binarized network on a majority-vote task
    rng = np.random.default_rng(0)
    x = rng.choice([-1.0, 1.0], size=(600, 16)).astype(np.float32)
    y = (x.sum(axis=1) > 0).astype(int)
    x_train, y_train, x_test, y_test = x[:400], y[:400], x[400:], y[400:]

    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ], name="quickstart").build((16,), seed=0)

    nn.Trainer(nn.Adam(0.01), seed=0).fit(model, x_train, y_train,
                                          epochs=20, batch_size=32)
    baseline = model.evaluate(x_test, y_test)
    print(f"fault-free accuracy: {baseline:.1%}")

    # 2. the Fault Generator distributes faults over a 16x8 crossbar and
    #    maps them onto every LIM-mapped layer of the model
    injector = FaultInjector()
    for spec, label in [
        (FaultSpec.bitflip(0.10), "10% transient bit-flips"),
        (FaultSpec.bitflip(0.10, period=4), "10% dynamic flips (every 4th op)"),
        (FaultSpec.stuck_at(0.10), "10% stuck-at cells (permanent)"),
    ]:
        accuracies = []
        for seed in range(10):  # re-seed: faults land somewhere new each run
            generator = FaultGenerator(spec, rows=16, cols=8, seed=seed)
            plan = generator.generate(model)
            # 3. the Fault Injector wires masks into the layers' fault hooks
            with injector.injecting(model, plan):
                accuracies.append(model.evaluate(x_test, y_test))
        print(f"{label:36s} accuracy: {np.mean(accuracies):.1%} "
              f"(± {np.std(accuracies):.1%})")

    # 4. the mapping report: ops per crossbar, reuse factors
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=16, cols=8)
    print("\nmapping report:")
    for entry in generator.report(model):
        print(f"  {entry['layer']}: {entry['xnor_ops_per_image']} XNOR ops "
              f"on a {entry['crossbar']} crossbar "
              f"(reuse {entry['cell_reuse']}x)")


if __name__ == "__main__":
    main()
