"""Quickstart: inject faults into a binary neural network in ~30 lines.

Builds a small fully binarized model, trains it on a toy task, then runs
a :class:`FaultCampaign` — the engine behind every figure in the paper —
to measure how bit-flip and stuck-at faults on the logic-in-memory
crossbar degrade accuracy.  The campaign handles the re-seeded
repetitions, caches the fault-free work, and (with
``executor="shared_memory"``) scales the same code to a worker pool.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.binary import QuantDense
from repro.core import FaultCampaign, FaultGenerator, FaultSpec


def main():
    # 1. a tiny fully binarized network on a majority-vote task
    rng = np.random.default_rng(0)
    x = rng.choice([-1.0, 1.0], size=(600, 16)).astype(np.float32)
    y = (x.sum(axis=1) > 0).astype(int)
    x_train, y_train, x_test, y_test = x[:400], y[:400], x[400:], y[400:]

    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ], name="quickstart").build((16,), seed=0)

    nn.Trainer(nn.Adam(0.01), seed=0).fit(model, x_train, y_train,
                                          epochs=20, batch_size=32)
    baseline = model.evaluate(x_test, y_test)
    print(f"fault-free accuracy: {baseline:.1%}")

    # 2. a campaign sweeps fault specs with fresh seeds per repetition —
    #    the paper's protocol — on a 16x8 crossbar per mapped layer.
    #    Under the hood it pre-generates every fault plan, wires the masks
    #    into the layers' fault hooks per job, and reuses the fault-free
    #    prefix/baseline work across all 10 repetitions.
    campaign = FaultCampaign(model, x_test, y_test, rows=16, cols=8)
    for spec, label in [
        (FaultSpec.bitflip(0.10), "10% transient bit-flips"),
        (FaultSpec.bitflip(0.10, period=4), "10% dynamic flips (every 4th op)"),
        (FaultSpec.stuck_at(0.10), "10% stuck-at cells (permanent)"),
    ]:
        result = campaign.run(lambda _x, spec=spec: spec, xs=[spec.rate],
                              repeats=10, label=label)
        print(f"{label:36s} accuracy: {result.mean()[0]:.1%} "
              f"(± {result.std()[0]:.1%})")

    # 4. the mapping report: ops per crossbar, reuse factors
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=16, cols=8)
    print("\nmapping report:")
    for entry in generator.report(model):
        print(f"  {entry['layer']}: {entry['xnor_ops_per_image']} XNOR ops "
              f"on a {entry['crossbar']} crossbar "
              f"(reuse {entry['cell_reuse']}x)")


if __name__ == "__main__":
    main()
