"""Model-resilience comparison across BNN architectures — Fig. 5 in small.

Compares three architecture families under bit-flip and stuck-at faults:
a plain stack (binary_alexnet), a residual network (binary_resnet_e18)
and a densely connected network (binary_densenet28).

Run:  python examples/model_resilience_zoo.py
"""

from repro.analysis import ascii_plot
from repro.core import FaultCampaign, FaultSpec
from repro.experiments import get_imagenet, trained_zoo_model

MODELS = ("binary_alexnet", "binary_resnet_e18", "binary_densenet28")
BITFLIP_RATES = (0.0, 0.05, 0.10, 0.20)
STUCK_RATES = (0.0, 0.005, 0.01, 0.02)
REPEATS = 3
TEST_IMAGES = 200


def sweep(model_name, spec_factory, xs, test):
    model = trained_zoo_model(model_name)
    campaign = FaultCampaign(model, test.x, test.y, rows=40, cols=10)
    return campaign.run(spec_factory, xs, repeats=REPEATS, label=model_name)


def main():
    _, test = get_imagenet()
    test = test.subset(TEST_IMAGES)

    print("bit-flips 0-20% (Fig. 5a style):")
    series = {}
    for name in MODELS:
        result = sweep(name, FaultSpec.bitflip, list(BITFLIP_RATES), test)
        series[name] = (result.xs, [100 * m for m in result.mean()])
        print(f"  {name:20s} " + " ".join(
            f"{x:.0%}:{100 * m:4.1f}%" for x, m in zip(result.xs, result.mean())))
    print(ascii_plot(series, title="bit-flip resilience",
                     x_label="rate", y_label="accuracy %", y_range=(0, 100)))

    print("\nstuck-at 0-2% (Fig. 5b style — note the 10x tighter axis):")
    series = {}
    for name in MODELS:
        result = sweep(name, FaultSpec.stuck_at, list(STUCK_RATES), test)
        series[name] = (result.xs, [100 * m for m in result.mean()])
        print(f"  {name:20s} " + " ".join(
            f"{x:.2%}:{100 * m:4.1f}%" for x, m in zip(result.xs, result.mean())))
    print(ascii_plot(series, title="stuck-at resilience",
                     x_label="rate", y_label="accuracy %", y_range=(0, 100)))

    print("\nkey observations (paper §IV): permanent stuck-at faults "
          "compromise reliability at rates an order of magnitude below "
          "transient bit-flips; architecture families differ in how "
          "gracefully they degrade.")


if __name__ == "__main__":
    main()
