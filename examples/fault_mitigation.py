"""Mitigating crossbar faults across a device lifetime.

The paper's conclusion calls for "strategies able to monitor and/or
mitigate applications' degradation during their lifetime".  Instead of a
single static fault rate, this example walks the ``end-of-life`` zoo
scenario — stuck cells accumulating along the Weibull wear curve over a
transient background — and compares, at every device-age checkpoint:

1. **unmitigated** — the scenario trajectory as compiled (one crossbar
   bank per layer);
2. **majority vote** — inference on three crossbar banks with
   independently placed faults at the *same* lifetime rates, taking the
   per-sample majority (TMR in space).

The output is the accuracy-vs-device-age curve an operator would use to
decide when redundancy stops paying and the part must be replaced.

Run:  python examples/fault_mitigation.py
"""


from repro.analysis import ascii_plot
from repro.core import FaultGenerator, majority_vote_predict
from repro.experiments import get_mnist, trained_lenet
from repro.scenarios import get_scenario, run_scenario

TEST_IMAGES = 300
REPEATS = 3
BANKS = 3
ROWS, COLS = 40, 10


def main():
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(TEST_IMAGES)

    scenario = get_scenario("end-of-life")
    print(f"scenario: {scenario.name} — {scenario.description}\n")

    # -- 1. the unmitigated lifetime trajectory (campaign engine) ----------
    result = run_scenario(scenario, model, test.x, test.y, repeats=REPEATS,
                          rows=ROWS, cols=COLS)
    print(f"fault-free accuracy: {result.baseline:.1%}")

    # -- 2. the same lifetime, majority-voted across independent banks ----
    # each bank draws its own fault placement at the checkpoint's rates
    # (result.grid is the compiled grid the trajectory above ran on)
    voted_accuracy = []
    for cell in result.grid.cells:
        plans = [FaultGenerator(list(cell.specs), rows=ROWS, cols=COLS,
                                seed=1000 * cell.index + bank).generate(model)
                 for bank in range(BANKS)]
        voted = majority_vote_predict(model, test.x, plans)
        voted_accuracy.append(float((voted == test.y).mean()))

    # -- 3. the operator's curve ------------------------------------------
    print(f"\n{'age (cycles)':>14} {'stuck rate':>11} "
          f"{'unmitigated':>12} {'voted x' + str(BANKS):>9}")
    unmitigated = result.trajectory()
    for i, record in enumerate(result.as_rows()):
        print(f"{record['age']:14.2g} {record['stuck_rate']:11.4%} "
              f"{unmitigated[i]:12.1%} {voted_accuracy[i]:9.1%}")

    ages = [age / 1e8 for age in result.ages]
    print()
    print(ascii_plot(
        {"unmitigated": (ages, [100 * a for a in unmitigated]),
         f"voted x{BANKS}": (ages, [100 * a for a in voted_accuracy])},
        title="mitigation across the device lifetime",
        x_label="age (1e8 cycles)", y_label="accuracy %",
        y_range=(0, 100)))
    print("\nreading: spatial redundancy buys lifetime up to the knee of "
          "the wear curve; past it, replace the part (or remap — see "
          "repro.core.detection).")


if __name__ == "__main__":
    main()
