"""Monitoring and mitigating crossbar faults — detection, remap, vote.

Demonstrates the three reliability strategies built on the platform:

1. **march test** — detect stuck gates on a crossbar online;
2. **column remapping** — park faulty columns on spare column slots;
3. **majority vote** — run inference on several independently faulty
   crossbar banks and take the per-sample majority.

Run:  python examples/fault_mitigation.py
"""

import numpy as np

from repro.core import (CampaignEvaluator, FaultGenerator, FaultSpec,
                        majority_vote_predict, march_test,
                        masks_from_detection, remap_columns)
from repro.core.detection import apply_column_permutation
from repro.experiments import get_mnist, trained_lenet
from repro.lim import Crossbar, CrossbarConfig, ideal_device_params

TEST_IMAGES = 300


def main():
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(TEST_IMAGES)
    # the campaign engine's evaluator scores arbitrary fixed fault plans
    # while reusing the fault-free prefix work across all of them
    evaluator = CampaignEvaluator(model, test.x, test.y)
    print(f"fault-free accuracy: {evaluator.baseline():.1%}\n")

    # -- 1. detect faults on a physically simulated crossbar ----------------
    # dense1 has 10 output channels; a 40x16 crossbar leaves 6 spare
    # columns the remapper can park faulty columns on.
    crossbar = Crossbar(CrossbarConfig(rows=40, cols=16,
                                       device=ideal_device_params()))
    rng = np.random.default_rng(5)
    for col in rng.choice(16, size=3, replace=False):
        crossbar.inject_column_fault(int(col),
                                     stuck_value=int(rng.integers(0, 2)))
    for _ in range(10):
        row, col = rng.integers(0, 40), rng.integers(0, 16)
        crossbar.inject_stuck_gate(int(row), int(col), int(rng.integers(0, 2)))
    detection = march_test(crossbar)
    found = len(detection["stuck_at_0"]) + len(detection["stuck_at_1"])
    print(f"march test found {found} stuck gates "
          f"({len(detection['stuck_at_1'])} SA1, "
          f"{len(detection['stuck_at_0'])} SA0)")

    # -- 2. assess the impact, then remap columns away from faults ---------
    masks = masks_from_detection(crossbar, detection)
    damaged = evaluator.evaluate_plan({"dense1": masks})
    print(f"accuracy with faults on dense1's crossbar: {damaged:.1%}")

    perm = remap_columns(masks, filters=10)
    remapped_plan = {"dense1": apply_column_permutation(masks, perm)}
    remapped = evaluator.evaluate_plan(remapped_plan)
    print(f"after column remapping (6 spare columns):  {remapped:.1%}")

    # -- 3. majority vote across independent crossbar banks ---------------
    spec = FaultSpec.stuck_at(0.08)
    plans = [FaultGenerator(spec, rows=40, cols=10, seed=s).generate(model)
             for s in (11, 22, 33)]
    singles = [evaluator.evaluate_plan(bank_plan) for bank_plan in plans]
    voted = majority_vote_predict(model, test.x, plans)
    voted_accuracy = float((voted == test.y).mean())
    print(f"\nstuck-at 8% on three independent banks: "
          f"{', '.join(f'{s:.1%}' for s in singles)}")
    print(f"majority vote across the banks:          {voted_accuracy:.1%}")


if __name__ == "__main__":
    main()
