"""The offline fault-vector workflow + a device-aging study.

Part 1 reproduces the paper's §III pipeline end-to-end: generate fault
masks offline, extract them to an annotated binary file (reusable and
dataset-independent), reload them in a fresh process, and inject.

Part 2 uses the memristor device model underneath the crossbar to show
*why* stuck-at faults accumulate over a lifetime: resistance-window drift
eventually leaves cells unable to switch — the degradation the paper's
conclusion says must be monitored in the field.

Run:  python examples/fault_vector_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import nn
from repro.binary import QuantDense
from repro.core import (CampaignEvaluator, FaultGenerator, FaultSpec,
                        load_fault_vectors, save_fault_vectors)
from repro.lim import CellArray, DeviceParams


def build_model():
    model = nn.Sequential([
        QuantDense(24, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="hidden"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="readout"),
        nn.BatchNorm(),
    ], name="vector_demo").build((12,), seed=0)
    return model


def main():
    rng = np.random.default_rng(1)
    x = rng.choice([-1.0, 1.0], size=(300, 12)).astype(np.float32)
    y = (x[:, :6].sum(axis=1) > 0).astype(int)
    model = build_model()
    nn.Trainer(nn.Adam(0.01), seed=0).fit(model, x, y, epochs=15, batch_size=32)
    print(f"baseline accuracy: {model.evaluate(x, y):.1%}")

    # -- 1. offline generation and extraction ---------------------------
    generator = FaultGenerator([FaultSpec.bitflip(0.08, period=2),
                                FaultSpec.stuck_at(0.04)],
                               rows=12, cols=6, seed=3)
    plan = generator.generate(model)
    path = Path(tempfile.gettempdir()) / "demo_faults.flim"
    generator.extract_vectors(plan, path)
    size = path.stat().st_size
    print(f"fault vectors extracted to {path} ({size} bytes, "
          f"{len(plan)} layer records)")

    # -- 2. reload and inject (any dataset, any experiment) ----------------
    reloaded = load_fault_vectors(path)
    for name, masks in reloaded.items():
        counts = masks.fault_counts()
        print(f"  {name}: {counts['bitflips']} flip cells "
              f"(period {masks.flip_period}), {counts['stuck']} stuck cells")
    evaluator = CampaignEvaluator(model, x, y)  # the campaign-engine path
    print(f"accuracy under reloaded fault plan: "
          f"{evaluator.evaluate_plan(reloaded):.1%}")

    # the same plan can be re-saved bit-identically — it is pure data
    roundtrip = Path(tempfile.gettempdir()) / "demo_faults_2.flim"
    save_fault_vectors(roundtrip, reloaded)
    assert roundtrip.read_bytes() == path.read_bytes()
    print("round-trip serialization is bit-identical")

    # -- 3. why stuck-at faults accumulate: resistance-window drift ----------
    print("\ndevice aging (drift per switching event):")
    cells = CellArray((1000,), DeviceParams(variability=0.02,
                                            drift_per_write=0.002), seed=0)
    bits = np.zeros(1000, dtype=np.uint8)
    for cycle in (0, 500, 1000, 1500, 2500):
        while cells.write_count[0] < cycle:
            bits ^= 1
            cells.write(bits)
        stuck = cells.effectively_stuck().mean()
        print(f"  after {cycle:5d} write cycles: "
              f"{stuck:6.1%} of cells below sense margin")


if __name__ == "__main__":
    main()
