"""Edge-case tests for the analysis helpers and SweepResult aggregation."""

import numpy as np
import pytest

from repro.analysis import ascii_plot
from repro.core import SweepResult


def make_result():
    accuracies = np.array([[0.9, 1.0, 0.8],
                           [0.5, 0.4, 0.6]])
    return SweepResult(label="demo", xs=[0.0, 0.3], accuracies=accuracies,
                       baseline=0.95)


def test_sweep_result_statistics():
    result = make_result()
    np.testing.assert_allclose(result.mean(), [0.9, 0.5])
    np.testing.assert_allclose(result.min(), [0.8, 0.4])
    np.testing.assert_allclose(result.max(), [1.0, 0.6])
    # repetitions are a sample: error bars use the sample estimator
    assert result.std()[0] == pytest.approx(np.std([0.9, 1.0, 0.8], ddof=1))


def test_sweep_result_std_single_repeat_is_zero():
    """One repetition has no spread estimate; report 0, not NaN."""
    result = SweepResult(label="single", xs=[0.0, 0.3],
                         accuracies=np.array([[0.9], [0.5]]), baseline=0.9)
    np.testing.assert_array_equal(result.std(), [0.0, 0.0])
    assert not np.isnan(result.as_rows()[0][2])


def test_sweep_result_rows():
    rows = make_result().as_rows()
    assert rows[0][0] == 0.0
    assert rows[0][1] == pytest.approx(0.9)
    assert rows[1][2] == pytest.approx(np.std([0.5, 0.4, 0.6], ddof=1))


def test_sweep_result_repr_compact():
    text = repr(make_result())
    assert "demo" in text
    assert "0.9" in text


def test_ascii_plot_constant_series():
    """Degenerate (flat) series must not divide by zero."""
    text = ascii_plot({"flat": ([0, 1, 2], [5.0, 5.0, 5.0])})
    assert "o" in text


def test_ascii_plot_single_point():
    text = ascii_plot({"dot": ([1.0], [2.0])})
    assert "o" in text


def test_ascii_plot_respects_y_range():
    text = ascii_plot({"s": ([0, 1], [10, 90])}, y_range=(0.0, 100.0))
    assert "100" in text
    assert text.splitlines()[-2].strip().startswith("0")


def test_ascii_plot_many_series_markers_cycle():
    series = {f"s{i}": ([0, 1], [i, i + 1]) for i in range(10)}
    text = ascii_plot(series)
    # marker alphabet has 8 symbols; 10 series must still render
    assert "s9" in text
