"""Tests for the less-travelled injector paths: weight-level flips and
the cross-layer notion of time."""

import numpy as np

from repro import nn
from repro.binary import QuantDense
from repro.core import (FaultGenerator, FaultInjector, FaultSpec, Semantics)
from repro.core.masks import LayerMasks


def two_layer_model(seed=0):
    model = nn.Sequential([
        QuantDense(8, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="sem_hidden"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(4, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="sem_out"),
    ], name="sem_model")
    model.build((16,), seed=seed)
    bn = model.layers_of_type(nn.BatchNorm)[0]
    bn.running_mean[...] = 0.1
    bn.running_var[...] = 1.4
    return model


def test_weight_level_bitflip_negates_kernel_bits(rng):
    """WEIGHT-semantics flips invert the stored kernel bits persistently."""
    model = two_layer_model()
    layer = model.layers[0]
    generator = FaultGenerator(
        FaultSpec.bitflip(0.5, semantics=Semantics.WEIGHT),
        rows=4, cols=4, seed=2)
    plan = generator.generate(model, layers=[layer.name])
    qkernel = np.sign(layer.params["kernel"]) + 0.0
    with FaultInjector().injecting(model, plan):
        corrupted = layer.kernel_fault_hook(qkernel.copy(), layer)
    changed = corrupted != qkernel
    assert changed.any()
    np.testing.assert_array_equal(corrupted[changed], -qkernel[changed])
    # unflipped bits untouched
    np.testing.assert_array_equal(corrupted[~changed], qkernel[~changed])


def test_weight_flip_changes_inference_persistently(rng):
    model = two_layer_model()
    x = rng.standard_normal((4, 16)).astype(np.float32)
    clean = model.predict(x)
    generator = FaultGenerator(
        FaultSpec.bitflip(0.4, semantics=Semantics.WEIGHT),
        rows=4, cols=4, seed=1)
    with FaultInjector().injecting(model, generator.generate(model)):
        first = model.predict(x)
        second = model.predict(x)
    assert not np.array_equal(first, clean)
    np.testing.assert_array_equal(first, second)


def make_dynamic_plan(model, period):
    """One flipped mask cell per layer, dynamic with the given period."""
    plan = {}
    for layer in model.layers_of_type(QuantDense):
        masks = LayerMasks(rows=2, cols=2)
        masks.flip_mask[0, 0] = True
        masks.flip_period = period
        plan[layer.name] = masks
    return plan


def test_time_continues_across_layers(rng):
    """The second layer's occurrence counter starts at the first layer's
    total mask repetitions (the paper's notion of time).

    Here the hidden layer spans 2 mask repetitions (8 outputs / 4 mask
    cells), so the output layer starts at occurrence 2.  With period 3,
    occurrence 2 does not fire — the output layer gets *no* fault hook
    when time continues, but does fire (occurrence 0) when it doesn't.
    """
    model = two_layer_model()
    out = model.layers[-1]
    plan = make_dynamic_plan(model, period=3)

    with FaultInjector(continue_time_across_layers=True).injecting(model, plan):
        assert out.output_fault_hook is None      # suppressed at occ=2

    with FaultInjector(continue_time_across_layers=False).injecting(model, plan):
        assert out.output_fault_hook is not None  # fires at occ=0
        probe = np.arange(4, dtype=np.float32).reshape(1, 4) + 1.0
        fired = out.output_fault_hook(probe.copy(), out)
        assert (fired != probe).any()


def test_time_offset_even_period_unaffected(rng):
    """Period 2 with an even offset (2) fires either way."""
    model = two_layer_model()
    out = model.layers[-1]
    plan = make_dynamic_plan(model, period=2)
    for continue_time in (True, False):
        injector = FaultInjector(continue_time_across_layers=continue_time)
        with injector.injecting(model, plan):
            assert out.output_fault_hook is not None


def test_zero_rate_weight_semantics_still_identity(rng):
    model = two_layer_model()
    x = rng.standard_normal((3, 16)).astype(np.float32)
    clean = model.predict(x)
    generator = FaultGenerator(
        FaultSpec.bitflip(0.0, semantics=Semantics.WEIGHT), rows=4, cols=4)
    with FaultInjector().injecting(model, generator.generate(model)):
        np.testing.assert_array_equal(model.predict(x), clean)
