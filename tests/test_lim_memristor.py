"""Tests for the memristive device model."""

import numpy as np
import pytest

from repro.lim import CellArray, DeviceParams, Health


def test_write_read_roundtrip(rng):
    cells = CellArray((8, 8), seed=0)
    bits = rng.integers(0, 2, (8, 8)).astype(np.uint8)
    cells.write(bits)
    np.testing.assert_array_equal(cells.read(), bits)


def test_variability_does_not_corrupt_levels():
    cells = CellArray((1000,), DeviceParams(variability=0.1), seed=1)
    bits = np.tile(np.array([0, 1], dtype=np.uint8), 500)
    cells.write(bits)
    np.testing.assert_array_equal(cells.read(), bits)


def test_stuck_lrs_ignores_writes():
    cells = CellArray((4,), seed=0)
    cells.set_health(np.s_[1], Health.STUCK_LRS)
    cells.write(np.zeros(4, dtype=np.uint8))
    out = cells.read()
    assert out[1] == 1        # stuck-at-1 survives a 0-write
    assert out[0] == 0 and out[2] == 0 and out[3] == 0


def test_stuck_hrs_ignores_writes():
    cells = CellArray((4,), seed=0)
    cells.set_health(np.s_[2], Health.STUCK_HRS)
    cells.write(np.ones(4, dtype=np.uint8))
    out = cells.read()
    assert out[2] == 0        # stuck-at-0 survives a 1-write
    assert out[0] == 1


def test_healthy_fraction():
    cells = CellArray((10,), seed=0)
    assert cells.healthy_fraction() == 1.0
    cells.set_health(np.s_[:5], Health.STUCK_HRS)
    assert cells.healthy_fraction() == 0.5


def test_write_count_tracks_usage():
    cells = CellArray((3,), seed=0)
    for _ in range(5):
        cells.write(np.ones(3, dtype=np.uint8))
    np.testing.assert_array_equal(cells.write_count, [5, 5, 5])


def test_drift_eventually_sticks_cells():
    params = DeviceParams(variability=0.0, drift_per_write=0.05)
    cells = CellArray((2,), params, seed=0)
    assert not cells.effectively_stuck().any()
    for _ in range(200):
        cells.write(np.array([1, 0], dtype=np.uint8))
    assert cells.effectively_stuck().all()


def test_device_params_validation():
    with pytest.raises(ValueError):
        DeviceParams(r_lrs=1e6, r_hrs=1e4)


def test_threshold_is_geometric_mean():
    params = DeviceParams(r_lrs=1e4, r_hrs=1e6)
    assert params.r_threshold == pytest.approx(1e5)
