"""Fault-aware training — the paper's future-work feature.

"In the future, we want to extend the capabilities of FLIM to inject
faults during training."  The hook architecture already supports it: an
attached plan corrupts the forward pass during training, so the latent
weights adapt around the (persistent) faults.  These tests pin down that
the mechanism works end-to-end.
"""

import numpy as np

from repro import nn
from repro.binary import QuantDense
from repro.core import (FaultGenerator, FaultInjector, FaultSpec,
                        StuckPolarity)


def make_task(rng, n=400):
    x = rng.choice([-1.0, 1.0], size=(n, 12)).astype(np.float32)
    y = (x[:, :6].sum(axis=1) > 0).astype(int)
    return x, y


def make_model(seed=0):
    # explicit layer names so fault plans transfer across model instances
    return nn.Sequential([
        QuantDense(24, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="ft_hidden"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                   name="ft_readout"),
        nn.BatchNorm(),
    ]).build((12,), seed=seed)


def test_training_runs_with_injector_attached(rng):
    """Gradients must flow through the fault hooks without errors."""
    x, y = make_task(rng)
    model = make_model()
    generator = FaultGenerator(FaultSpec.stuck_at(0.1), rows=8, cols=4, seed=0)
    plan = generator.generate(model)
    injector = FaultInjector()
    with injector.injecting(model, plan):
        history = nn.Trainer(nn.Adam(0.01), seed=0).fit(
            model, x, y, epochs=5, batch_size=32)
    assert history.train_loss[-1] < history.train_loss[0]


def test_fault_aware_training_adapts_to_permanent_faults(rng):
    """Training *with* the faults present must beat training without,
    when both are evaluated under the same persistent fault plan."""
    x, y = make_task(rng, n=600)
    x_train, y_train, x_test, y_test = x[:400], y[:400], x[400:], y[400:]
    spec = FaultSpec.stuck_at(0.25, polarity=StuckPolarity.RANDOM)

    # one fixed fault plan (permanent hardware defects)
    reference = make_model(seed=0)
    plan = FaultGenerator(spec, rows=8, cols=4, seed=42).generate(reference)

    # baseline: train clean, deploy on faulty hardware
    clean_model = make_model(seed=0)
    nn.Trainer(nn.Adam(0.01), seed=0).fit(clean_model, x_train, y_train,
                                          epochs=15, batch_size=32)
    with FaultInjector().injecting(clean_model, plan):
        clean_trained_acc = clean_model.evaluate(x_test, y_test)

    # fault-aware: train with the same faults injected
    aware_model = make_model(seed=0)
    with FaultInjector().injecting(aware_model, plan):
        nn.Trainer(nn.Adam(0.01), seed=0).fit(aware_model, x_train, y_train,
                                              epochs=15, batch_size=32)
        aware_acc = aware_model.evaluate(x_test, y_test)

    assert aware_acc >= clean_trained_acc - 0.02


def test_detach_after_training_restores_clean_path(rng):
    x, y = make_task(rng)
    model = make_model()
    generator = FaultGenerator(FaultSpec.bitflip(0.2), rows=8, cols=4, seed=1)
    injector = FaultInjector()
    injector.attach(model, generator.generate(model))
    nn.Trainer(nn.Adam(0.01), seed=0).fit(model, x, y, epochs=2, batch_size=32)
    injector.detach()
    for layer in model.layers_of_type(QuantDense):
        assert layer.output_fault_hook is None
        assert layer.kernel_fault_hook is None
