"""Tests for the LeNet and zoo model definitions."""

import numpy as np
import pytest

from repro.binary import QuantLayer
from repro.core import mapped_layers
from repro.models import (LENET_MAPPED_LAYERS, build_lenet, build_model,
                          compute_stats, format_count, model_names)
from repro.models.zoo import MODEL_PAPER_STATS


def test_lenet_mapped_layer_names():
    """The mapped layers must be exactly the Fig. 4a legend."""
    model = build_lenet()
    names = [layer.name for layer in mapped_layers(model)]
    assert names == list(LENET_MAPPED_LAYERS)


def test_lenet_conv0_is_cmos():
    model = build_lenet()
    conv0 = next(l for l in model.layers_of_type(QuantLayer) if l.name == "conv0")
    assert not conv0.is_mapped


def test_lenet_forward_shape(rng):
    model = build_lenet()
    x = rng.standard_normal((3, 28, 28, 1)).astype(np.float32)
    assert model.predict(x).shape == (3, 10)


def test_lenet_has_three_convs_two_dense():
    """Paper: 'three convolutional layers and two dense layers'."""
    model = build_lenet()
    quant = model.layers_of_type(QuantLayer)
    convs = [l for l in quant if l.name.startswith("conv")]
    denses = [l for l in quant if l.name.startswith("dense")]
    assert len(convs) == 3
    assert len(denses) == 2


def test_zoo_has_nine_models():
    assert len(model_names()) == 9
    assert set(model_names()) == set(MODEL_PAPER_STATS)


@pytest.mark.parametrize("name", [
    "binary_alexnet", "xnornet", "binary_resnet_e18", "birealnet",
    "real_to_binary", "binary_densenet28", "binary_densenet37",
    "binary_densenet45", "meliusnet22",
])
def test_zoo_model_forward(rng, name):
    model = build_model(name)
    x = rng.standard_normal((2, 32, 32, 3)).astype(np.float32)
    out = model.predict(x)
    assert out.shape == (2, 10)
    assert np.isfinite(out).all()


def test_unknown_model_rejected():
    with pytest.raises(ValueError):
        build_model("resnet9000")


def test_zoo_models_have_mapped_layers():
    for name in model_names():
        model = build_model(name)
        assert len(mapped_layers(model)) >= 1, name


def test_densenet_depth_ordering():
    """Deeper DenseNets must have more parameters (paper: 45 > 37 > 28)."""
    p28 = build_model("binary_densenet28").num_params()
    p37 = build_model("binary_densenet37").num_params()
    p45 = build_model("binary_densenet45").num_params()
    assert p28 < p37 < p45


def test_stats_binarized_fraction_in_paper_band():
    """Scaled models must stay in Table II's 90-99% binarized band."""
    for name in model_names():
        stats = compute_stats(build_model(name))
        assert 85.0 <= stats.binarized_percent <= 99.5, (
            name, stats.binarized_percent)


def test_stats_size_counts_binary_as_bits():
    model = build_lenet()
    stats = compute_stats(model)
    expected_bits = stats.binary_params + 32 * (stats.params - stats.binary_params)
    assert stats.size_mb == pytest.approx(expected_bits / 8 / 1e6)


def test_stats_macs_positive():
    for name in ("binary_alexnet", "binary_densenet28"):
        assert compute_stats(build_model(name)).macs > 1e6


def test_stats_requires_built_model():
    from repro import nn
    from repro.models.stats import compute_stats as cs
    with pytest.raises(ValueError):
        cs(nn.Sequential([nn.Dense(4)]))


def test_format_count():
    assert format_count(61_800_000) == "61.8M"
    assert format_count(1_810_000_000) == "1.81B"
    assert format_count(950) == "950"
    assert format_count(12_000) == "12K"


def test_xnornet_uses_magnitude_aware_kernels():
    from repro.binary import MagnitudeAwareSign
    model = build_model("xnornet")
    quantizers = [l.kernel_quantizer for l in model.layers_of_type(QuantLayer)]
    assert any(isinstance(q, MagnitudeAwareSign) for q in quantizers)


def test_birealnet_uses_approx_sign_inputs():
    from repro.binary import ApproxSign
    model = build_model("birealnet")
    quantizers = [l.input_quantizer for l in model.layers_of_type(QuantLayer)]
    assert any(isinstance(q, ApproxSign) for q in quantizers)
