"""Gradient and behaviour tests for the numpy NN layers."""

import numpy as np

from repro import nn

from gradcheck import numerical_gradient


def build_layer(layer, input_shape, seed=0):
    layer.build(input_shape, np.random.default_rng(seed))
    return layer


def check_layer_gradients(layer, x, rng, check_params=True):
    """Probe-weighted scalar loss; compare backward grads vs finite diff."""
    probe = rng.standard_normal(layer.forward(x, training=True).shape)

    def loss():
        return float((layer.forward(x, training=True) * probe).sum())

    out = layer.forward(x, training=True)
    dx = layer.backward((probe).astype(out.dtype))
    np.testing.assert_allclose(dx, numerical_gradient(loss, x), rtol=2e-2, atol=1e-4)
    if check_params:
        for key, param in layer.params.items():
            np.testing.assert_allclose(
                layer.grads[key], numerical_gradient(loss, param),
                rtol=2e-2, atol=1e-4, err_msg=f"param {key}")


def test_dense_gradients(rng):
    layer = build_layer(nn.Dense(4), (3,))
    for key in layer.params:
        layer.params[key] = layer.params[key].astype(np.float64)
    x = rng.standard_normal((5, 3))
    check_layer_gradients(layer, x, rng)


def test_conv2d_gradients(rng):
    layer = build_layer(nn.Conv2D(2, 3, stride=1, padding="same"), (5, 5, 2))
    for key in layer.params:
        layer.params[key] = layer.params[key].astype(np.float64)
    x = rng.standard_normal((2, 5, 5, 2))
    check_layer_gradients(layer, x, rng)


def test_batchnorm_gradients(rng):
    layer = build_layer(nn.BatchNorm(), (3,))
    for key in layer.params:
        layer.params[key] = layer.params[key].astype(np.float64)
    x = rng.standard_normal((8, 3))
    check_layer_gradients(layer, x, rng)


def test_channelscale_gradients(rng):
    layer = build_layer(nn.ChannelScale(), (4,))
    for key in layer.params:
        layer.params[key] = layer.params[key].astype(np.float64)
    x = rng.standard_normal((6, 4))
    check_layer_gradients(layer, x, rng)


def test_batchnorm_running_stats_converge(rng):
    layer = build_layer(nn.BatchNorm(momentum=0.0), (2,))
    x = rng.standard_normal((256, 2)) * 3.0 + 1.0
    layer.forward(x, training=True)
    np.testing.assert_allclose(layer.running_mean, x.mean(axis=0), atol=1e-6)
    np.testing.assert_allclose(layer.running_var, x.var(axis=0), atol=1e-6)
    # inference uses the running stats
    out = layer.forward(x, training=False)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-5)


def test_batchnorm_4d(rng):
    layer = build_layer(nn.BatchNorm(), (4, 4, 3))
    x = rng.standard_normal((2, 4, 4, 3))
    out = layer.forward(x, training=True)
    assert out.shape == x.shape
    np.testing.assert_allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-5)


def test_sign_forward_bipolar():
    layer = nn.Sign()
    x = np.array([-2.0, -0.0, 0.0, 0.5, 3.0])
    out = layer.forward(x)
    assert set(np.unique(out)) <= {-1.0, 1.0}
    assert out[2] == 1.0  # sign(0) = +1 convention


def test_sign_ste_gradient_window():
    layer = nn.Sign()
    x = np.array([-2.0, -0.5, 0.5, 2.0])
    layer.forward(x, training=True)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, [0.0, 1.0, 1.0, 0.0])


def test_relu(rng):
    layer = nn.ReLU()
    x = rng.standard_normal((4, 4))
    out = layer.forward(x, training=True)
    assert (out >= 0).all()
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, (x > 0).astype(float))


def test_flatten_roundtrip(rng):
    layer = nn.Flatten()
    x = rng.standard_normal((2, 3, 3, 4))
    out = layer.forward(x, training=True)
    assert out.shape == (2, 36)
    back = layer.backward(out)
    assert back.shape == x.shape


def test_global_avg_pool(rng):
    layer = nn.GlobalAvgPool2D()
    x = rng.standard_normal((2, 4, 4, 3))
    out = layer.forward(x, training=True)
    np.testing.assert_allclose(out, x.mean(axis=(1, 2)))
    dx = layer.backward(np.ones_like(out))
    np.testing.assert_allclose(dx, np.full_like(x, 1 / 16))


def test_maxpool_layer_shapes(rng):
    layer = nn.MaxPool2D(2)
    assert layer.compute_output_shape((8, 8, 5)) == (4, 4, 5)
    x = rng.standard_normal((1, 8, 8, 5))
    out = layer.forward(x, training=True)
    assert out.shape == (1, 4, 4, 5)
    assert layer.backward(np.ones_like(out)).shape == x.shape


def test_layer_names_unique():
    a, b = nn.Dense(3), nn.Dense(3)
    assert a.name != b.name


def test_conv_output_shape_padding_modes():
    conv = nn.Conv2D(8, 5, stride=1, padding="valid")
    assert conv.compute_output_shape((28, 28, 1)) == (24, 24, 8)
    conv_same = nn.Conv2D(8, 3, stride=2, padding="same")
    assert conv_same.compute_output_shape((28, 28, 1)) == (14, 14, 8)
