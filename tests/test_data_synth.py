"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import load_synth_imagenet, load_synth_mnist
from repro.data.synth_imagenet import CLASS_NAMES, render_class
from repro.data.synth_mnist import DIGIT_STROKES, render_digit


def test_all_digits_have_strokes():
    assert set(DIGIT_STROKES) == set(range(10))


def test_render_digit_shape_and_range(rng):
    image = render_digit(3, rng)
    assert image.shape == (28, 28)
    assert image.dtype == np.float32
    assert 0.0 <= image.min() and image.max() <= 1.0
    assert image.max() > 0.5  # strokes must actually be drawn


def test_render_digit_rejects_bad_label(rng):
    with pytest.raises(ValueError):
        render_digit(10, rng)


def test_render_digit_jitter_varies(rng):
    a = render_digit(5, np.random.default_rng(0))
    b = render_digit(5, np.random.default_rng(1))
    assert not np.array_equal(a, b)


def test_digits_are_distinguishable():
    """Mean images of different classes must differ substantially."""
    means = []
    for digit in range(10):
        rng = np.random.default_rng(100 + digit)
        means.append(np.mean([render_digit(digit, rng) for _ in range(8)], axis=0))
    for i in range(10):
        for j in range(i + 1, 10):
            assert np.abs(means[i] - means[j]).mean() > 0.02, (i, j)


def test_mnist_splits_shapes():
    (x_tr, y_tr), (x_te, y_te) = load_synth_mnist(n_train=50, n_test=20)
    assert x_tr.shape == (50, 28, 28, 1)
    assert x_te.shape == (20, 28, 28, 1)
    assert y_tr.shape == (50,)
    assert set(np.unique(y_tr)) <= set(range(10))


def test_mnist_train_test_disjoint_rendering():
    (x_tr, _), (x_te, _) = load_synth_mnist(n_train=20, n_test=20, seed=0)
    assert not np.array_equal(x_tr[:20], x_te[:20])


def test_mnist_deterministic_by_seed():
    a = load_synth_mnist(n_train=10, n_test=5, seed=3)
    b = load_synth_mnist(n_train=10, n_test=5, seed=3)
    np.testing.assert_array_equal(a[0][0], b[0][0])


def test_imagenet_classes_shape_and_range(rng):
    for label in range(10):
        image = render_class(label, rng)
        assert image.shape == (32, 32, 3)
        assert 0.0 <= image.min() and image.max() <= 1.0


def test_imagenet_rejects_bad_label(rng):
    with pytest.raises(ValueError):
        render_class(10, rng)


def test_imagenet_has_ten_class_names():
    assert len(CLASS_NAMES) == 10
    assert len(set(CLASS_NAMES)) == 10


def test_imagenet_splits_balanced():
    (x_tr, y_tr), _ = load_synth_imagenet(n_train=100, n_test=10)
    counts = np.bincount(y_tr, minlength=10)
    assert (counts == 10).all()


def test_imagenet_structure_not_color():
    """Per-sample colors are randomized: channel means must vary in-class."""
    rng = np.random.default_rng(0)
    means = [render_class(0, rng).mean(axis=(0, 1)) for _ in range(6)]
    assert np.std([m[0] for m in means]) > 0.02
