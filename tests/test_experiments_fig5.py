"""Integration tests for the Fig. 5 / Table II runners (cached models)."""

import numpy as np
import pytest

from repro.experiments import fig5, get_imagenet, trained_zoo_model
from repro.experiments.tables import table2_model_stats
from repro.models.zoo import MODEL_PAPER_STATS


@pytest.fixture(scope="module")
def tiny_imagenet_test():
    _, test = get_imagenet()
    return test.subset(60)


def test_trained_zoo_model_loads_from_cache():
    model = trained_zoo_model("binary_alexnet")
    assert model.built
    again = trained_zoo_model("binary_alexnet")
    first = model.state_dict()
    second = again.state_dict()
    for key in first:
        np.testing.assert_array_equal(first[key], second[key])


def test_trained_zoo_model_rejects_unknown():
    with pytest.raises(ValueError):
        trained_zoo_model("lenet5000")


def test_model_sweep_single_model(tiny_imagenet_test):
    from repro.core import FaultSpec
    results = fig5.model_sweep(
        FaultSpec.bitflip, xs=[0.0, 0.2], models=["binary_alexnet"],
        repeats=2, test=tiny_imagenet_test)
    assert list(results) == ["binary_alexnet"]
    result = results["binary_alexnet"]
    assert result.accuracies.shape == (2, 2)
    assert result.mean()[0] == pytest.approx(result.baseline)
    assert result.mean()[1] <= result.mean()[0]


def test_fig5c_recovers_with_period(tiny_imagenet_test):
    results = fig5.run_fig5c(models=["binary_resnet_e18"], periods=(0, 4),
                             rate=0.15, repeats=2, test=tiny_imagenet_test)
    means = results["binary_resnet_e18"].mean()
    assert means[1] >= means[0] - 0.05


def test_table2_stats_without_accuracy():
    rows = table2_model_stats(models=["binary_densenet28", "binary_alexnet"],
                              measure_accuracy=False)
    assert len(rows) == 2
    for row in rows:
        assert row["binarized_pct"] > 85.0
        assert row["paper_binarized_pct"] == \
            MODEL_PAPER_STATS[row["model"]][4]
        assert np.isnan(row["top1_pct"])


def test_sweep_ranges_match_paper_axes():
    """Fig. 5b's stuck-at axis is 10x tighter than Fig. 5a's bit-flip axis."""
    assert max(fig5.STUCKAT_RATES) == 0.02
    assert max(fig5.BITFLIP_RATES) == 0.20
    assert max(fig5.BITFLIP_RATES) / max(fig5.STUCKAT_RATES) == 10.0
