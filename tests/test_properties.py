"""Property-based tests (hypothesis) on the platform's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FaultSpec, assemble_layer_masks, build_bitflip_mask,
                        march_test, tile_vector)
from repro.core.semantics import apply_output_flips, apply_weight_stuck
from repro.lim import Crossbar, CrossbarConfig, TileSchedule, ideal_device_params


@given(st.integers(1, 40), st.integers(1, 400))
@settings(max_examples=60, deadline=None)
def test_tile_vector_periodicity(pattern_len, length):
    """Tiled vectors repeat the pattern exactly."""
    pattern = np.arange(pattern_len)
    tiled = tile_vector(pattern, length)
    assert len(tiled) == length
    for i in range(length):
        assert tiled[i] == pattern[i % pattern_len]


@given(st.integers(1, 6), st.integers(2, 30), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_output_flip_is_involution(batch, outputs, seed):
    """Applying the same flip selector twice restores the tensor."""
    rng = np.random.default_rng(seed)
    feature_map = rng.standard_normal((batch, outputs)).astype(np.float32)
    selector = rng.random(outputs) < 0.4
    once = apply_output_flips(feature_map, selector)
    twice = apply_output_flips(once, selector)
    np.testing.assert_array_equal(twice, feature_map)
    # flipped positions are exact negations, others untouched
    np.testing.assert_array_equal(once[:, selector], -feature_map[:, selector])
    np.testing.assert_array_equal(once[:, ~selector], feature_map[:, ~selector])


@given(st.integers(2, 20), st.integers(1, 8), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_weight_stuck_is_idempotent(k, f, seed):
    """Freezing frozen weights changes nothing."""
    rng = np.random.default_rng(seed)
    kernel = rng.choice([-1.0, 1.0], size=(k, f)).astype(np.float32)
    kmask = rng.random((k, f)) < 0.3
    kvals = rng.choice([-1.0, 1.0], size=(k, f)).astype(np.float32)
    once = apply_weight_stuck(kernel, kmask, kvals)
    twice = apply_weight_stuck(once, kmask, kvals)
    np.testing.assert_array_equal(once, twice)
    np.testing.assert_array_equal(once[kmask], kvals[kmask])
    np.testing.assert_array_equal(once[~kmask], kernel[~kmask])


@given(st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False),
       st.integers(2, 20), st.integers(2, 20), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_mask_rate_monotonicity(rate_a, rate_b, rows, cols, seed):
    """Higher injection rates never produce smaller masks."""
    low, high = sorted([rate_a, rate_b])
    mask_low = build_bitflip_mask(rows, cols, low, np.random.default_rng(seed))
    mask_high = build_bitflip_mask(rows, cols, high, np.random.default_rng(seed))
    assert mask_low.sum() <= mask_high.sum()


@given(st.integers(1, 10), st.integers(1, 50), st.integers(1, 16),
       st.integers(1, 12), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_schedule_tiles_partition_exactly(positions, terms, filters, rows, cols):
    """Every (term, channel) pair belongs to exactly one weight tile."""
    schedule = TileSchedule(positions=positions, terms=terms, filters=filters,
                            rows=rows, cols=cols)
    covered = np.zeros((terms, filters), dtype=int)
    for tile in range(schedule.tiles):
        term_idx, chan_idx = schedule.tile_blocks(tile)
        covered[np.ix_(term_idx, chan_idx)] += 1
    assert (covered == 1).all()
    assert schedule.steps == schedule.tiles * positions


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3),
                          st.integers(0, 1)),
                min_size=0, max_size=8, unique_by=lambda t: (t[0], t[1])))
@settings(max_examples=40, deadline=None)
def test_march_test_finds_every_stuck_gate(faults):
    """The march test detects exactly the injected stuck gates."""
    xbar = Crossbar(CrossbarConfig(rows=6, cols=4, gate_family="imply",
                                   device=ideal_device_params()))
    for row, col, value in faults:
        xbar.inject_stuck_gate(row, col, value)
    detection = march_test(xbar)
    want_high = {(r, c) for r, c, v in faults if v == 1}
    want_low = {(r, c) for r, c, v in faults if v == 0}
    assert set(detection["stuck_at_1"]) == want_high
    assert set(detection["stuck_at_0"]) == want_low


@given(st.floats(0.0, 0.5, allow_nan=False), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_assembled_masks_union_bound(rate, seed):
    """Combined specs OR together: the union is at least each part."""
    rng = np.random.default_rng(seed)
    masks = assemble_layer_masks(10, 10, [
        FaultSpec.bitflip(rate),
        FaultSpec.faulty_rows(1),
    ], rng)
    assert masks.flip_mask.sum() >= 10  # the whole faulty row
    assert masks.flip_mask.sum() >= int(round(rate * 100))


@given(st.integers(1, 4), st.integers(1, 30), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_flip_then_stuck_composition_order(batch, outputs, seed):
    """Stuck-at forces win over flips on overlapping positions (the
    injector applies flips first, then freezes)."""
    from repro.core.semantics import apply_output_stuck

    rng = np.random.default_rng(seed)
    feature_map = rng.standard_normal((batch, outputs)).astype(np.float32)
    flip_sel = rng.random(outputs) < 0.5
    stuck_sel = rng.random(outputs) < 0.5
    signs = rng.choice([-1.0, 1.0], size=outputs)
    rail = 9.0
    out = apply_output_flips(feature_map, flip_sel)
    out = apply_output_stuck(out, stuck_sel, signs, rail)
    np.testing.assert_array_equal(out[:, stuck_sel],
                                  np.tile(signs[stuck_sel] * rail, (batch, 1)))
