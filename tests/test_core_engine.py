"""Tests for the job-based campaign engine (executors, caching, seeding)."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import (CampaignEvaluator, FaultCampaign, FaultGenerator,
                        FaultInjector, FaultSpec, MultiprocessingExecutor,
                        SerialExecutor, SharedMemoryExecutor, build_jobs,
                        get_executor, plan_has_faults)


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN on a separable task, with held-out data."""
    rng = np.random.default_rng(0)
    n = 400
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=25, batch_size=32)
    return model, x[300:], y[300:]


def test_build_jobs_flattens_grid_with_plans(trained_setup):
    model, _, _ = trained_setup
    xs = [0.0, 0.25, 0.5]
    jobs = build_jobs(model, FaultSpec.bitflip, xs, repeats=4, seed=7,
                      rows=8, cols=4)
    assert len(jobs) == len(xs) * 4
    coords = {(job.point_index, job.repeat_index) for job in jobs}
    assert coords == {(i, j) for i in range(3) for j in range(4)}
    for job in jobs:
        assert job.seed == FaultGenerator.job_seed(7, job.point_index,
                                                   job.repeat_index)
        assert job.x_value == xs[job.point_index]
        # plans are pre-generated, one mask set per mapped layer
        assert set(job.plan) == {layer.name for layer in model.layers
                                 if isinstance(layer, QuantDense)}


def test_job_seed_matches_seed_engine_formula():
    assert FaultGenerator.job_seed(3, 2, 5) == 3 + 7919 * 5 + 104729 * 2


def test_plan_has_faults(trained_setup):
    model, _, _ = trained_setup
    empty = build_jobs(model, FaultSpec.bitflip, [0.0], 1, 0, 8, 4)[0].plan
    faulty = build_jobs(model, FaultSpec.bitflip, [0.5], 1, 0, 8, 4)[0].plan
    assert not plan_has_faults(empty)
    assert plan_has_faults(faulty)


def test_engine_matches_legacy_triple_loop(trained_setup):
    """The job engine must reproduce the seed engine's loop bit-for-bit."""
    model, x, y = trained_setup
    xs = [0.0, 0.3]
    repeats = 3
    injector = FaultInjector(True)
    legacy = np.zeros((len(xs), repeats))
    for i, x_value in enumerate(xs):
        for j in range(repeats):
            generator = FaultGenerator(FaultSpec.bitflip(x_value), rows=8,
                                       cols=4, seed=7919 * j + 104729 * i)
            with injector.injecting(model, generator.generate(model)):
                legacy[i, j] = model.evaluate(x, y)
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=xs, repeats=repeats, seed=0)
    np.testing.assert_array_equal(result.accuracies, legacy)


def test_serial_and_multiprocessing_bit_identical(trained_setup):
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.2, 0.4], repeats=3, seed=11)
    serial = FaultCampaign(model, x, y, rows=8, cols=4,
                           executor="serial").run(FaultSpec.bitflip, **kwargs)
    parallel = FaultCampaign(model, x, y, rows=8, cols=4,
                             executor="multiprocessing",
                             n_jobs=2).run(FaultSpec.bitflip, **kwargs)
    np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
    assert serial.baseline == parallel.baseline
    assert parallel.meta["executor"] == "multiprocessing"


def test_shared_memory_bit_identical_to_serial(trained_setup):
    """The zero-copy shm executor must match serial on both backends."""
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.2, 0.4], repeats=3, seed=11)
    serial = FaultCampaign(model, x, y, rows=8, cols=4,
                           executor="serial").run(FaultSpec.bitflip, **kwargs)
    for backend in ("float", "packed"):
        campaign = FaultCampaign(model, x, y, rows=8, cols=4,
                                 executor="shared_memory", n_jobs=2,
                                 backend=backend)
        result = campaign.run(FaultSpec.bitflip, **kwargs)
        np.testing.assert_array_equal(serial.accuracies, result.accuracies)
        assert serial.baseline == result.baseline
        assert result.meta["executor"] == "shared_memory"


def test_shared_memory_payload_smaller_than_pickled(trained_setup):
    """The shm payload must not scale with the test set: it ships block
    descriptors, not arrays."""
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.3], repeats=2, seed=1)
    sizes = {}
    for executor in ("multiprocessing", "shared_memory"):
        campaign = FaultCampaign(model, x, y, rows=8, cols=4,
                                 executor=executor, n_jobs=2)
        campaign.run(FaultSpec.bitflip, **kwargs)
        sizes[executor] = campaign._executor.payload_bytes
    assert sizes["shared_memory"] < sizes["multiprocessing"]
    # the gap is at least the test-set arrays themselves
    assert sizes["multiprocessing"] - sizes["shared_memory"] > x.nbytes // 2


def test_batch_level_split_when_grid_underfills_pool(trained_setup):
    """A single-job grid on a 2-worker pool must shard test batches and
    reduce integer counts to the exact unsharded accuracy."""
    model, x, y = trained_setup
    kwargs = dict(xs=[0.35], repeats=1, seed=11)
    serial = FaultCampaign(model, x, y, rows=8, cols=4,
                           batch_size=16).run(FaultSpec.bitflip, **kwargs)
    for executor in ("multiprocessing", "shared_memory"):
        campaign = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=16,
                                 executor=executor, n_jobs=2)
        assert campaign._executor._shard_count(1, 7) == 2
        result = campaign.run(FaultSpec.bitflip, **kwargs)
        np.testing.assert_array_equal(serial.accuracies, result.accuracies)
        # the sharded path really ran through the pool, not the fallback
        assert campaign._executor.payload_bytes > 0


def test_shard_counts_sum_to_full_evaluation(trained_setup):
    """evaluate_plan_counts shards partition the batches exactly."""
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=16)
    plan = build_jobs(model, FaultSpec.bitflip, [0.4], 1, 3, 8, 4)[0].plan
    full_correct, full_total = evaluator.evaluate_plan_counts(plan)
    assert full_total == len(x)
    assert full_correct / full_total == evaluator.evaluate_plan(plan)
    for n_shards in (2, 3):
        parts = [evaluator.evaluate_plan_counts(plan, shard, n_shards)
                 for shard in range(n_shards)]
        assert sum(c for c, _ in parts) == full_correct
        assert sum(t for _, t in parts) == full_total


def test_shard_count_policy():
    executor = MultiprocessingExecutor(n_jobs=4)
    assert executor._shard_count(0, 10) == 1   # nothing to run
    assert executor._shard_count(8, 10) == 1   # grid already fills the pool
    assert executor._shard_count(1, 1) == 1    # a single batch cannot split
    assert executor._shard_count(1, 10) == 4   # 1 job on 4 workers
    assert executor._shard_count(3, 10) == 2   # 3 jobs on 4 workers
    assert executor._shard_count(1, 3) == 3    # capped by batch count


def test_multiprocessing_preserves_caller_caches(trained_setup):
    """Spinning up a pool must not discard the caller's warm layer caches
    (mixed serial/parallel use would otherwise thrash them)."""
    model, x, y = trained_setup
    # packed backend: dense layers memoize their packed input words (the
    # float dense path derives nothing cacheable)
    evaluator = CampaignEvaluator(model, x, y, backend="packed")
    evaluator.baseline()  # warm prefix activations + layer input caches
    jobs = build_jobs(model, FaultSpec.bitflip, [0.3], 2, 0, 8, 4)
    evaluator.evaluate_plan(jobs[0].plan)  # warm packed-kernel caches too
    warm_inputs = {layer.name: layer._input_cache.entries()
                   for layer in model.layers_of_type(QuantDense)}
    assert any(warm_inputs.values()), "test premise: caches must be warm"
    MultiprocessingExecutor(n_jobs=2).run(jobs, evaluator)
    for layer in model.layers_of_type(QuantDense):
        assert layer._input_cache.entries() == warm_inputs[layer.name]


def test_evaluator_snapshot_immune_to_caller_mutation(trained_setup):
    """Mutating the caller's arrays after construction must not desync the
    evaluator's cached prefix activations from its labels/data."""
    model, x, y = trained_setup
    x_arg, y_arg = x.copy(), y.copy()
    evaluator = CampaignEvaluator(model, x_arg, y_arg)
    before = evaluator.baseline()
    rng = np.random.default_rng(99)
    x_arg[:] = rng.choice([-1.0, 1.0], size=x_arg.shape)
    y_arg[:] = 1 - y_arg
    evaluator.clear_caches()  # even recomputation must use the snapshot
    assert evaluator.baseline() == before
    plan = build_jobs(model, FaultSpec.bitflip, [0.3], 1, 5, 8, 4)[0].plan
    fresh = CampaignEvaluator(model, x.copy(), y.copy())
    assert evaluator.evaluate_plan(plan) == fresh.evaluate_plan(plan)


def test_repro_n_jobs_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_N_JOBS", "2")
    assert MultiprocessingExecutor().n_jobs == 2
    assert SharedMemoryExecutor().n_jobs == 2
    monkeypatch.delenv("REPRO_N_JOBS")
    assert MultiprocessingExecutor(3).n_jobs == 3


def test_executors_stream_results(trained_setup):
    """run_iter yields (point, repeat, accuracy) cells incrementally."""
    model, x, y = trained_setup
    jobs = build_jobs(model, FaultSpec.bitflip, [0.0, 0.3], 2, 0, 8, 4)
    evaluator = CampaignEvaluator(model, x, y)
    expected = {(job.point_index, job.repeat_index) for job in jobs}
    for executor in (SerialExecutor(), SharedMemoryExecutor(n_jobs=2)):
        seen = {(i, j): acc for i, j, acc in
                executor.run_iter(jobs, evaluator)}
        assert set(seen) == expected


def test_float_and_packed_campaigns_bit_identical(trained_setup):
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.3], repeats=3, seed=5)
    float_result = FaultCampaign(model, x, y, rows=8, cols=4,
                                 backend="float").run(FaultSpec.bitflip,
                                                      **kwargs)
    packed_result = FaultCampaign(model, x, y, rows=8, cols=4,
                                  backend="packed").run(FaultSpec.bitflip,
                                                        **kwargs)
    np.testing.assert_array_equal(float_result.accuracies,
                                  packed_result.accuracies)
    assert float_result.baseline == packed_result.baseline


def test_campaign_restores_model_backend(trained_setup):
    """Campaigns may not permanently re-mode a shared model."""
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, backend="packed")
    campaign.run(FaultSpec.bitflip, xs=[0.3], repeats=2)
    for layer in model.layers_of_type(QuantDense):
        assert layer.execution_backend == "float"


def test_stale_caches_dropped_after_weight_change(trained_setup):
    """In-place weight updates must invalidate baseline/prefix caches."""
    model, x, y = trained_setup
    state = {key: value.copy() for key, value in model.state_dict().items()}
    try:
        campaign = FaultCampaign(model, x, y, rows=8, cols=4)
        before = campaign.baseline_accuracy()
        assert before == model.evaluate(x, y)
        trainer = nn.Trainer(nn.Adam(0.05), seed=1)
        trainer.fit(model, x, (1 - y), epochs=3, batch_size=32)  # unlearn
        after = campaign.baseline_accuracy()
        assert after == model.evaluate(x, y)
        assert after != before
    finally:
        model.load_state_dict(state)


def test_baseline_computed_once_and_reused(trained_setup, monkeypatch):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    calls = {"n": 0}
    original = CampaignEvaluator._evaluate_suffix

    def counting(self, split):
        calls["n"] += 1
        return original(self, split)

    monkeypatch.setattr(CampaignEvaluator, "_evaluate_suffix", counting)
    first = campaign.baseline_accuracy()
    assert calls["n"] == 1
    assert campaign.baseline_accuracy() == first
    assert calls["n"] == 1  # cached, not recomputed
    # a run() with only fault-free points adds no further evaluations
    result = campaign.run(FaultSpec.bitflip, xs=[0.0], repeats=4)
    assert calls["n"] == 1
    np.testing.assert_allclose(result.accuracies, first)


def test_rate_zero_point_reuses_baseline_bitwise(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.4], repeats=3)
    assert (result.accuracies[0] == result.baseline).all()


def test_evaluator_prefix_cache_is_read_only(trained_setup):
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y)
    batches = evaluator._batches_for(0)
    assert all(not z.flags.writeable for z, _ in batches)
    # cached: same objects on the second request
    assert evaluator._batches_for(0)[0][0] is batches[0][0]


def test_get_executor_resolution():
    assert isinstance(get_executor("serial"), SerialExecutor)
    executor = get_executor("multiprocessing", n_jobs=3)
    assert isinstance(executor, MultiprocessingExecutor)
    assert executor.n_jobs == 3
    passthrough = SerialExecutor()
    assert get_executor(passthrough) is passthrough
    with pytest.raises(ValueError):
        get_executor("threads")


def test_unknown_backend_rejected(trained_setup):
    model, x, y = trained_setup
    with pytest.raises(ValueError):
        FaultCampaign(model, x, y, backend="quantum")


def test_campaign_leaves_model_unfaulted(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, backend="packed")
    campaign.run(FaultSpec.bitflip, xs=[0.4], repeats=2)
    for layer in model.layers_of_type(QuantDense):
        assert layer.output_fault_hook is None
        assert layer.kernel_fault_hook is None


def test_clear_caches_releases_memoized_state(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2)
    assert campaign._evaluator._suffix_batches
    campaign.clear_caches()
    assert not campaign._evaluator._suffix_batches
    assert campaign._evaluator._baseline is None
    for layer in model.layers_of_type(QuantDense):
        assert len(layer._input_cache) == 0
