"""Tests for the job-based campaign engine (executors, caching, seeding)."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import (CampaignEvaluator, FaultCampaign, FaultGenerator,
                        FaultInjector, FaultSpec, MultiprocessingExecutor,
                        SerialExecutor, build_jobs, get_executor,
                        plan_has_faults)


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN on a separable task, with held-out data."""
    rng = np.random.default_rng(0)
    n = 400
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=25, batch_size=32)
    return model, x[300:], y[300:]


def test_build_jobs_flattens_grid_with_plans(trained_setup):
    model, _, _ = trained_setup
    xs = [0.0, 0.25, 0.5]
    jobs = build_jobs(model, FaultSpec.bitflip, xs, repeats=4, seed=7,
                      rows=8, cols=4)
    assert len(jobs) == len(xs) * 4
    coords = {(job.point_index, job.repeat_index) for job in jobs}
    assert coords == {(i, j) for i in range(3) for j in range(4)}
    for job in jobs:
        assert job.seed == FaultGenerator.job_seed(7, job.point_index,
                                                   job.repeat_index)
        assert job.x_value == xs[job.point_index]
        # plans are pre-generated, one mask set per mapped layer
        assert set(job.plan) == {layer.name for layer in model.layers
                                 if isinstance(layer, QuantDense)}


def test_job_seed_matches_seed_engine_formula():
    assert FaultGenerator.job_seed(3, 2, 5) == 3 + 7919 * 5 + 104729 * 2


def test_plan_has_faults(trained_setup):
    model, _, _ = trained_setup
    empty = build_jobs(model, FaultSpec.bitflip, [0.0], 1, 0, 8, 4)[0].plan
    faulty = build_jobs(model, FaultSpec.bitflip, [0.5], 1, 0, 8, 4)[0].plan
    assert not plan_has_faults(empty)
    assert plan_has_faults(faulty)


def test_engine_matches_legacy_triple_loop(trained_setup):
    """The job engine must reproduce the seed engine's loop bit-for-bit."""
    model, x, y = trained_setup
    xs = [0.0, 0.3]
    repeats = 3
    injector = FaultInjector(True)
    legacy = np.zeros((len(xs), repeats))
    for i, x_value in enumerate(xs):
        for j in range(repeats):
            generator = FaultGenerator(FaultSpec.bitflip(x_value), rows=8,
                                       cols=4, seed=7919 * j + 104729 * i)
            with injector.injecting(model, generator.generate(model)):
                legacy[i, j] = model.evaluate(x, y)
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=xs, repeats=repeats, seed=0)
    np.testing.assert_array_equal(result.accuracies, legacy)


def test_serial_and_multiprocessing_bit_identical(trained_setup):
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.2, 0.4], repeats=3, seed=11)
    serial = FaultCampaign(model, x, y, rows=8, cols=4,
                           executor="serial").run(FaultSpec.bitflip, **kwargs)
    parallel = FaultCampaign(model, x, y, rows=8, cols=4,
                             executor="multiprocessing",
                             n_jobs=2).run(FaultSpec.bitflip, **kwargs)
    np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
    assert serial.baseline == parallel.baseline
    assert parallel.meta["executor"] == "multiprocessing"


def test_float_and_packed_campaigns_bit_identical(trained_setup):
    model, x, y = trained_setup
    kwargs = dict(xs=[0.0, 0.3], repeats=3, seed=5)
    float_result = FaultCampaign(model, x, y, rows=8, cols=4,
                                 backend="float").run(FaultSpec.bitflip,
                                                      **kwargs)
    packed_result = FaultCampaign(model, x, y, rows=8, cols=4,
                                  backend="packed").run(FaultSpec.bitflip,
                                                        **kwargs)
    np.testing.assert_array_equal(float_result.accuracies,
                                  packed_result.accuracies)
    assert float_result.baseline == packed_result.baseline


def test_campaign_restores_model_backend(trained_setup):
    """Campaigns may not permanently re-mode a shared model."""
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, backend="packed")
    campaign.run(FaultSpec.bitflip, xs=[0.3], repeats=2)
    for layer in model.layers_of_type(QuantDense):
        assert layer.execution_backend == "float"


def test_stale_caches_dropped_after_weight_change(trained_setup):
    """In-place weight updates must invalidate baseline/prefix caches."""
    model, x, y = trained_setup
    state = {key: value.copy() for key, value in model.state_dict().items()}
    try:
        campaign = FaultCampaign(model, x, y, rows=8, cols=4)
        before = campaign.baseline_accuracy()
        assert before == model.evaluate(x, y)
        trainer = nn.Trainer(nn.Adam(0.05), seed=1)
        trainer.fit(model, x, (1 - y), epochs=3, batch_size=32)  # unlearn
        after = campaign.baseline_accuracy()
        assert after == model.evaluate(x, y)
        assert after != before
    finally:
        model.load_state_dict(state)


def test_baseline_computed_once_and_reused(trained_setup, monkeypatch):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    calls = {"n": 0}
    original = CampaignEvaluator._evaluate_suffix

    def counting(self, split):
        calls["n"] += 1
        return original(self, split)

    monkeypatch.setattr(CampaignEvaluator, "_evaluate_suffix", counting)
    first = campaign.baseline_accuracy()
    assert calls["n"] == 1
    assert campaign.baseline_accuracy() == first
    assert calls["n"] == 1  # cached, not recomputed
    # a run() with only fault-free points adds no further evaluations
    result = campaign.run(FaultSpec.bitflip, xs=[0.0], repeats=4)
    assert calls["n"] == 1
    np.testing.assert_allclose(result.accuracies, first)


def test_rate_zero_point_reuses_baseline_bitwise(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.4], repeats=3)
    assert (result.accuracies[0] == result.baseline).all()


def test_evaluator_prefix_cache_is_read_only(trained_setup):
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y)
    batches = evaluator._batches_for(0)
    assert all(not z.flags.writeable for z, _ in batches)
    # cached: same objects on the second request
    assert evaluator._batches_for(0)[0][0] is batches[0][0]


def test_get_executor_resolution():
    assert isinstance(get_executor("serial"), SerialExecutor)
    executor = get_executor("multiprocessing", n_jobs=3)
    assert isinstance(executor, MultiprocessingExecutor)
    assert executor.n_jobs == 3
    passthrough = SerialExecutor()
    assert get_executor(passthrough) is passthrough
    with pytest.raises(ValueError):
        get_executor("threads")


def test_unknown_backend_rejected(trained_setup):
    model, x, y = trained_setup
    with pytest.raises(ValueError):
        FaultCampaign(model, x, y, backend="quantum")


def test_campaign_leaves_model_unfaulted(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, backend="packed")
    campaign.run(FaultSpec.bitflip, xs=[0.4], repeats=2)
    for layer in model.layers_of_type(QuantDense):
        assert layer.output_fault_hook is None
        assert layer.kernel_fault_hook is None


def test_clear_caches_releases_memoized_state(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2)
    assert campaign._evaluator._suffix_batches
    campaign.clear_caches()
    assert not campaign._evaluator._suffix_batches
    assert campaign._evaluator._baseline is None
    for layer in model.layers_of_type(QuantDense):
        assert layer._input_cache == []
