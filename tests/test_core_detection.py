"""Tests for fault detection (march test) and mitigation strategies."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import (FaultGenerator, FaultSpec, majority_vote_predict,
                        march_test, masks_from_detection, remap_columns)
from repro.core.detection import apply_column_permutation
from repro.core.masks import LayerMasks
from repro.lim import Crossbar, CrossbarConfig, ideal_device_params


def clean_crossbar(rows=6, cols=4, gate="imply"):
    return Crossbar(CrossbarConfig(rows=rows, cols=cols, gate_family=gate,
                                   device=ideal_device_params()))


def test_march_test_clean_crossbar():
    xbar = clean_crossbar()
    detection = march_test(xbar)
    assert detection["stuck_at_1"] == []
    assert detection["stuck_at_0"] == []


def test_march_test_finds_stuck_gates():
    xbar = clean_crossbar()
    xbar.inject_stuck_gate(1, 2, stuck_value=1)
    xbar.inject_stuck_gate(4, 0, stuck_value=0)
    detection = march_test(xbar)
    assert (1, 2) in detection["stuck_at_1"]
    assert (4, 0) in detection["stuck_at_0"]
    # no false positives on healthy gates
    assert len(detection["stuck_at_1"]) == 1
    assert len(detection["stuck_at_0"]) == 1


def test_march_test_catches_static_bitflips():
    """An always-firing flip inverts both phases -> flagged in both."""
    xbar = clean_crossbar()
    xbar.inject_bitflip(0, 0, period=0)
    detection = march_test(xbar)
    flagged = set(detection["stuck_at_1"]) | set(detection["stuck_at_0"])
    assert (0, 0) in flagged


def test_masks_from_detection_roundtrip():
    xbar = clean_crossbar()
    xbar.inject_stuck_gate(2, 1, stuck_value=1)
    xbar.inject_stuck_gate(3, 3, stuck_value=0)
    masks = masks_from_detection(xbar, march_test(xbar))
    assert masks.stuck_mask[2, 1]
    assert masks.stuck_values[2, 1] == 1
    assert masks.stuck_mask[3, 3]
    assert masks.stuck_values[3, 3] == 0
    assert masks.stuck_mask.sum() == 2


def test_remap_columns_parks_faulty_on_spares():
    """With fewer channels than columns, faulty columns become spares."""
    masks = LayerMasks(rows=4, cols=6)
    masks.stuck_mask[:, 1] = True     # column 1 fully dead
    masks.stuck_mask[0, 4] = True     # column 4 mildly faulty
    perm = remap_columns(masks, filters=4)
    active = set(perm[:4].tolist())
    assert 1 not in active            # dead column parked on a spare slot
    assert len(active) == 4


def test_remap_columns_validation():
    with pytest.raises(ValueError):
        remap_columns(LayerMasks(rows=2, cols=2), filters=0)


def test_apply_column_permutation_moves_faults():
    masks = LayerMasks(rows=3, cols=3)
    masks.flip_mask[:, 0] = True
    perm = np.array([2, 1, 0])
    permuted = apply_column_permutation(masks, perm)
    assert permuted.flip_mask[:, 2].all()
    assert not permuted.flip_mask[:, 0].any()
    # original untouched
    assert masks.flip_mask[:, 0].all()


def test_remap_reduces_effective_corruption():
    """End-to-end: remapping must not increase the faulty-output count."""
    rng = np.random.default_rng(0)
    masks = LayerMasks(rows=8, cols=8)
    masks.stuck_mask[:, 2] = True
    filters = 5
    perm = remap_columns(masks, filters)
    before = masks.stuck_mask[:, :filters].sum()
    after = apply_column_permutation(masks, perm).stuck_mask[:, :filters].sum()
    assert after <= before
    del rng


@pytest.fixture
def voting_setup(rng):
    x = rng.choice([-1.0, 1.0], size=(400, 12)).astype(np.float32)
    y = (x[:, :6].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(24, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((12,), seed=0)
    nn.Trainer(nn.Adam(0.01), seed=0).fit(model, x[:300], y[:300],
                                          epochs=15, batch_size=32)
    return model, x[300:], y[300:]


def test_majority_vote_requires_plans(voting_setup):
    model, x, _ = voting_setup
    with pytest.raises(ValueError):
        majority_vote_predict(model, x, [])


def test_majority_vote_recovers_accuracy(voting_setup):
    """TMR across independent fault assignments beats a single faulty run."""
    model, x, y = voting_setup
    spec = FaultSpec.stuck_at(0.12)
    plans = [FaultGenerator(spec, rows=8, cols=4, seed=s).generate(model)
             for s in (1, 2, 3)]

    single_accs = []
    from repro.core import FaultInjector
    injector = FaultInjector()
    for plan in plans:
        with injector.injecting(model, plan):
            single_accs.append(float(
                (model.predict(x).argmax(axis=-1) == y).mean()))

    voted = majority_vote_predict(model, x, plans)
    voted_acc = float((voted == y).mean())
    assert voted_acc >= np.mean(single_accs) - 0.01


def test_majority_vote_single_plan_equals_plain(voting_setup):
    model, x, _ = voting_setup
    plan = FaultGenerator(FaultSpec.bitflip(0.1), rows=8, cols=4,
                          seed=0).generate(model)
    voted = majority_vote_predict(model, x, [plan])
    from repro.core import FaultInjector
    with FaultInjector().injecting(model, plan):
        plain = model.predict(x).argmax(axis=-1)
    np.testing.assert_array_equal(voted, plain)
