"""Tests for ``repro.obs``: clocks, spans, metrics, exporters, and the
end-to-end telemetry contract.

The two load-bearing properties:

* **determinism** — instrumented runs are bit-identical to
  uninstrumented runs on every executor × backend combination, and a
  :class:`FakeClock` makes the trace itself byte-reproducible;
* **compatibility** — the legacy ``meta`` counter blocks
  (``resilience``, ``input_cache``) stay attached (now always, even on
  clean serial runs), with the registry as the canonical store behind
  them.
"""

import http.client
import json

import numpy as np
import pytest

import service_support  # noqa: F401  (registers svc-tiny)
from repro import api, nn
from repro.api.events import RunFinished, TelemetrySnapshot
from repro.api.request import RunRequest
from repro.binary import QuantDense
from repro.cli import main as cli_main
from repro.core import FaultCampaign, FaultSpec
from repro.core.resilience import new_stats
from repro.obs import (FakeClock, MetricsRegistry, Observability,
                       SystemClock, Tracer, activated, current,
                       get_registry, render_prometheus, reset_registry)
from repro.obs.trace import load_trace, render_timeline, span_payload
from repro.service import ServiceClient, start_in_thread


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN with held-out data (engine-test idiom)."""
    rng = np.random.default_rng(0)
    n = 300
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(16, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:220], y[:220], epochs=10, batch_size=32)
    return model, x[220:], y[220:]


@pytest.fixture
def fresh_registry():
    """An emptied process registry, re-emptied afterwards (the service
    endpoint tests scrape the process-global one)."""
    reset_registry()
    yield get_registry()
    reset_registry()


# -- clocks ----------------------------------------------------------------

def test_fake_clock_is_a_pure_function_of_reads():
    clock = FakeClock(start=10.0, tick=0.5)
    assert [clock.now() for _ in range(3)] == [10.0, 10.5, 11.0]
    clock.advance(4.0)
    assert clock.now() == 15.5
    again = FakeClock(start=10.0, tick=0.5)
    assert [again.now() for _ in range(3)] == [10.0, 10.5, 11.0]


def test_fake_clock_rejects_negative_advance():
    with pytest.raises(ValueError):
        FakeClock().advance(-1.0)


def test_system_clock_is_monotonic():
    clock = SystemClock()
    readings = [clock.now() for _ in range(5)]
    assert readings == sorted(readings)


# -- tracer ----------------------------------------------------------------

def test_tracer_nests_spans_and_survives_exceptions():
    tracer = Tracer(FakeClock(tick=1.0))
    with pytest.raises(RuntimeError):
        with tracer.span("outer", label="x"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    inner, outer = tracer.spans  # children close (and record) first
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.attrs == {"label": "x"}
    assert inner.duration > 0 and outer.duration > inner.duration


def test_tracer_fake_clock_traces_are_byte_identical():
    def trace():
        tracer = Tracer(FakeClock(tick=0.25))
        with tracer.span("campaign", cells=4):
            with tracer.span("plan"):
                pass
            with tracer.span("dispatch"):
                for _ in range(4):
                    with tracer.span("evaluate"):
                        pass
        return [span_payload(record) for record in tracer.spans]

    assert json.dumps(trace()) == json.dumps(trace())


def test_tracer_sink_tee_chains_and_restores():
    tracer = Tracer(FakeClock(tick=1.0))
    outer_sink, inner_sink = [], []
    with tracer.sink_to(outer_sink.append):
        with tracer.span("a"):
            pass
        with tracer.sink_to(inner_sink.append):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
    with tracer.span("d"):
        pass
    assert [r.name for r in outer_sink] == ["a", "b", "c"]
    assert [r.name for r in inner_sink] == ["b"]
    assert [r.name for r in tracer.spans] == ["a", "b", "c", "d"]


def test_phase_totals_sum_by_name():
    tracer = Tracer(FakeClock(tick=1.0))
    for _ in range(3):
        with tracer.span("evaluate"):
            pass
    totals = tracer.phase_totals()
    assert totals == {"evaluate": 3.0}


# -- metrics ---------------------------------------------------------------

def test_counter_gauge_histogram_semantics():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "jobs")
    jobs.inc()
    jobs.inc(2.0)
    assert jobs.value == 3.0
    with pytest.raises(ValueError):
        jobs.inc(-1.0)

    depth = registry.gauge("depth")
    depth.set(4)
    depth.inc()
    depth.dec(2.0)
    assert depth.value == 3.0

    latency = registry.histogram("latency_seconds",
                                 buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 100.0):
        latency.observe(value)
    assert latency.count == 4
    assert latency.total == pytest.approx(101.05)
    assert latency.counts == [1, 2, 0, 1]  # last bin is +Inf overflow

    # get-or-create returns the same instance; a kind clash raises
    assert registry.counter("jobs_total") is jobs
    with pytest.raises(ValueError):
        registry.gauge("jobs_total")


def test_labelled_series_are_distinct():
    registry = MetricsRegistry()
    registry.counter("cells_total", executor="serial").inc(2)
    registry.counter("cells_total", executor="shared_memory").inc(5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {
        "cells_total{executor=serial}": 2.0,
        "cells_total{executor=shared_memory}": 5.0}


def test_snapshot_fold_adds_counters_overwrites_gauges():
    source, target = MetricsRegistry(), MetricsRegistry()
    source.counter("hits_total").inc(3)
    source.gauge("rate").set(0.75)
    target.counter("hits_total").inc(10)
    target.gauge("rate").set(0.1)
    target.fold_snapshot(source.snapshot())
    assert target.counter("hits_total").value == 13.0
    assert target.gauge("rate").value == 0.75


def test_render_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", "jobs ever admitted").inc(2)
    registry.gauge("repro_queue_depth", "queued jobs").set(1)
    registry.histogram("repro_latency_seconds", "job latency",
                       buckets=(0.5, 5.0)).observe(1.0)
    text = render_prometheus(registry)
    assert "# HELP repro_jobs_total jobs ever admitted" in text
    assert "# TYPE repro_jobs_total counter" in text
    assert "repro_jobs_total 2" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert 'repro_latency_seconds_bucket{le="0.5"} 0' in text
    assert 'repro_latency_seconds_bucket{le="5"} 1' in text
    assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_latency_seconds_sum 1" in text
    assert "repro_latency_seconds_count 1" in text


# -- ambient activation ----------------------------------------------------

def test_activated_scopes_the_ambient_observability():
    assert current() is None
    obs = Observability(clock=FakeClock(tick=1.0))
    with activated(obs):
        assert current() is obs
        with activated(None):  # shielding nested uninstrumented work
            assert current() is None
        assert current() is obs
    assert current() is None


# -- engine instrumentation ------------------------------------------------

SWEEP = dict(xs=[0.0, 0.3], repeats=2, seed=11)


def test_campaign_spans_and_metrics_under_fake_clock(trained_setup):
    model, x, y = trained_setup
    obs = Observability(clock=FakeClock(tick=0.5))
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, obs=obs)
    campaign.run(FaultSpec.bitflip, **SWEEP)
    names = [record.name for record in obs.tracer.spans]
    assert names.count("campaign") == 1
    assert names.count("plan") == 1
    assert names.count("dispatch") == 1
    assert names.count("reduce") == 1
    assert names.count("evaluate") == 4  # one per fresh grid cell
    campaign_span = [r for r in obs.tracer.spans
                     if r.name == "campaign"][0]
    assert campaign_span.attrs["cells"] == 4
    assert campaign_span.parent_id is None
    # spans nest under the campaign root; evaluates under dispatch
    dispatch = [r for r in obs.tracer.spans if r.name == "dispatch"][0]
    for record in obs.tracer.spans:
        if record.name == "evaluate":
            assert record.parent_id == dispatch.span_id
    snapshot = obs.metrics.snapshot()
    assert snapshot["counters"]["repro_cells_evaluated_total"] == 4.0
    assert snapshot["counters"]["repro_cells_resumed_total"] == 0.0
    assert "repro_input_cache_hit_rate" in snapshot["gauges"]
    assert snapshot["counters"]["repro_jobs_retried_total"] == 0.0


def test_instrumented_runs_bit_identical_to_uninstrumented(trained_setup):
    """The acceptance criterion: every executor × backend combo yields
    the exact same accuracies with and without instrumentation."""
    model, x, y = trained_setup
    combos = [("serial", "float"), ("serial", "packed"),
              ("multiprocessing", "float"), ("shared_memory", "packed")]
    for executor, backend in combos:
        plain = FaultCampaign(model, x, y, rows=8, cols=4,
                              executor=executor, n_jobs=2,
                              backend=backend)
        with plain:
            bare = plain.run(FaultSpec.bitflip, **SWEEP)
        observed = FaultCampaign(model, x, y, rows=8, cols=4,
                                 executor=executor, n_jobs=2,
                                 backend=backend,
                                 obs=Observability(
                                     clock=FakeClock(tick=0.125)))
        with observed:
            traced = observed.run(FaultSpec.bitflip, **SWEEP)
        np.testing.assert_array_equal(bare.accuracies, traced.accuracies,
                                      err_msg=f"{executor}/{backend}")
        assert bare.baseline == traced.baseline


def test_resilience_counters_always_attached(trained_setup):
    """Satellite regression: even a clean, unsupervised serial run must
    carry a (zeroed) ``meta["resilience"]`` block."""
    model, x, y = trained_setup
    result = FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, **SWEEP)
    assert result.meta["resilience"] == new_stats()
    assert result.meta["resilience"]["retries"] == 0
    assert result.meta["resilience"]["quarantined"] == []


def test_journaled_resume_keeps_counters_and_traces(tmp_path,
                                                    trained_setup):
    """The journaled-resume path: trace lines interleave with cells
    without breaking resume, and the resumed run still attaches the
    (zeroed) resilience block."""
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    obs = Observability(clock=FakeClock(tick=0.5))
    first = FaultCampaign(model, x, y, rows=8, cols=4, obs=obs).run(
        FaultSpec.bitflip, journal=journal, **SWEEP)
    lines = [json.loads(line)
             for line in journal.read_text().splitlines()[1:]]
    traced = [line for line in lines if line.get("kind") == "trace"]
    cells = [line for line in lines if "accuracy" in line]
    assert len(cells) == 4
    # plan/dispatch/evaluate/reduce close while the journal is open;
    # the campaign root closes after the sink detaches and is not
    # journaled (the renderer handles the orphaned subtree)
    journaled_names = {line["span"] for line in traced}
    assert {"plan", "dispatch", "evaluate", "reduce"} <= journaled_names

    resumed = FaultCampaign(model, x, y, rows=8, cols=4,
                            obs=Observability(
                                clock=FakeClock(tick=0.5))).run(
        FaultSpec.bitflip, journal=journal, **SWEEP)
    np.testing.assert_array_equal(first.accuracies, resumed.accuracies)
    assert resumed.meta["resumed_cells"] == 4
    assert resumed.meta["resilience"] == new_stats()


def test_uninstrumented_journaled_run_stays_trace_free(tmp_path,
                                                       trained_setup):
    model, x, y = trained_setup
    journal = tmp_path / "plain.jsonl"
    FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, journal=journal, **SWEEP)
    assert load_trace(journal) == []


# -- trace loading and rendering -------------------------------------------

def test_load_trace_rejects_non_journals(tmp_path):
    missing = tmp_path / "nope.jsonl"
    with pytest.raises(ValueError):
        load_trace(missing)
    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("this is not json\n")
    with pytest.raises(ValueError):
        load_trace(garbage)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_trace(empty)


def test_load_trace_tolerates_torn_tail(tmp_path):
    journal = tmp_path / "torn.jsonl"
    trace_line = json.dumps({"kind": "trace", "span": "plan", "id": 1,
                             "parent": None, "start": 0.0,
                             "duration": 1.0, "attrs": {}})
    journal.write_text('{"seed": 0}\n' + trace_line + '\n{"kind": "tra')
    spans = load_trace(journal)
    assert [record.name for record in spans] == ["plan"]


def test_render_timeline_tree_folding_and_totals(tmp_path, trained_setup):
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    obs = Observability(clock=FakeClock(tick=0.5))
    FaultCampaign(model, x, y, rows=8, cols=4, obs=obs).run(
        FaultSpec.bitflip, journal=journal,
        xs=[0.0, 0.1, 0.2], repeats=3, seed=11)  # 9 evaluate spans
    text = render_timeline(load_trace(journal))
    assert "dispatch" in text and "plan" in text and "reduce" in text
    assert "evaluate x9" in text  # >4 siblings fold into one line
    assert "per-phase totals:" in text
    assert "%" in text
    assert render_timeline([]) == "no trace spans recorded\n"


def test_cli_trace_command(tmp_path, trained_setup, capsys):
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    FaultCampaign(model, x, y, rows=8, cols=4,
                  obs=Observability(clock=FakeClock(tick=0.5))).run(
        FaultSpec.bitflip, journal=journal, **SWEEP)
    assert cli_main(["trace", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "per-phase totals:" in out
    assert "dispatch" in out
    # a non-journal path is a validation error: uniform exit code 2
    assert cli_main(["trace", str(tmp_path / "missing.jsonl")]) == 2


# -- api layer: ambient obs and the telemetry snapshot ---------------------

def test_api_run_attaches_telemetry_and_emits_snapshot():
    events = []
    report = api.run("svc-tiny", params={"rates": [0.0, 0.2],
                                         "repeats": 2},
                     on_event=events.append)
    telemetry = report.meta["telemetry"]
    assert {"run", "campaign", "plan", "dispatch", "reduce"} \
        <= set(telemetry["phases"])
    assert telemetry["counters"]["repro_cells_evaluated_total"] == 4.0
    assert "repro_input_cache_hit_rate" in telemetry["gauges"]
    snapshots = [e for e in events if isinstance(e, TelemetrySnapshot)]
    assert len(snapshots) == 1
    assert snapshots[0].phases == telemetry["phases"]
    assert snapshots[0].counters == telemetry["counters"]
    # ordering: the snapshot lands right before RunFinished
    assert isinstance(events[-1], RunFinished)
    assert events[-2] is snapshots[0]
    # the ambient observability deactivates once the run is over
    assert current() is None


# -- service: the Prometheus scrape endpoint -------------------------------

def test_service_metrics_endpoint(tmp_path, fresh_registry):
    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        record = client.submit(RunRequest("svc-tiny", params={
            "rates": [0.0, 0.2], "repeats": 2}))
        assert client.watch(record.job_id).state.value == "done"

        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=30)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") \
                == "text/plain; version=0.0.4; charset=utf-8"
            text = response.read().decode("utf-8")
        finally:
            connection.close()

    assert "# TYPE repro_jobs_submitted_total counter" in text
    assert "repro_jobs_submitted_total 1" in text
    assert "repro_jobs_done_total 1" in text
    assert "repro_workers_total 1" in text
    assert "repro_queue_depth 0" in text
    # the job's latency histogram recorded exactly one observation
    assert 'repro_job_latency_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_job_latency_seconds_count 1" in text
    # engine telemetry folded in from the finished run
    assert "repro_cells_evaluated_total 4" in text
    assert "repro_input_cache_hit_rate" in text
    # SSE stream lag histogram exists once a client streamed/watched
    assert "# TYPE repro_sse_lag_frames histogram" in text
