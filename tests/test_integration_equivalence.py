"""Cross-level verification: FLIM fast path vs device-level simulation.

The paper verifies FLIM two ways: fault-free inference against vanilla
Larq/TensorFlow, and fault distribution/mapping against X-Fault.  These
tests reproduce both contracts on small models:

* with zero faults, FLIM == vanilla == device level, bit-exactly;
* with faults, FLIM's PRODUCT semantics must match the device-level
  simulator op-for-op (same schedule, same corrupted products).
"""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantConv2D, QuantDense
from repro.core import FaultInjector, FaultSpec, Semantics
from repro.core.generator import FaultGenerator
from repro.core.masks import LayerMasks
from repro.lim import CrossbarConfig, XFaultSimulator, ideal_device_params

ROWS, COLS = 6, 3


def one_layer_conv_model(seed=0, padding="valid"):
    model = nn.Sequential([
        QuantConv2D(4, 3, padding=padding, input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign"),
    ], name="one_conv")
    model.build((5, 5, 2), seed=seed)
    return model


def one_layer_dense_model(seed=0):
    model = nn.Sequential([
        QuantDense(5, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ], name="one_dense")
    model.build((14,), seed=seed)
    return model


def device_sim(model, gate="magic"):
    return XFaultSimulator(model, CrossbarConfig(
        rows=ROWS, cols=COLS, gate_family=gate, device=ideal_device_params()))


def empty_masks():
    return LayerMasks(rows=ROWS, cols=COLS)


@pytest.mark.parametrize("make_model", [one_layer_conv_model, one_layer_dense_model])
def test_zero_faults_three_way_equivalence(rng, make_model):
    model = make_model()
    shape = (3,) + tuple(model.input_shape)
    x = rng.standard_normal(shape).astype(np.float32)
    vanilla = model.predict(x)
    sim = device_sim(model)
    np.testing.assert_array_equal(sim.run(x), vanilla)
    generator = FaultGenerator(FaultSpec.bitflip(0.0), rows=ROWS, cols=COLS)
    with FaultInjector().injecting(model, generator.generate(model)):
        np.testing.assert_array_equal(model.predict(x), vanilla)


@pytest.mark.parametrize("make_model,batch", [
    (one_layer_conv_model, 1),
    (one_layer_dense_model, 2),
])
def test_static_bitflip_product_level_matches_device(rng, make_model, batch):
    """A transient output flip on gate (r, c) corrupts the same products."""
    model = make_model()
    layer = model.layers[0]
    shape = (batch,) + tuple(model.input_shape)
    x = rng.standard_normal(shape).astype(np.float32)

    faulty_cells = [(1, 0), (4, 2)]
    sim = device_sim(model)
    for r, c in faulty_cells:
        sim.crossbar_for(layer).inject_bitflip(r, c, period=0)
    device_out = sim.run(x)

    masks = empty_masks()
    for r, c in faulty_cells:
        masks.flip_mask[r, c] = True
    masks.flip_semantics = "product"
    with FaultInjector().injecting(model, {layer.name: masks}):
        flim_out = model.predict(x)
    np.testing.assert_array_equal(flim_out, device_out)


def test_same_padding_bitflip_matches_device(rng):
    """Padding ops are never scheduled: both levels must agree on that."""
    model = one_layer_conv_model(padding="same")
    layer = model.layers[0]
    x = rng.standard_normal((1, 5, 5, 2)).astype(np.float32)
    sim = device_sim(model)
    sim.crossbar_for(layer).inject_bitflip(0, 0, period=0)
    device_out = sim.run(x)

    masks = empty_masks()
    masks.flip_mask[0, 0] = True
    masks.flip_semantics = "product"
    with FaultInjector().injecting(model, {layer.name: masks}):
        flim_out = model.predict(x)
    np.testing.assert_array_equal(flim_out, device_out)


@pytest.mark.parametrize("period", [2, 3])
def test_dynamic_bitflip_matches_device(rng, period):
    """Period-n faults must fire on the same occurrences at both levels."""
    model = one_layer_dense_model()
    layer = model.layers[0]
    x = rng.standard_normal((1, 14)).astype(np.float32)
    sim = device_sim(model)
    sim.crossbar_for(layer).inject_bitflip(2, 1, period=period)
    device_out = sim.run(x)

    masks = empty_masks()
    masks.flip_mask[2, 1] = True
    masks.flip_period = period
    masks.flip_semantics = "product"
    with FaultInjector().injecting(model, {layer.name: masks}):
        flim_out = model.predict(x)
    np.testing.assert_array_equal(flim_out, device_out)


@pytest.mark.parametrize("stuck_value", [0, 1])
def test_stuck_weight_product_level_matches_device(rng, stuck_value):
    """A frozen weight (complementary-pair storage) == WEIGHT-level stuck-at."""
    model = one_layer_dense_model()
    layer = model.layers[0]
    x = rng.standard_normal((2, 14)).astype(np.float32)
    cell = (3, 2)
    sim = device_sim(model, gate="magic")
    sim.crossbar_for(layer).inject_stuck_weight(*cell, stuck_value=stuck_value)
    device_out = sim.run(x)

    masks = empty_masks()
    masks.stuck_mask[cell] = True
    masks.stuck_values[cell] = stuck_value
    masks.stuck_semantics = "weight"
    with FaultInjector().injecting(model, {layer.name: masks}):
        flim_out = model.predict(x)
    np.testing.assert_array_equal(flim_out, device_out)


def test_stuck_gate_output_matches_product_stuck(rng):
    """A stuck OUT cell forces every product on the gate to the stuck level."""
    model = one_layer_dense_model()
    layer = model.layers[0]
    x = rng.standard_normal((2, 14)).astype(np.float32)
    cell = (0, 1)
    sim = device_sim(model, gate="imply")
    sim.crossbar_for(layer).inject_stuck_gate(*cell, stuck_value=1)
    device_out = sim.run(x)

    masks = empty_masks()
    masks.stuck_mask[cell] = True
    masks.stuck_values[cell] = 1
    masks.stuck_semantics = "product"
    with FaultInjector().injecting(model, {layer.name: masks}):
        flim_out = model.predict(x)
    np.testing.assert_array_equal(flim_out, device_out)


@pytest.mark.parametrize("make_model", [one_layer_conv_model, one_layer_dense_model])
def test_packed_backend_matches_float_fault_free(rng, make_model):
    """The packed XNOR/popcount backend is bit-identical to the float GEMM."""
    model = make_model()
    x = rng.standard_normal((3,) + tuple(model.input_shape)).astype(np.float32)
    reference = model.predict(x)
    model.set_execution_backend("packed")
    np.testing.assert_array_equal(model.predict(x), reference)
    model.set_execution_backend("float")


@pytest.mark.parametrize("make_model", [one_layer_conv_model, one_layer_dense_model])
@pytest.mark.parametrize("spec", [
    FaultSpec.bitflip(0.3),
    FaultSpec.stuck_at(0.3),
    FaultSpec.stuck_at(0.3, semantics=Semantics.WEIGHT),
])
def test_packed_backend_matches_float_under_faults(rng, make_model, spec):
    """Fault hooks compose with the packed path: identical corrupted maps."""
    model = make_model()
    x = rng.standard_normal((2,) + tuple(model.input_shape)).astype(np.float32)
    generator = FaultGenerator(spec, rows=ROWS, cols=COLS, seed=3)
    plan = generator.generate(model)
    with FaultInjector().injecting(model, plan):
        float_out = model.predict(x)
    model.set_execution_backend("packed")
    with FaultInjector().injecting(model, plan):
        packed_out = model.predict(x)
    model.set_execution_backend("float")
    np.testing.assert_array_equal(packed_out, float_out)


def test_packed_backend_falls_back_for_product_and_same_padding(rng):
    """Semantics the packed path cannot express run the float path — and
    still produce identical results with the backend switched on."""
    model = one_layer_conv_model(padding="same")
    layer = model.layers[0]
    x = rng.standard_normal((2, 5, 5, 2)).astype(np.float32)
    masks = empty_masks()
    masks.flip_mask[1, 0] = True
    masks.flip_semantics = "product"
    with FaultInjector().injecting(model, {layer.name: masks}):
        float_out = model.predict(x)
    model.set_execution_backend("packed")
    with FaultInjector().injecting(model, {layer.name: masks}):
        packed_out = model.predict(x)
    model.set_execution_backend("float")
    np.testing.assert_array_equal(packed_out, float_out)


def test_serial_and_multiprocessing_sweeps_bit_identical(rng):
    """Same seeds -> bit-identical SweepResult across executors (§IV)."""
    from repro.core import FaultCampaign

    model = one_layer_dense_model()
    x = rng.standard_normal((64, 14)).astype(np.float32)
    y = rng.integers(0, 5, size=64)
    kwargs = dict(xs=[0.0, 0.2, 0.5], repeats=3, seed=9)
    serial = FaultCampaign(model, x, y, rows=ROWS, cols=COLS,
                           executor="serial").run(FaultSpec.bitflip, **kwargs)
    parallel = FaultCampaign(model, x, y, rows=ROWS, cols=COLS,
                             executor="multiprocessing",
                             n_jobs=2).run(FaultSpec.bitflip, **kwargs)
    np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
    assert serial.baseline == parallel.baseline


def test_output_level_abstraction_diverges_but_correlates(rng):
    """OUTPUT semantics is an abstraction: not bit-equal to the device, but
    it must corrupt the same layer and keep outputs within valid bounds."""
    model = one_layer_dense_model()
    layer = model.layers[0]
    x = rng.standard_normal((4, 14)).astype(np.float32)
    clean = model.predict(x)
    generator = FaultGenerator(FaultSpec.bitflip(0.3), rows=ROWS, cols=COLS, seed=1)
    with FaultInjector().injecting(model, generator.generate(model)):
        fast = model.predict(x)
    assert not np.array_equal(fast, clean)
    assert np.abs(fast).max() <= layer.reduction_length()


def test_scenario_grid_bit_identical_across_executors_and_backends(rng):
    """A compiled scenario is engine cargo: same seed -> bit-identical
    trajectories for shared_memory/packed vs serial/float (PR 4)."""
    from repro.scenarios import (Episode, FaultClause, Scenario, Timeline,
                                 run_scenario)

    scenario = Scenario(
        name="equivalence-story",
        timeline=Timeline(ages=(0.0, 5e7, 1.2e8)),
        clauses=(FaultClause(kind="stuck_at", rate="lifetime-stuck",
                             spatial="clustered", cluster_size=3),),
        episodes=(Episode(name="storm", duty=0.2, clauses=(
            FaultClause(kind="bitflip", rate=0.2, period=2),)),))
    model = one_layer_dense_model()
    x = rng.standard_normal((64, 14)).astype(np.float32)
    y = rng.integers(0, 5, size=64)
    kwargs = dict(repeats=2, seed=9, rows=ROWS, cols=COLS)
    serial = run_scenario(scenario, model, x, y, **kwargs)
    pooled = run_scenario(scenario, model, x, y, executor="shared_memory",
                          n_jobs=2, backend="packed", **kwargs)
    np.testing.assert_array_equal(serial.accuracies, pooled.accuracies)
    assert serial.baseline == pooled.baseline
