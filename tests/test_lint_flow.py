"""Path semantics of the flow-sensitive lint layer.

Covers the CFG builder (exceptional edges, try/finally routing,
dominators), the dataflow analyses (reaching definitions, use-def,
taint with strong-update kills), and the acceptance fixtures of the
flow rules: a shared-memory leak reachable *only* via an exceptional
edge is flagged while the try/finally and owner-registration versions
pass; rng taint follows intermediate assignments and dies on
reassignment; observability objects are stopped at the pickle
boundary; and the journal-order dominance proof holds on the real
service worker.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import (JournalOrder, ObsPickleBoundary, RngTaint,
                        ShmLeakPath, build_cfg, run_lint)
from repro.lint.cfg import iter_scopes
from repro.lint.flow import (ENTRY_DEF, propagate_taint,
                             reaching_definitions, use_def)
from repro.lint.rules import DEFAULT_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]


def fn_cfg(source):
    """CFG of the first function in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    function = next(n for n in tree.body
                    if isinstance(n, ast.FunctionDef))
    return build_cfg(function)


def node_at(cfg, line):
    """The CFG node whose statement starts at ``line``."""
    for node in cfg.nodes:
        if node.stmt is not None and getattr(node.stmt, "lineno", None) == line:
            return node
    raise AssertionError(f"no node at line {line}")


def lint_tree(tmp_path, files, rules):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([tmp_path], root=tmp_path, rules=rules).findings


# -- CFG construction ------------------------------------------------------

def test_cfg_simple_calls_carry_exceptional_edges():
    cfg = fn_cfg("""\
        def f():
            a = make()
            release(a)
        """)
    assert cfg.exit in node_at(cfg, 2).exc
    assert cfg.exit in node_at(cfg, 3).exc
    # the normal chain still runs entry -> a -> release -> exit
    assert node_at(cfg, 3).index in node_at(cfg, 2).succ


def test_cfg_if_without_else_falls_through():
    cfg = fn_cfg("""\
        def f(x):
            if x:
                work()
            done()
        """)
    header = node_at(cfg, 2)
    body = node_at(cfg, 3)
    after = node_at(cfg, 4)
    assert body.index in header.succ
    assert after.index in header.succ  # the implicit else edge
    assert after.index in body.succ


def test_cfg_return_routes_through_finally_and_dominates_exit():
    cfg = fn_cfg("""\
        def f():
            try:
                return work()
            finally:
                cleanup()
        """)
    ret = node_at(cfg, 3)
    cleanup = node_at(cfg, 5)
    # the return does not jump straight to exit — the finally intervenes
    assert cfg.exit not in ret.succ
    assert cfg.exit in cleanup.succ
    # ...and therefore cleanup() lies on every path to the exit
    assert cleanup.index in cfg.dominators()[cfg.exit]


def test_cfg_raise_inside_try_reaches_handler():
    cfg = fn_cfg("""\
        def f():
            try:
                raise ValueError("boom")
            except ValueError:
                recover()
            done()
        """)
    recover = node_at(cfg, 5)
    done = node_at(cfg, 6)
    assert done.index in recover.succ
    # the raise can reach recover() (via the dispatch node)
    reached = cfg.reachable_without(node_at(cfg, 3).index, frozenset())
    assert recover.index in reached


def test_cfg_loop_has_back_edge_and_break_exits():
    cfg = fn_cfg("""\
        def f(xs):
            for x in xs:
                if x:
                    break
                work(x)
            done()
        """)
    header = node_at(cfg, 2)
    work = node_at(cfg, 5)
    done = node_at(cfg, 6)
    assert header.index in work.succ          # back edge
    brk = node_at(cfg, 4)
    assert done.index in brk.succ             # break jumps past orelse
    assert done.index in header.succ          # normal exhaustion


def test_cfg_exception_in_finally_propagates_outward():
    cfg = fn_cfg("""\
        def f():
            try:
                work()
            finally:
                cleanup()
        """)
    cleanup = node_at(cfg, 5)
    # cleanup() itself raising goes to the function exit, not back
    # into the finally
    assert cfg.exit in cleanup.exc


# -- dataflow --------------------------------------------------------------

def test_reaching_definitions_and_use_def():
    cfg = fn_cfg("""\
        def f(x):
            y = 1
            if x:
                y = 2
            return use(y)
        """)
    ret = node_at(cfg, 5)
    chains = use_def(cfg, params=frozenset({"x"}))
    sites = chains[(ret.index, "y")]
    assert sites == {node_at(cfg, 2).index, node_at(cfg, 4).index}
    reaching = reaching_definitions(cfg, params=frozenset({"x"}))
    assert reaching[ret.index]["x"] == {ENTRY_DEF}


def test_taint_propagates_through_assignment_and_is_killed():
    cfg = fn_cfg("""\
        def f(seed):
            s = seed + 1
            g = make(s)
            s = 0
            h = make(s)
        """)
    tainted = propagate_taint(cfg, seeds=frozenset({"seed"}))
    assert "s" in tainted[node_at(cfg, 3).index]      # derived from seed
    assert "s" not in tainted[node_at(cfg, 5).index]  # strong update kill
    assert "seed" in tainted[node_at(cfg, 5).index]   # params stay tainted


def test_taint_merges_over_branches():
    cfg = fn_cfg("""\
        def f(seed, flag):
            if flag:
                s = seed
            else:
                s = 0
            g = make(s)
        """)
    # some path carries the taint, so the may-analysis keeps it
    assert "s" in propagate_taint(
        cfg, seeds=frozenset({"seed"}))[node_at(cfg, 6).index]


# -- shm-leak-path acceptance ----------------------------------------------

def test_shm_leak_only_on_exceptional_edge_is_flagged(tmp_path):
    """The acceptance fixture: the normal path registers the block, but
    the call *between* create and registration can raise — that single
    exceptional path leaks, and the rule must say so."""
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def leaky(owner, size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                owner.validate(shm)
                owner.append(shm)
                return shm
            """,
    }, rules=[ShmLeakPath()])
    assert [f.rule for f in findings] == ["shm-leak-path"]
    assert "exceptional edge" in findings[0].message
    assert findings[0].line == 4


def test_shm_same_code_with_try_finally_passes(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def guarded(owner, size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    owner.validate(shm)
                    owner.append(shm)
                    return shm
                finally:
                    shm.close()
            """,
    }, rules=[ShmLeakPath()])
    assert findings == []


def test_shm_same_code_with_immediate_registration_passes(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def registered(owner, size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                owner.append(shm)
                owner.validate(shm)
                return shm
            """,
    }, rules=[ShmLeakPath()])
    assert findings == []


def test_shm_leak_on_normal_path_is_flagged_as_such(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def dropped(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                data = bytes(shm.buf)
                return data
            """,
    }, rules=[ShmLeakPath()])
    assert [f.rule for f in findings] == ["shm-leak-path"]
    assert "normal path" in findings[0].message


def test_shm_release_helper_call_counts(tmp_path):
    # the engine's own idiom: handing blocks to _release_shared_blocks
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def helper(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    publish(shm)
                finally:
                    _release_shared_blocks([shm])
            """,
    }, rules=[ShmLeakPath()])
    assert findings == []


def test_old_syntactic_shm_rule_is_retired():
    import repro.lint.rules as rules

    assert not hasattr(rules, "ShmLifecycle")
    assert not hasattr(rules, "SeedThreading")
    ids = [rule.rule_id for rule in DEFAULT_RULES]
    assert "shm-lifecycle" not in ids and "seed-threading" not in ids
    assert "shm-leak-path" in ids and "rng-taint" in ids


# -- rng-taint flow semantics ----------------------------------------------

def test_rng_taint_follows_intermediate_assignment(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def sample(seed, i):
                s = seed + i
                return np.random.default_rng(s).normal()
            """,
    }, rules=[RngTaint()])
    assert findings == []


def test_rng_taint_kill_makes_the_fork_visible(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def sample(seed, i):
                s = seed + i
                s = 7
                return np.random.default_rng(s).normal()
            """,
    }, rules=[RngTaint()])
    assert [f.rule for f in findings] == ["rng-taint"]


def test_rng_taint_argless_generator_is_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def sample(rng):
                return np.random.default_rng().normal()
            """,
    }, rules=[RngTaint()])
    assert [f.rule for f in findings] == ["rng-taint"]


# -- obs-pickle-boundary ---------------------------------------------------

def test_obs_object_in_submit_payload_is_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from repro.obs import Tracer

            def run(pool, xs):
                tracer = Tracer()
                return pool.apply_async(work, (xs, tracer))
            """,
    }, rules=[ObsPickleBoundary()])
    assert [f.rule for f in findings] == ["obs-pickle-boundary"]


def test_obs_param_flows_into_payload(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def run(pool, xs, obs):
                payload = (xs, obs)
                return pool.submit(work, payload)
            """,
    }, rules=[ObsPickleBoundary()])
    assert [f.rule for f in findings] == ["obs-pickle-boundary"]


def test_obs_callback_kwarg_is_parent_side_and_exempt(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def run(pool, xs, obs):
                return pool.apply_async(work, (xs,),
                                        callback=obs.on_done)
            """,
    }, rules=[ObsPickleBoundary()])
    assert findings == []


def test_obs_taint_killed_by_reassignment(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from repro.obs import Tracer

            def run(pool, xs):
                tracer = Tracer()
                summary = tracer.summary()
                tracer = None
                return pool.apply_async(work, (xs, tracer, summary))
            """,
    }, rules=[ObsPickleBoundary()])
    # tracer was cleared before the submit... but summary derives from
    # it, so the def-chain still reaches the payload
    assert [f.rule for f in findings] == ["obs-pickle-boundary"]


def test_obs_rule_ignores_tests_tree(tmp_path):
    findings = lint_tree(tmp_path, {
        "tests/test_a.py": """\
            from repro.obs import Tracer

            def test_run(pool):
                tracer = Tracer()
                pool.apply_async(work, (tracer,))
            """,
    }, rules=[ObsPickleBoundary()])
    assert findings == []


# -- journal-order ---------------------------------------------------------

def test_journal_order_conditional_store_is_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/service/queue.py": """\
            def worker(store, job, result):
                if result.ok:
                    store.save_result(job.job_id, result)
                job.transition(JobState.DONE)
            """,
    }, rules=[JournalOrder()])
    assert [f.rule for f in findings] == ["journal-order"]
    assert "not dominated" in findings[0].message


def test_journal_order_store_dominating_publish_passes(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/service/queue.py": """\
            def worker(store, job, result):
                store.save_result(job.job_id, result)
                job.transition(JobState.DONE)

            def fail(store, job, error):
                job.transition(JobState.FAILED, error=str(error))
            """,
    }, rules=[JournalOrder()])
    # FAILED transitions carry no result and are out of scope
    assert findings == []


def test_journal_order_real_service_worker_is_clean():
    findings = run_lint(
        [REPO_ROOT / "src/repro/service/queue.py"],
        root=REPO_ROOT, rules=[JournalOrder()]).findings
    assert findings == []


# -- performance budget ----------------------------------------------------

def test_full_tree_lint_stays_inside_ci_budget():
    """The CI budget is 10s for the full tree; the CFG layer must not
    blow it up.  (Wall-clock flakes absorbed by a generous margin —
    CI re-measures with its own clock.)"""
    import time

    start = time.monotonic()  # repro: allow[no-wall-clock]
    result = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"],
                      root=REPO_ROOT)
    elapsed = time.monotonic() - start  # repro: allow[no-wall-clock]
    assert result.files > 100
    assert elapsed < 30.0


def test_every_scope_in_the_tree_builds_a_cfg():
    """CFG construction must not crash on any real source shape."""
    total = 0
    for path in (REPO_ROOT / "src").rglob("*.py"):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for scope in iter_scopes(tree):
            cfg = build_cfg(scope)
            total += len(cfg.nodes)
            preds = cfg.preds()
            assert not preds[cfg.entry]
            assert all(not cfg.nodes[cfg.exit].successors()
                       for _ in (0,))
    assert total > 5000
