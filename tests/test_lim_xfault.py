"""Device-level simulator tests: bit-exact equivalence and fault effects."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantConv2D, QuantDense
from repro.lim import CrossbarConfig, XFaultSimulator, ideal_device_params


def tiny_dense_model(seed=0):
    model = nn.Sequential([
        QuantDense(6, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(4, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ], name="tiny_dense")
    model.build((10,), seed=seed)
    # freeze batch-norm stats at something non-trivial
    bn = model.layers_of_type(nn.BatchNorm)[0]
    bn.running_mean[...] = 0.3
    bn.running_var[...] = 1.5
    return model


def tiny_conv_model(padding="valid", seed=0):
    model = nn.Sequential([
        QuantConv2D(4, 3, padding=padding, input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        nn.Flatten(),
        QuantDense(3, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ], name="tiny_conv")
    model.build((6, 6, 2), seed=seed)
    bn = model.layers_of_type(nn.BatchNorm)[0]
    bn.running_mean[...] = 0.1
    bn.running_var[...] = 2.0
    return model


def simulator(model, rows=5, cols=3, gate="imply"):
    return XFaultSimulator(model, CrossbarConfig(
        rows=rows, cols=cols, gate_family=gate, device=ideal_device_params()))


def test_faultfree_dense_bit_exact(rng):
    model = tiny_dense_model()
    sim = simulator(model)
    x = rng.standard_normal((3, 10)).astype(np.float32)
    np.testing.assert_array_equal(sim.run(x), model.predict(x))


@pytest.mark.parametrize("gate", ["imply", "magic"])
@pytest.mark.parametrize("padding", ["valid", "same"])
def test_faultfree_conv_bit_exact(rng, gate, padding):
    model = tiny_conv_model(padding=padding)
    sim = simulator(model, gate=gate)
    x = rng.standard_normal((2, 6, 6, 2)).astype(np.float32)
    np.testing.assert_array_equal(sim.run(x), model.predict(x))


def test_faultfree_with_device_variability(rng):
    """Default (noisy) device parameters must still read correct levels."""
    model = tiny_dense_model()
    sim = XFaultSimulator(model, CrossbarConfig(rows=5, cols=3))
    x = rng.standard_normal((2, 10)).astype(np.float32)
    np.testing.assert_array_equal(sim.run(x), model.predict(x))


def test_stuck_column_kills_mapped_channels(rng):
    """A broken column corrupts exactly the channels f ≡ c (mod cols)."""
    model = tiny_dense_model()
    sim = simulator(model, rows=10, cols=3)
    first = model.layers[0]
    xbar = sim.crossbar_for(first)
    xbar.inject_column_fault(1, stuck_value=1)
    x = rng.standard_normal((2, 10)).astype(np.float32)

    clean = first.forward(np.sign(x))
    # run only the first layer through the simulator by truncating the model
    faulty = sim._run_mapped(first, x)
    # channels 1 and 4 ride column 1 (6 filters, 3 columns)
    corrupted = {f for f in range(6)
                 if not np.array_equal(clean[:, f], faulty[:, f])}
    assert corrupted <= {1, 4}
    assert corrupted  # the fault must actually bite
    # a stuck-at-1 column makes every product +1: output = reduction length
    assert (faulty[:, 1] == first.reduction_length()).all()


def test_stuck_weight_cell_consistent_across_positions(rng):
    """A stuck weight cell corrupts the same weight bit at every position."""
    model = tiny_conv_model()
    sim = simulator(model, rows=6, cols=2)
    conv = model.layers[0]
    xbar = sim.crossbar_for(conv)
    from repro.lim import CELL_W  # MAGIC weight plane; imply uses CELL_B
    del CELL_W
    from repro.lim import CELL_B
    xbar.cells.set_health((2, 0, CELL_B), 1)  # Health.STUCK_LRS

    x = rng.standard_normal((1, 6, 6, 2)).astype(np.float32)
    faulty = sim._run_mapped(conv, x)
    clean = conv.forward(x)
    diff = faulty - clean
    # only channels riding column 0 (f ≡ 0 mod 2) may differ
    assert np.allclose(diff[..., 1::2], 0)


def test_crossbar_for_unknown_layer_raises():
    model = tiny_dense_model()
    sim = simulator(model)
    with pytest.raises(KeyError):
        sim.crossbar_for("nope")


def test_unbuilt_model_rejected():
    model = nn.Sequential([QuantDense(4, input_quantizer="ste_sign")])
    with pytest.raises(ValueError):
        XFaultSimulator(model)


def test_ops_accounting():
    model = tiny_dense_model()
    sim = simulator(model)
    per_image = sum(layer.xnor_ops_per_image()
                    for layer in model.layers_of_type(QuantDense))
    assert sim.total_xnor_ops(batch=4) == 4 * per_image
    assert sim.driver_steps(batch=1) > 0


def test_step_count_advances(rng):
    model = tiny_dense_model()
    sim = simulator(model)
    x = rng.standard_normal((2, 10)).astype(np.float32)
    sim.run(x)
    assert sim.step_count > 0
