"""Direct unit tests of the semantics functions against brute force."""

import numpy as np

from repro.binary import QuantDense
from repro.core import LayerMapping
from repro.core.semantics import (apply_output_flips, apply_output_stuck,
                                  apply_weight_stuck, product_flip,
                                  product_stuck)


def dense_mapping(units=5, features=12, rows=4, cols=3, seed=0):
    layer = QuantDense(units, input_quantizer="ste_sign")
    layer.build((features,), np.random.default_rng(seed))
    return layer, LayerMapping(layer, rows, cols)


def bipolar(rng, shape):
    return rng.choice([-1.0, 1.0], size=shape).astype(np.float32)


def test_output_flips_multi_dim(rng):
    """Selectors index the flattened per-image tensor, any rank."""
    fm = rng.standard_normal((2, 3, 3, 4)).astype(np.float32)
    selector = np.zeros(36, dtype=bool)
    selector[[0, 17, 35]] = True
    out = apply_output_flips(fm, selector)
    flat_in = fm.reshape(2, -1)
    flat_out = out.reshape(2, -1)
    np.testing.assert_array_equal(flat_out[:, selector], -flat_in[:, selector])
    np.testing.assert_array_equal(flat_out[:, ~selector], flat_in[:, ~selector])


def test_output_stuck_rails(rng):
    fm = rng.standard_normal((3, 8)).astype(np.float32)
    selector = np.zeros(8, dtype=bool)
    selector[2] = selector[5] = True
    signs = np.array([1, 1, -1, 1, 1, 1, 1, 1], dtype=np.float32)
    out = apply_output_stuck(fm, selector, signs, rail=12.0)
    assert (out[:, 2] == -12.0).all()
    assert (out[:, 5] == 12.0).all()
    np.testing.assert_array_equal(out[:, ~selector], fm[:, ~selector])


def test_weight_stuck_conv_shape(rng):
    kernel = bipolar(rng, (3, 3, 2, 4))
    kmask = np.zeros((18, 4), dtype=bool)
    kmask[5, 1] = True
    kvals = np.full((18, 4), -1.0, dtype=np.float32)
    out = apply_weight_stuck(kernel, kmask, kvals)
    assert out.shape == kernel.shape
    assert out.reshape(18, 4)[5, 1] == -1.0


def test_product_flip_matches_bruteforce(rng):
    """product_flip must equal recomputing the GEMM with flipped products."""
    layer, mapping = dense_mapping()
    cols = bipolar(rng, (6, 12))
    qw = bipolar(rng, (12, 5))
    clean = cols @ qw
    cells = [(1, 0), (3, 2)]
    got = product_flip(clean, cols, qw, mapping, cells, period=0)

    want = np.zeros_like(clean)
    for p in range(6):
        for f in range(5):
            total = 0.0
            for t in range(12):
                prod = cols[p, t] * qw[t, f]
                if (t % 4, f % 3) in cells:
                    prod = -prod
                total += prod
            want[p, f] = total
    np.testing.assert_allclose(got, want)


def test_product_stuck_matches_bruteforce(rng):
    layer, mapping = dense_mapping()
    cols = bipolar(rng, (4, 12))
    qw = bipolar(rng, (12, 5))
    clean = cols @ qw
    cells = [(0, 1)]
    signs = {(0, 1): -1.0}
    got = product_stuck(clean, cols, qw, mapping, cells, signs)

    want = np.zeros_like(clean)
    for p in range(4):
        for f in range(5):
            total = 0.0
            for t in range(12):
                if (t % 4, f % 3) == (0, 1):
                    total += -1.0
                else:
                    total += cols[p, t] * qw[t, f]
            want[p, f] = total
    np.testing.assert_allclose(got, want)


def test_product_stuck_skips_padding(rng):
    """Zero entries in the im2col matrix are unscheduled ops: no effect."""
    layer, mapping = dense_mapping()
    cols = bipolar(rng, (4, 12))
    cols[:, 0] = 0.0  # padding term
    qw = bipolar(rng, (12, 5))
    clean = cols @ qw
    # cell (0, 1) covers terms {0, 4, 8}; term 0 is padding
    got = product_stuck(clean, cols, qw, mapping, [(0, 1)], {(0, 1): 1.0})
    padded_contrib = got.copy()
    cols2 = cols.copy()
    # only terms 4 and 8 should be forced
    want = clean.copy()
    for p in range(4):
        for f in (1, 4):
            want[p, f] = clean[p, f] - cols2[p, 4] * qw[4, f] + 1.0 \
                - cols2[p, 8] * qw[8, f] + 1.0
    np.testing.assert_allclose(padded_contrib, want)


def test_product_flip_dynamic_period_single_position(rng):
    """For a dense layer (P=1 per image), tile t occurs at step t*1 + 0;
    period 2 flips only tiles with even occurrence index."""
    layer, mapping = dense_mapping()
    # batch of 1 so occurrence arithmetic is directly visible
    cols = bipolar(rng, (1, 12))
    qw = bipolar(rng, (12, 5))
    clean = cols @ qw
    cell = (1, 1)  # terms {1,5,9} x channels {1,4}
    got = product_flip(clean, cols, qw, mapping, [cell], period=2)
    schedule = mapping.schedule
    want = clean.copy()
    for t in (1, 5, 9):
        for f in (1, 4):
            occ = schedule.occurrence_index(0, t, f)
            if occ % 2 == 0:
                want[0, f] -= 2 * cols[0, t] * qw[t, f]
    np.testing.assert_allclose(got, want)
