"""Tests for the campaign runner (sweep x repetition protocol)."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import FaultCampaign, FaultSpec


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN on a separable task, with held-out data."""
    rng = np.random.default_rng(0)
    n = 400
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=25, batch_size=32)
    return model, x[300:], y[300:]


def test_baseline_accuracy_high(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    assert campaign.baseline_accuracy() >= 0.85


def test_sweep_shapes_and_baseline(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.25], repeats=3,
                          label="bitflip")
    assert result.accuracies.shape == (2, 3)
    assert result.label == "bitflip"
    # rate 0 must reproduce the baseline in every repetition
    np.testing.assert_allclose(result.accuracies[0], result.baseline)


def test_sweep_degrades_with_rate(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.5], repeats=5, seed=3)
    means = result.mean()
    assert means[1] < means[0]


def test_sweep_leaves_model_clean(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    before = model.evaluate(x, y)
    campaign.run(FaultSpec.bitflip, xs=[0.4], repeats=2)
    assert model.evaluate(x, y) == before
    for layer in model.layers_of_type(QuantDense):
        assert layer.output_fault_hook is None
        assert layer.kernel_fault_hook is None


def test_repetitions_differ(trained_setup):
    """Different seeds place faults differently -> accuracy spread."""
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.3], repeats=6, seed=0)
    assert result.std()[0] > 0 or len(np.unique(result.accuracies)) > 1


def test_layer_restriction(trained_setup):
    model, x, y = trained_setup
    first = model.layers[0].name
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.2], repeats=2,
                          layers=[first], label=first)
    assert result.meta["layers"] == [first]


def test_result_rows_format(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    result = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.1], repeats=2)
    rows = result.as_rows()
    assert len(rows) == 2
    x0, mean0, std0 = rows[0]
    assert x0 == 0.0
    assert 0.0 <= mean0 <= 1.0
    assert std0 >= 0.0
