"""Campaign-aware input-representation cache (repro.binary.layers)."""

import weakref

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.binary.layers import _INPUT_CACHE_SLOTS, InputRepCache
from repro.core import FaultCampaign, FaultSpec


def _frozen(shape=(4,), seed=0):
    array = np.random.default_rng(seed).standard_normal(shape)
    array = array.astype(np.float32)
    array.flags.writeable = False
    return array


class _Owner:
    """Stand-in for an evaluator: something a weakref can point at."""


def test_default_budget_keeps_legacy_fifo_bound():
    cache = InputRepCache()
    arrays = [_frozen(seed=i) for i in range(12)]
    for array in arrays:
        cache.put("cols", array, array * 2)
    assert len(cache) == _INPUT_CACHE_SLOTS
    # oldest entries evicted first
    assert cache.peek("cols", arrays[0]) is None
    assert cache.peek("cols", arrays[-1]) is not None


def test_configured_owner_holds_more_than_the_legacy_bound():
    cache = InputRepCache()
    anchor = _Owner()  # the owner must outlive the test body
    owner = weakref.ref(anchor)
    cache.configure(owner, slots=32)
    arrays = [_frozen(seed=i) for i in range(20)]
    for array in arrays:
        cache.put("cols", array, array * 2, owner=owner)
    assert len(cache) == 20
    assert all(cache.peek("cols", array) is not None for array in arrays)


def test_byte_cap_evicts_lru_first():
    cache = InputRepCache()
    anchor = _Owner()
    owner = weakref.ref(anchor)
    value = np.zeros(256, dtype=np.float32)  # 1 KiB per entry
    cache.configure(owner, slots=100, max_bytes=3 * value.nbytes)
    arrays = [_frozen(seed=i) for i in range(5)]
    for array in arrays:
        cache.put("cols", array, value.copy(), owner=owner)
    assert len(cache) == 3
    assert cache.peek("cols", arrays[0]) is None
    assert cache.peek("cols", arrays[-1]) is not None
    assert cache.stats(owner)["bytes"] <= 3 * value.nbytes


def test_owners_do_not_evict_each_other():
    cache = InputRepCache()
    anchors = (_Owner(), _Owner())
    a, b = weakref.ref(anchors[0]), weakref.ref(anchors[1])
    cache.configure(a, slots=4)
    cache.configure(b, slots=4)
    a_arrays = [_frozen(seed=i) for i in range(4)]
    for array in a_arrays:
        cache.put("cols", array, array, owner=a)
    # b floods its own budget far beyond a's capacity
    for i in range(20):
        cache.put("cols", _frozen(seed=100 + i), i, owner=b)
    assert all(cache.peek("cols", array) is not None for array in a_arrays)
    assert cache.stats(b)["entries"] == 4


def test_hit_and_miss_accounting_per_owner():
    cache = InputRepCache()
    anchor = _Owner()
    owner = weakref.ref(anchor)
    cache.configure(owner, slots=8)
    array = _frozen()
    assert cache.get("cols", array, owner=owner) is None      # miss
    cache.put("cols", array, "rep", owner=owner)
    assert cache.get("cols", array, owner=owner) == "rep"     # hit
    cache.peek("cols", array)                                  # not counted
    stats = cache.stats(owner)
    assert (stats["hits"], stats["misses"]) == (1, 1)
    assert stats["hit_rate"] == 0.5
    assert cache.stats(None) == {"hits": 0, "misses": 0, "entries": 0,
                                 "bytes": 0, "hit_rate": 0.0}


def test_writeable_arrays_never_cached_nor_counted():
    cache = InputRepCache()
    writable = np.zeros(4, dtype=np.float32)
    assert cache.get("cols", writable) is None
    cache.put("cols", writable, "rep")
    assert len(cache) == 0
    assert cache.stats(None)["misses"] == 0


def test_dead_owner_entries_purged():
    cache = InputRepCache()
    anchor = _Owner()
    owner = weakref.ref(anchor)
    cache.configure(owner, slots=8)
    cache.put("cols", _frozen(), "rep", owner=owner)
    assert len(cache) == 1
    del anchor  # the owning evaluator is garbage-collected
    cache.put("cols", _frozen(seed=1), "rep2")  # any put triggers the purge
    assert all(not isinstance(entry[0], weakref.ref) or entry[0]() is not None
               for entry in cache.entries())
    assert cache.stats(owner)["entries"] == 0


# -- end-to-end: a >8-batch campaign actually hits ------------------------

@pytest.fixture(scope="module")
def trained_setup():
    rng = np.random.default_rng(0)
    n = 700
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=15, batch_size=32)
    return model, x[300:], y[300:]


def test_campaign_cache_hits_on_more_batches_than_legacy_slots(trained_setup):
    """16 batches > the 8 legacy slots: the fixed FIFO cycled at 0% here;
    the campaign-sized cache must hit on every repetition after the first."""
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                             backend="packed")
    result = campaign.run(FaultSpec.bitflip, xs=[0.2, 0.4], repeats=3)
    stats = result.meta["input_cache"]
    assert stats["misses"] == 16   # one cold pass over the 16 batches
    assert stats["hits"] > 0
    assert stats["hit_rate"] > 0.5


def test_campaign_respects_cache_byte_cap(trained_setup):
    """A cap smaller than one batch's representation disables retention
    without corrupting results."""
    model, x, y = trained_setup
    capped = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                           backend="packed", cache_bytes=8)
    free = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                         backend="packed")
    r_capped = capped.run(FaultSpec.bitflip, xs=[0.2, 0.4], repeats=2)
    r_free = free.run(FaultSpec.bitflip, xs=[0.2, 0.4], repeats=2)
    assert np.array_equal(r_capped.accuracies, r_free.accuracies)
    assert r_capped.meta["input_cache"]["hits"] == 0
    assert r_capped.meta["input_cache"]["bytes"] <= 8


def test_interleaved_campaigns_keep_their_hit_rates(trained_setup):
    model, x, y = trained_setup
    c1 = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                       backend="packed")
    c2 = FaultCampaign(model, x[:400], y[:400], rows=8, cols=4,
                       batch_size=25, backend="packed")
    for _ in range(2):
        c1.run(FaultSpec.bitflip, xs=[0.3], repeats=2)
        c2.run(FaultSpec.bitflip, xs=[0.3], repeats=2)
    # each campaign pays its cold pass once; interleaving evicts nothing
    assert c1.input_cache_stats()["misses"] == 16
    assert c2.input_cache_stats()["misses"] == 16
    assert c1.input_cache_stats()["hit_rate"] > 0.5
    assert c2.input_cache_stats()["hit_rate"] > 0.5
    # closing one campaign releases only its own entries: the survivor's
    # next run is pure hits, no fresh cold pass
    c1.close()
    assert c1.input_cache_stats()["entries"] == 0
    before = c2.input_cache_stats()["misses"]
    c2.run(FaultSpec.bitflip, xs=[0.3], repeats=2)
    assert c2.input_cache_stats()["misses"] == before
