"""Tests for the gate-serial execution mode and cell subviews."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.lim import (CellArray, Crossbar, CrossbarConfig, Health,
                       XFaultSimulator, ideal_device_params)
from repro.lim.memristor import DeviceParams


def make_crossbar(gate="imply"):
    return Crossbar(CrossbarConfig(rows=4, cols=3, gate_family=gate,
                                   device=DeviceParams(variability=0.0)))


def test_subview_shares_storage():
    cells = CellArray((4, 3, 4), DeviceParams(variability=0.0), seed=0)
    view = cells.subview((slice(1, 2), slice(0, 1)))
    assert view.shape == (1, 1, 4)
    view.write(np.ones((1, 1, 4), dtype=np.uint8))
    assert cells.read((1, 0, slice(None))).all()
    assert cells.write_count[1, 0, 0] == 1


def test_subview_respects_health():
    cells = CellArray((2, 2, 4), DeviceParams(variability=0.0), seed=0)
    cells.set_health((0, 0, 0), Health.STUCK_HRS)
    view = cells.subview((slice(0, 1), slice(0, 1)))
    view.write(np.ones((1, 1, 4), dtype=np.uint8))
    assert cells.read((0, 0, 0)) == 0  # stuck cell ignored the write


@pytest.mark.parametrize("gate", ["imply", "magic"])
def test_serial_matches_vectorized_faultfree(rng, gate):
    a = rng.integers(0, 2, (4, 3)).astype(np.uint8)
    b = rng.integers(0, 2, (4, 3)).astype(np.uint8)
    vec = make_crossbar(gate).compute_xnor(a, b)
    ser = make_crossbar(gate).compute_xnor_serial(a, b)
    np.testing.assert_array_equal(vec, ser)


def test_serial_matches_vectorized_with_faults(rng):
    a = rng.integers(0, 2, (4, 3)).astype(np.uint8)
    b = rng.integers(0, 2, (4, 3)).astype(np.uint8)
    vec_bar = make_crossbar()
    ser_bar = make_crossbar()
    for bar in (vec_bar, ser_bar):
        bar.inject_stuck_gate(0, 1, stuck_value=1)
        bar.inject_bitflip(2, 2, period=2)
    for _ in range(3):  # across uses, so the dynamic flip cycles
        np.testing.assert_array_equal(vec_bar.compute_xnor(a, b),
                                      ser_bar.compute_xnor_serial(a, b))


def test_serial_use_count_advances(rng):
    bar = make_crossbar()
    a = rng.integers(0, 2, (4, 3)).astype(np.uint8)
    bar.compute_xnor_serial(a, a)
    assert (bar.use_count == 1).all()


def test_serial_simulator_bit_exact(rng):
    model = nn.Sequential([
        QuantDense(4, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ]).build((10,), seed=0)
    x = rng.standard_normal((2, 10)).astype(np.float32)
    config = CrossbarConfig(rows=5, cols=2, device=ideal_device_params())
    fast = XFaultSimulator(model, config)
    slow = XFaultSimulator(model, config, gate_serial=True)
    np.testing.assert_array_equal(fast.run(x), slow.run(x))
    np.testing.assert_array_equal(slow.run(x), model.predict(x))
