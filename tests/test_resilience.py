"""Unit tests for the supervision layer (repro.core.resilience) and the
journal's crash-recovery behavior."""

import json
import os

import pytest

from repro.core import CampaignJournal, RetryPolicy, SupervisorGaveUp
from repro.core.engine import MultiprocessingExecutor
from repro.core.resilience import (JobQuarantined, JobRetried, PoolSupervisor,
                                   WorkerLost, new_stats, note_stats,
                                   supervised_serial)

# -- RetryPolicy ----------------------------------------------------------

def test_policy_backoff_schedule_is_deterministic():
    policy = RetryPolicy(backoff=0.5, backoff_factor=2.0, max_backoff=3.0)
    assert [policy.delay_for(n) for n in (1, 2, 3, 4, 5)] == \
        [0.5, 1.0, 2.0, 3.0, 3.0]


@pytest.mark.parametrize("kwargs", [
    dict(max_attempts=0),
    dict(backoff=-1.0),
    dict(backoff_factor=0.5),
    dict(job_timeout=0),
    dict(stall_timeout=0),
    dict(max_rebuilds=-1),
])
def test_policy_rejects_invalid_knobs(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# -- supervised_serial ----------------------------------------------------

class Flaky:
    """Callable failing the first ``failures`` calls per task."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = {}

    def __call__(self, task):
        seen = self.calls[task] = self.calls.get(task, 0) + 1
        if seen <= self.failures:
            raise RuntimeError(f"boom #{seen}")
        return task * 10


def test_serial_retries_transient_failure_with_backoff():
    slept, events = [], []
    policy = RetryPolicy(max_attempts=3, backoff=0.5)
    outcomes = list(supervised_serial([1, 2], Flaky(1), policy,
                                      on_event=events.append,
                                      sleep=slept.append))
    assert outcomes == [(1, ("ok", 10)), (2, ("ok", 20))]
    assert slept == [0.5, 0.5]
    assert [type(e) for e in events] == [JobRetried, JobRetried]
    assert events[0].cause == "error"


def test_serial_quarantines_poison_task():
    events = []
    policy = RetryPolicy(max_attempts=2, backoff=0.0)
    outcomes = list(supervised_serial([1], Flaky(99), policy,
                                      on_event=events.append,
                                      sleep=lambda s: None))
    (task, (kind, detail)), = outcomes
    assert (task, kind) == (1, "quarantined")
    assert "boom" in detail
    assert type(events[-1]) is JobQuarantined
    assert events[-1].attempts == 2


def test_serial_policy_none_raises_through():
    with pytest.raises(RuntimeError, match="boom"):
        list(supervised_serial([1], Flaky(99), None))


# -- stats folding --------------------------------------------------------

def test_note_stats_folds_events():
    stats = new_stats()
    note_stats(stats, JobRetried(point=0, repeat=1, attempt=1, delay=0.0,
                                 cause="timeout", error="e"))
    note_stats(stats, JobQuarantined(point=2, repeat=0, attempts=3,
                                     error="e"))
    note_stats(stats, JobQuarantined(point=2, repeat=0, attempts=3,
                                     error="e"))  # deduped
    note_stats(stats, WorkerLost(reason="died", in_flight=2))
    assert stats["retries"] == 1 and stats["timeouts"] == 1
    assert stats["quarantined"] == [(2, 0)]
    assert stats["workers_lost"] == 1


# -- PoolSupervisor shutdown + retry semantics (synchronous fake pool) ----

class FakePool:
    """apply_async runs inline; records the shutdown sequence."""

    def __init__(self):
        self.shutdown: list[str] = []

    def apply_async(self, func, args, callback, error_callback):
        try:
            value = func(*args)
        except Exception as error:
            error_callback(error)
        else:
            callback(value)

    def close(self):
        self.shutdown.append("close")

    def terminate(self):
        self.shutdown.append("terminate")

    def join(self):
        self.shutdown.append("join")


def test_supervisor_closes_pool_gracefully_on_success():
    pool = FakePool()
    supervisor = PoolSupervisor(lambda: pool, lambda t: t + 1, [1, 2, 3],
                                RetryPolicy(backoff=0.0))
    outcomes = dict(supervisor.run())
    assert outcomes == {1: ("ok", 2), 2: ("ok", 3), 3: ("ok", 4)}
    assert pool.shutdown == ["close", "join"]
    assert supervisor.unfinished() == []


def test_supervisor_terminates_pool_when_consumer_abandons():
    pool = FakePool()
    supervisor = PoolSupervisor(lambda: pool, lambda t: t, [1, 2, 3],
                                RetryPolicy(backoff=0.0))
    stream = supervisor.run()
    next(stream)
    stream.close()  # the KeyboardInterrupt / early-break path
    assert pool.shutdown == ["terminate", "join"]
    assert supervisor.unfinished()  # the rest never got an outcome


def test_supervisor_policy_none_raises_and_terminates():
    pool = FakePool()

    def explode(task):
        raise RuntimeError("job failed")

    supervisor = PoolSupervisor(lambda: pool, explode, [1], None)
    with pytest.raises(RuntimeError, match="job failed"):
        list(supervisor.run())
    assert pool.shutdown == ["terminate", "join"]


def test_supervisor_retries_then_quarantines():
    pool = FakePool()
    events = []
    flaky = Flaky(1)       # task 1 succeeds on attempt 2
    poison = Flaky(99)     # task 2 never succeeds

    def call(task):
        return flaky(task) if task == 1 else poison(task)

    supervisor = PoolSupervisor(lambda: pool, call, [1, 2],
                                RetryPolicy(max_attempts=2, backoff=0.0),
                                on_event=events.append)
    outcomes = dict(supervisor.run())
    assert outcomes[1] == ("ok", 10)
    assert outcomes[2][0] == "quarantined"
    kinds = [type(e).__name__ for e in events]
    assert "JobRetried" in kinds and "JobQuarantined" in kinds
    assert supervisor.unfinished() == []


def test_supervisor_gave_up_lists_unfinished():
    """A factory that fails on rebuild surfaces SupervisorGaveUp and
    leaves the undone tasks claimable by the next rung."""
    calls = {"n": 0}

    class BlackHolePool(FakePool):
        def apply_async(self, func, args, callback, error_callback):
            pass  # the task vanishes, like a killed worker's would

    def black_hole_factory():
        calls["n"] += 1
        return BlackHolePool()

    policy = RetryPolicy(stall_timeout=0.2, max_rebuilds=1, backoff=0.0)
    supervisor = PoolSupervisor(black_hole_factory, lambda t: t, [1, 2],
                                policy)
    with pytest.raises(SupervisorGaveUp, match="unfinished"):
        list(supervisor.run())
    assert supervisor.unfinished() == [1, 2]
    assert calls["n"] == 2  # initial pool + one rebuild


# -- the sharded reducer --------------------------------------------------

class _Cell:
    def __init__(self, point, repeat):
        self.point_index = point
        self.repeat_index = repeat


def test_reducer_sums_shards_and_emits_complete_cells():
    reduce = MultiprocessingExecutor._make_reducer(True, 2)
    cell = _Cell(0, 0)
    assert list(reduce((cell, 0, 2), ("ok", (0, 0, 40, 50)))) == []
    assert list(reduce((cell, 1, 2), ("ok", (0, 0, 45, 50)))) == \
        [(0, 0, 85 / 100)]


def test_reducer_quarantines_whole_cell_once():
    reduce = MultiprocessingExecutor._make_reducer(True, 2)
    cell = _Cell(1, 0)
    assert list(reduce((cell, 0, 2), ("ok", (1, 0, 40, 50)))) == []
    nan_results = list(reduce((cell, 1, 2), ("quarantined", "boom")))
    assert len(nan_results) == 1
    i, j, accuracy = nan_results[0]
    assert (i, j) == (1, 0) and accuracy != accuracy
    # a straggler shard of the dead cell must not resurrect it
    assert list(reduce((cell, 1, 2), ("ok", (1, 0, 45, 50)))) == []


# -- journal crash recovery -----------------------------------------------

HEADER = {"xs": [0.0], "repeats": 1, "seed": 0, "rows": 8, "cols": 4,
          "layers": None, "backend": "float", "label": "t"}


def test_journal_fsync_opt_in(tmp_path, monkeypatch):
    synced = []
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
    with CampaignJournal(tmp_path / "a.jsonl", HEADER) as journal:
        journal.record(0, 0, 0.0, 0.5)
    assert synced == []  # default: flush only
    with CampaignJournal(tmp_path / "b.jsonl", HEADER,
                         fsync=True) as journal:
        journal.record(0, 0, 0.0, 0.5)
    assert len(synced) >= 2  # header + cell


def test_journal_torn_tail_warns_and_discards(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path, HEADER) as journal:
        journal.record(0, 0, 0.0, 0.5)
        journal.record(0, 1, 0.0, 0.75)
    text = path.read_text()
    path.write_text(text[:-10])  # kill -9 mid-append
    with pytest.warns(RuntimeWarning, match="torn line"):
        with CampaignJournal(path, HEADER) as journal:
            assert journal.completed == {(0, 0): 0.5}


def test_journal_torn_tail_routes_to_on_warning(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path, HEADER) as journal:
        journal.record(0, 0, 0.0, 0.5)
    path.write_text(path.read_text()[:-5])
    messages = []
    with CampaignJournal(path, HEADER,
                         on_warning=messages.append) as journal:
        assert journal.completed == {}
    assert messages and "torn line" in messages[0]


def test_journal_refuses_mid_file_corruption(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path, HEADER) as journal:
        journal.record(0, 0, 0.0, 0.5)
        journal.record(0, 1, 0.0, 0.75)
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = lines[1][:9] + "\n"  # damage an *interior* line
    path.write_text("".join(lines))
    with pytest.raises(ValueError, match="corrupt at line 2"):
        CampaignJournal(path, HEADER).open()


def test_journal_event_notes_are_audit_only(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path, HEADER) as journal:
        journal.record(0, 0, 0.0, 0.5)
        journal.note(WorkerLost(reason="sigkill", in_flight=2))
        journal.record(0, 1, 0.0, 0.75)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    events = [line for line in lines if line.get("kind") == "event"]
    assert events == [{"kind": "event", "event": "WorkerLost",
                       "reason": "sigkill", "in_flight": 2}]
    with CampaignJournal(path, HEADER) as journal:  # events don't resume
        assert journal.completed == {(0, 0): 0.5, (0, 1): 0.75}
