"""Finite-difference gradient helpers shared across test modules.

Lives in its own module (not ``conftest.py``) so test files can import it
by name: ``conftest`` is ambiguous once several test roots (``tests/``,
``benchmarks/``) are collected in one pytest run.
"""

from __future__ import annotations

import numpy as np


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn()
        flat[i] = original - eps
        down = fn()
        flat[i] = original
        gflat[i] = (up - down) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray,
                      rtol: float = 1e-2, atol: float = 1e-4) -> None:
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
