"""Tests and properties of the weight-stationary tile schedule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lim import TileSchedule


def test_basic_counts():
    s = TileSchedule(positions=6, terms=9, filters=5, rows=4, cols=2)
    assert s.row_passes == 3      # ceil(9/4)
    assert s.col_passes == 3      # ceil(5/2)
    assert s.tiles == 9
    assert s.steps == 54          # tiles * positions
    assert s.total_ops == 6 * 9 * 5


def test_validation():
    with pytest.raises(ValueError):
        TileSchedule(positions=0, terms=1, filters=1, rows=1, cols=1)


def test_cell_for_op_round_robin():
    s = TileSchedule(positions=1, terms=10, filters=6, rows=4, cols=3)
    assert s.cell_for_op(0, 0) == (0, 0)
    assert s.cell_for_op(4, 3) == (0, 0)
    assert s.cell_for_op(9, 5) == (1, 2)


def test_terms_and_channels_partitions():
    s = TileSchedule(positions=2, terms=10, filters=7, rows=4, cols=3)
    all_terms = np.sort(np.concatenate([s.terms_on_row(r) for r in range(4)]))
    np.testing.assert_array_equal(all_terms, np.arange(10))
    all_chans = np.sort(np.concatenate([s.channels_on_column(c) for c in range(3)]))
    np.testing.assert_array_equal(all_chans, np.arange(7))


def test_ops_on_cells_sum_to_total():
    s = TileSchedule(positions=3, terms=10, filters=7, rows=4, cols=3)
    total = sum(s.ops_on_cell(r, c) for r in range(4) for c in range(3))
    assert total == s.total_ops


def test_tile_blocks_cover_grid_once():
    s = TileSchedule(positions=1, terms=10, filters=7, rows=4, cols=3)
    seen = np.zeros((10, 7), dtype=int)
    for tile in range(s.tiles):
        term_idx, chan_idx = s.tile_blocks(tile)
        seen[np.ix_(term_idx, chan_idx)] += 1
    np.testing.assert_array_equal(seen, np.ones((10, 7), dtype=int))


def test_tile_blocks_bounds():
    s = TileSchedule(positions=1, terms=4, filters=4, rows=4, cols=4)
    with pytest.raises(IndexError):
        s.tile_blocks(1)
    with pytest.raises(IndexError):
        s.terms_on_row(4)
    with pytest.raises(IndexError):
        s.channels_on_column(-1)


def test_occurrence_index_orders_stream():
    s = TileSchedule(positions=3, terms=8, filters=4, rows=4, cols=2)
    # within one tile, occurrence increases with position
    assert s.occurrence_index(0, 0, 0) < s.occurrence_index(1, 0, 0)
    # ops in the same tile at the same position share the occurrence
    assert s.occurrence_index(1, 0, 0) == s.occurrence_index(1, 3, 1)
    # later tiles come later
    assert s.occurrence_index(0, 4, 0) > s.occurrence_index(2, 3, 0)


@given(st.integers(1, 8), st.integers(1, 40), st.integers(1, 12),
       st.integers(1, 16), st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_property_reuse_consistency(positions, terms, filters, rows, cols):
    """cell_reuse * cells == total_ops, and occurrences are within bounds."""
    s = TileSchedule(positions=positions, terms=terms, filters=filters,
                     rows=rows, cols=cols)
    assert s.cell_reuse * rows * cols == pytest.approx(s.total_ops)
    last = s.occurrence_index(positions - 1, terms - 1, filters - 1)
    assert last < s.steps


@given(st.integers(1, 30), st.integers(1, 12), st.integers(1, 10),
       st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_property_cell_assignment_in_range(terms, filters, rows, cols):
    s = TileSchedule(positions=1, terms=terms, filters=filters,
                     rows=rows, cols=cols)
    for t in range(min(terms, 20)):
        for f in range(min(filters, 8)):
            r, c = s.cell_for_op(t, f)
            assert 0 <= r < rows
            assert 0 <= c < cols
