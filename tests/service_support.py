"""Registry plug-in for the service end-to-end tests.

Registers ``svc-tiny``: a journal-supporting campaign over a miniature
seeded BNN (no MNIST, no training), fast enough to finish in seconds
yet slow enough (via the ``delay`` param) for a test to SIGKILL the
server mid-campaign at a chosen cell.

Re-run detection rides :class:`repro.testing.chaos.ChaosSpec` claim
tokens: when the ``REPRO_SVC_CLAIM`` environment variable names a
scratch directory, every *freshly evaluated* cell claims a
``cell-<point>-<repeat>`` token there.  The campaign journals each cell
**before** its progress callback fires, and a resumed run never
re-emits journaled cells, so across any number of server lives each
token is claimed at most once — a second claim means a finished cell
was re-evaluated, and the run fails loudly.

The server loads this module via ``repro serve --preload
service_support`` (tests put ``tests/`` on the server's PYTHONPATH).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.api import Param, experiment

#: default sweep grid: 4 rates x 3 repeats = 12 cells
_PARAMS = (
    Param("rates", "floats", [0.0, 0.1, 0.2, 0.3], "bitflip rates swept"),
    Param("repeats", "int", 3, "repetitions per rate"),
    Param("delay", "float", 0.0,
          "seconds slept after each fresh cell (kill-window throttle; "
          "identical params on both sides keep reports comparable)"),
    Param("rows", "int", 8, "crossbar rows"),
    Param("cols", "int", 4, "crossbar cols"),
    Param("seed", "int", 0, "campaign seed"),
)


def _workload(seed: int):
    """A tiny two-layer binary MLP on synthetic data, fully seeded."""
    from repro import nn
    from repro.binary import QuantDense
    from repro.data import Dataset
    rng = np.random.default_rng(4321 + seed)
    model = nn.Sequential([
        QuantDense(6, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(4, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign"),
    ]).build((12,), seed=seed)
    x = rng.standard_normal((32, 12)).astype(np.float32)
    y = rng.integers(0, 4, 32)
    return model, Dataset(x, y)


@experiment(
    "svc-tiny",
    description="Service e2e workload: tiny journaled bitflip sweep "
                "with claim-token re-run detection.",
    params=_PARAMS,
    supports_journal=True,
    quick=dict(rates=[0.0, 0.2], repeats=1))
def _svc_tiny(ctx, rates, repeats, delay, rows, cols, seed):
    from repro.core import FaultCampaign, FaultSpec
    from repro.testing.chaos import ChaosSpec
    model, test = _workload(seed)
    claim_dir = os.environ.get("REPRO_SVC_CLAIM", "")
    claims = ChaosSpec(scratch=claim_dir) if claim_dir else None
    inner = ctx.progress_for("svc")

    def progress(done, total, cell):
        point, repeat, _accuracy = cell
        if claims is not None \
                and not claims.claim(f"cell-{point}-{repeat}"):
            raise RuntimeError(
                f"cell ({point}, {repeat}) was evaluated twice — the "
                "resume skipped nothing")
        if delay:
            time.sleep(delay)
        inner(done, total, cell)

    with FaultCampaign(model, test.x, test.y, rows=rows, cols=cols,
                       **ctx.engine_kwargs()) as campaign:
        result = campaign.run(FaultSpec.bitflip, xs=list(rates),
                              repeats=repeats, seed=seed, label="svc",
                              journal=ctx.journal_for(),
                              progress=progress)
    return ctx.report(series={"svc": result}, raw=result,
                      baseline=float(result.baseline),
                      meta=dict(result.meta))
