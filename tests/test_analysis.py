"""Tests for metrics, plotting and runtime accounting."""

import numpy as np
import pytest

from repro.analysis import (RuntimeSample, accuracy, ascii_bars, ascii_plot,
                            critical_x, degradation, extrapolate,
                            markdown_table, measure, speedup_table,
                            top_k_accuracy, write_csv)


def test_accuracy_basics():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
    labels = np.array([0, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(2 / 3)


def test_top_k_accuracy():
    logits = np.array([[3.0, 2.0, 1.0, 0.0]])
    assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
    assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0


def test_degradation():
    assert degradation(0.97, 0.55) == pytest.approx(0.42)


def test_critical_x_interpolates():
    xs = [0.0, 0.1, 0.2]
    means = [0.9, 0.7, 0.3]
    # crosses 0.5 between 0.1 and 0.2: 0.1 + (0.7-0.5)/(0.7-0.3)*0.1 = 0.15
    assert critical_x(xs, means, 0.5) == pytest.approx(0.15)


def test_critical_x_never_crossing():
    assert critical_x([0.0, 0.1], [0.9, 0.8], 0.5) is None


def test_critical_x_immediate():
    assert critical_x([0.0, 0.1], [0.4, 0.2], 0.5) == 0.0


def test_ascii_plot_contains_series_markers():
    text = ascii_plot({"a": ([0, 1, 2], [0.1, 0.5, 0.9]),
                       "b": ([0, 1, 2], [0.9, 0.5, 0.1])},
                      title="demo", width=30, height=8)
    assert "demo" in text
    assert "o=a" in text and "x=b" in text
    assert "o" in text and "x" in text


def test_ascii_plot_empty_rejected():
    with pytest.raises(ValueError):
        ascii_plot({})


def test_ascii_bars_log_scale():
    text = ascii_bars({"X-Fault": 100000.0, "FLIM": 10.0, "vanilla": 5.0},
                      log=True, unit="s")
    lines = text.splitlines()
    xfault_fill = lines[0].count("#")
    vanilla_fill = lines[2].count("#")
    assert xfault_fill > vanilla_fill


def test_write_csv_roundtrip(tmp_path):
    path = tmp_path / "rows.csv"
    write_csv(path, ["x", "y"], [(1, 2.5), (2, 3.5)])
    content = path.read_text().strip().splitlines()
    assert content[0] == "x,y"
    assert content[1] == "1,2.5"


def test_markdown_table_shape():
    table = markdown_table(["a", "b"], [(1, 2.0), ("x", 0.123456)])
    lines = table.splitlines()
    assert lines[0].startswith("| a | b |")
    assert lines[1] == "|---|---|"
    assert "0.1235" in lines[3]


def test_measure_and_extrapolate():
    sample = measure("fast", lambda: sum(range(1000)), images=10, repeat=2)
    assert sample.seconds >= 0.0
    assert sample.seconds_per_image == sample.seconds / 10
    scaled = extrapolate(sample, 1000)
    assert scaled.images == 1000
    assert scaled.seconds == pytest.approx(sample.seconds * 100)
    assert scaled.extrapolated_from == 10
    assert "extrapolated" in scaled.describe()


def test_speedup_table_reference():
    samples = [RuntimeSample("slow", 100.0, 10),
               RuntimeSample("fast", 1.0, 10)]
    table = speedup_table(samples, reference="slow")
    by_name = {name: speedup for name, _, speedup in table}
    assert by_name["slow"] == pytest.approx(1.0)
    assert by_name["fast"] == pytest.approx(100.0)
    with pytest.raises(KeyError):
        speedup_table(samples, reference="nope")
