"""End-to-end training sanity tests for the numpy engine."""

import numpy as np

from repro import nn


def blobs(rng, n_per_class=60, classes=3, dim=4, spread=0.5):
    centers = rng.standard_normal((classes, dim)) * 3
    xs, ys = [], []
    for c in range(classes):
        xs.append(centers[c] + rng.standard_normal((n_per_class, dim)) * spread)
        ys.append(np.full(n_per_class, c))
    x = np.concatenate(xs).astype(np.float32)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return x[order], y[order]


def test_trainer_learns_blobs(rng):
    x, y = blobs(rng)
    model = nn.Sequential([nn.Dense(16), nn.ReLU(), nn.Dense(3)]).build((4,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    history = trainer.fit(model, x, y, epochs=15, batch_size=32)
    assert history.train_accuracy[-1] > 0.95
    assert history.train_loss[-1] < history.train_loss[0]


def test_trainer_sgd_also_learns(rng):
    x, y = blobs(rng)
    model = nn.Sequential([nn.Dense(16), nn.ReLU(), nn.Dense(3)]).build((4,), seed=1)
    trainer = nn.Trainer(nn.SGD(0.05, momentum=0.9), seed=0)
    history = trainer.fit(model, x, y, epochs=15, batch_size=32)
    assert history.train_accuracy[-1] > 0.9


def test_trainer_tracks_validation(rng):
    x, y = blobs(rng)
    model = nn.Sequential([nn.Dense(8), nn.ReLU(), nn.Dense(3)]).build((4,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    history = trainer.fit(model, x[:120], y[:120], epochs=3,
                          x_val=x[120:], y_val=y[120:])
    assert len(history.val_accuracy) == 3


def test_losses_softmax_cross_entropy_gradient(rng):
    from repro.nn.losses import softmax_cross_entropy
    from gradcheck import numerical_gradient

    logits = rng.standard_normal((5, 4))
    labels = rng.integers(0, 4, 5)

    def loss():
        return softmax_cross_entropy(logits, labels)[0]

    _, grad = softmax_cross_entropy(logits.copy(), labels)
    np.testing.assert_allclose(grad, numerical_gradient(loss, logits),
                               rtol=1e-3, atol=1e-6)


def test_losses_hinge_nonnegative(rng):
    from repro.nn.losses import hinge_loss
    logits = rng.standard_normal((6, 3))
    labels = rng.integers(0, 3, 6)
    value, grad = hinge_loss(logits, labels)
    assert value >= 0
    assert grad.shape == logits.shape


def test_softmax_rows_sum_to_one(rng):
    from repro.nn.losses import softmax
    probs = softmax(rng.standard_normal((7, 9)) * 10)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)
    assert (probs >= 0).all()


def test_conv_model_trains_on_tiny_images(rng):
    """A small conv net must fit a trivially separable image task."""
    n = 120
    x = np.zeros((n, 8, 8, 1), dtype=np.float32)
    y = np.zeros(n, dtype=int)
    for i in range(n):
        if i % 2 == 0:
            x[i, :4, :, 0] = 1.0  # top-half bright -> class 0
        else:
            x[i, 4:, :, 0] = 1.0  # bottom-half bright -> class 1
            y[i] = 1
    x += rng.standard_normal(x.shape).astype(np.float32) * 0.05
    model = nn.Sequential([
        nn.Conv2D(4, 3, padding="same"),
        nn.ReLU(),
        nn.MaxPool2D(2),
        nn.Flatten(),
        nn.Dense(2),
    ]).build((8, 8, 1), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    history = trainer.fit(model, x, y, epochs=5, batch_size=20)
    assert history.train_accuracy[-1] > 0.95
