"""Tests for the `repro lint` AST invariant checker.

Each rule gets one known-good and one known-bad snippet, checked in
isolation against a synthetic tree; the cross-module/cross-layer rules
(event-exhaustiveness, protocol-drift) are additionally exercised
against a copy of the *real* protocol modules (the acceptance scenario:
a new event dataclass with no wire entry or renderer branch must fail
the gate).  A self-check pins the shipped tree to zero findings with an
empty baseline.  Flow-rule path semantics (CFG, taint, dominance) live
in ``tests/test_lint_flow.py``.
"""

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import (Baseline, BaselineEntry, EventExhaustiveness,
                        FrozenRecords, LintUsageError, NoGlobalRng,
                        NoSilentExcept, NoUnpicklableSubmit, NoWallClock,
                        ProtocolDrift, RngTaint, ShmLeakPath,
                        UnboundedQueue, load_baseline, run_lint)
from repro.lint.runner import lint_command
from repro.lint.runner import main as lint_main

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: the code modules the event protocol spans (events, wire codec, CLI
#: renderer, engine relay, supervision layer)
PROTOCOL_FILES = (
    "src/repro/api/events.py",
    "src/repro/cli.py",
    "src/repro/api/handle.py",
    "src/repro/core/resilience.py",
    "src/repro/service/wire.py",
)


def lint_tree(tmp_path, files, rules):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and lint."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([tmp_path], root=tmp_path, rules=rules).findings


def rule_ids(findings):
    return [f.rule for f in findings]


# -- no-global-rng ---------------------------------------------------------

def test_global_rng_bad_stdlib_and_module_state(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import random
            import numpy as np

            def roll():
                return random.random() + np.random.rand()
            """,
    }, rules=[NoGlobalRng()])
    assert rule_ids(findings) == ["no-global-rng", "no-global-rng"]


def test_global_rng_bad_argless_default_rng(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            rng = np.random.default_rng()
            """,
    }, rules=[NoGlobalRng()])
    assert rule_ids(findings) == ["no-global-rng"]


def test_global_rng_good_seeded_constructors(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np
            from numpy.random import default_rng

            def sample(seed):
                rng = default_rng(seed)
                ss = np.random.SeedSequence(seed)
                return rng.normal(), ss
            """,
    }, rules=[NoGlobalRng()])
    assert findings == []


def test_global_rng_local_variable_never_false_positives(tmp_path):
    # a local named `random` has no import alias, so it cannot resolve
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def pick(random):
                return random.random()
            """,
    }, rules=[NoGlobalRng()])
    assert findings == []


def test_global_rng_conftest_allow_listed(tmp_path):
    findings = lint_tree(tmp_path, {
        "tests/conftest.py": """\
            import random

            def entropy():
                return random.random()
            """,
    }, rules=[NoGlobalRng()])
    assert findings == []


# -- no-wall-clock ---------------------------------------------------------

def test_wall_clock_bad_time_and_datetime(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
    }, rules=[NoWallClock()])
    assert rule_ids(findings) == ["no-wall-clock", "no-wall-clock"]


def test_wall_clock_monotonic_only_in_resilience(tmp_path):
    files = {
        "src/repro/core/resilience.py": """\
            import time

            def deadline(budget):
                return time.monotonic() + budget
            """,
        "src/repro/core/engine.py": """\
            import time

            def deadline(budget):
                return time.monotonic() + budget
            """,
    }
    findings = lint_tree(tmp_path, files, rules=[NoWallClock()])
    assert [(f.path, f.rule) for f in findings] == [
        ("src/repro/core/engine.py", "no-wall-clock")]


def test_wall_clock_monotonic_legal_in_obs_clock(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/obs/clock.py": """\
            import time

            class SystemClock:
                def now(self):
                    return time.monotonic()
            """,
    }, rules=[NoWallClock()])
    assert findings == []


def test_wall_clock_monotonic_banned_elsewhere_in_obs(tmp_path):
    # only the clock module holds the allowance — the rest of the
    # telemetry package must go through the Clock abstraction
    findings = lint_tree(tmp_path, {
        "src/repro/obs/spans.py": """\
            import time

            def stamp():
                return time.monotonic()
            """,
    }, rules=[NoWallClock()])
    assert rule_ids(findings) == ["no-wall-clock"]


# -- shm-leak-path ---------------------------------------------------------
# (path semantics — exceptional-edge leaks, guard kills — are covered in
# tests/test_lint_flow.py; here: the rule's basic good/bad contract)

def test_shm_bad_returning_only_the_name_string(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def make():
                shm = shared_memory.SharedMemory(create=True, size=64)
                return shm.name
            """,
    }, rules=[ShmLeakPath()])
    # shm.name is a string — the block itself never escapes or closes
    assert rule_ids(findings) == ["shm-leak-path"]


def test_shm_good_try_finally_and_registration(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            def guarded(size):
                shm = None
                try:
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    return bytes(shm.buf)
                finally:
                    if shm is not None:
                        shm.close()
                        shm.unlink()

            def registered(owner, size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                owner.append(shm)
                return shm
            """,
    }, rules=[ShmLeakPath()])
    assert findings == []


def test_shm_good_immediate_registration_in_method(tmp_path):
    # the old rule exempted SharedPlaneRegistry by class name; the flow
    # rule needs no exemption — registration on every path is the proof
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            from multiprocessing import shared_memory

            class SharedPlaneRegistry:
                def publish(self, size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    self._owned.append(shm)
                    return shm
            """,
    }, rules=[ShmLeakPath()])
    assert findings == []


# -- no-silent-except ------------------------------------------------------

def test_silent_except_bad(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def swallow(work):
                try:
                    work()
                except Exception:
                    pass
                try:
                    work()
                except:
                    pass
            """,
    }, rules=[NoSilentExcept()])
    assert rule_ids(findings) == ["no-silent-except", "no-silent-except"]


def test_silent_except_good_narrow_or_handled(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def tolerate(work, on_warning):
                try:
                    work()
                except OSError:
                    pass
                try:
                    work()
                except Exception as error:
                    on_warning(str(error))
            """,
    }, rules=[NoSilentExcept()])
    assert findings == []


# -- frozen-records --------------------------------------------------------

def test_frozen_records_bad_mutable_event(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/api/events.py": """\
            from dataclasses import dataclass

            @dataclass
            class CellDone:
                index: int = 0
            """,
    }, rules=[FrozenRecords()])
    assert rule_ids(findings) == ["frozen-records"]
    assert "CellDone" in findings[0].message


def test_frozen_records_good_frozen_and_out_of_scope(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/api/events.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CellDone:
                index: int = 0
            """,
        # mutable dataclasses outside the record modules are fine
        "src/repro/core/engine.py": """\
            from dataclasses import dataclass

            @dataclass
            class Accumulator:
                total: float = 0.0
            """,
    }, rules=[FrozenRecords()])
    assert findings == []


def test_frozen_records_covers_obs_spans(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/obs/spans.py": """\
            from dataclasses import dataclass

            @dataclass
            class SpanRecord:
                name: str = ""
            """,
    }, rules=[FrozenRecords()])
    assert rule_ids(findings) == ["frozen-records"]
    assert "SpanRecord" in findings[0].message


# -- event-exhaustiveness --------------------------------------------------

def copy_protocol_tree(tmp_path):
    for rel in PROTOCOL_FILES:
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((REPO_ROOT / rel).read_text(encoding="utf-8"))


def test_event_exhaustiveness_real_tree_is_clean(tmp_path):
    copy_protocol_tree(tmp_path)
    findings = run_lint([tmp_path], root=tmp_path,
                        rules=[EventExhaustiveness()]).findings
    assert findings == []


def test_new_event_without_consumers_fails_every_layer(tmp_path):
    """The acceptance scenario: add an event dataclass to api/events.py
    with no wire.py EVENT_TYPES entry, no cli.py isinstance branch, and
    no docs catalog row — the drift checker must report each layer."""
    copy_protocol_tree(tmp_path)
    for doc in ("docs/api.md", "docs/static-analysis.md"):
        dest = tmp_path / doc
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((REPO_ROOT / doc).read_text(encoding="utf-8"))
    events = tmp_path / "src/repro/api/events.py"
    events.write_text(events.read_text(encoding="utf-8") + textwrap.dedent(
        '''

        @dataclass(frozen=True)
        class PlaneEvicted(RunEvent):
            """A shared activation plane was dropped from the cache."""

            plane: str = ""
        '''))
    findings = run_lint([tmp_path], root=tmp_path,
                        rules=[ProtocolDrift()]).findings
    assert rule_ids(findings) == ["protocol-drift"] * 3
    assert all("PlaneEvicted" in f.message for f in findings)
    layers = " ".join(f.message for f in findings)
    assert "EVENT_TYPES" in layers
    assert "isinstance" in layers
    assert "docs/api.md" in layers
    assert all(f.waivable is False for f in findings)
    # ...and the baseline can never absorb them
    baseline = Baseline(entries=[BaselineEntry(
        rule="protocol-drift", path="src/repro/api/events.py",
        count=5)])
    active, waived, _ = baseline.apply(findings)
    assert len(active) == 3 and waived == []


def test_protocol_drift_clean_tree_and_stale_wire_entry(tmp_path):
    copy_protocol_tree(tmp_path)
    # without docs in the fixture tree the docs layers are skipped
    findings = run_lint([tmp_path], root=tmp_path,
                        rules=[ProtocolDrift()]).findings
    assert findings == []
    # reverse drift: the wire registers a ghost, and the event it
    # displaced goes missing — both directions must be reported
    wire = tmp_path / "src/repro/service/wire.py"
    wire.write_text(wire.read_text(encoding="utf-8").replace(
        "api_events.RunWarning", "api_events.GhostEvent"))
    findings = run_lint([tmp_path], root=tmp_path,
                        rules=[ProtocolDrift()]).findings
    assert rule_ids(findings) == ["protocol-drift"] * 2
    messages = " ".join(f.message for f in findings)
    assert "GhostEvent" in messages and "RunWarning" in messages


def test_engine_record_without_mirror_or_relay_fails(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/api/events.py": """\
            from dataclasses import dataclass

            class RunEvent:
                pass

            @dataclass(frozen=True)
            class JobRetried(RunEvent):
                job: int = 0
            """,
        "src/repro/cli.py": """\
            from repro.api.events import JobRetried

            def render(event, out):
                if isinstance(event, JobRetried):
                    print(event.job, file=out)
            """,
        "src/repro/api/handle.py": """\
            from repro.core import resilience

            _ENGINE_EVENTS = {resilience.JobRetried: "JobRetried"}
            """,
        "src/repro/core/resilience.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobRetried:
                job: int = 0

            @dataclass(frozen=True)
            class WorkerLost:
                pid: int = 0

            def run(emit):
                emit(JobRetried(job=1))
                emit(WorkerLost(pid=2))
            """,
    }, rules=[EventExhaustiveness()])
    # WorkerLost is emitted but has no mirror api event and no relay entry
    assert rule_ids(findings) == ["event-exhaustiveness"] * 2
    assert all("WorkerLost" in f.message for f in findings)


# -- no-unpicklable-submit -------------------------------------------------

def test_unpicklable_submit_bad_lambda_and_nested(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def run(pool, xs):
                def task(x):
                    return x + 1
                pool.apply_async(lambda: 1)
                return pool.imap(task, xs)
            """,
    }, rules=[NoUnpicklableSubmit()])
    assert rule_ids(findings) == ["no-unpicklable-submit"] * 2


def test_unpicklable_submit_good_module_level_and_callbacks(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            def work(x):
                return x + 1

            def run(pool, done):
                # parent-side callbacks may be closures
                return pool.apply_async(work, (1,),
                                        callback=lambda r: done(r))
            """,
    }, rules=[NoUnpicklableSubmit()])
    assert findings == []


# -- rng-taint -------------------------------------------------------------
# (taint-through-assignment and kill semantics are covered in
# tests/test_lint_flow.py; here: the rule's basic good/bad contract)

def test_rng_taint_bad_rng_param_ignored(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def sample(rng, n):
                fresh = np.random.default_rng(0)
                return fresh.normal(size=n)
            """,
    }, rules=[RngTaint()])
    assert rule_ids(findings) == ["rng-taint"]


def test_rng_taint_bad_seed_not_threaded(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def load(seed):
                return np.random.default_rng(12).normal()
            """,
    }, rules=[RngTaint()])
    assert rule_ids(findings) == ["rng-taint"]


def test_rng_taint_good_threaded_and_tests_exempt(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import numpy as np

            def load(seed):
                return np.random.default_rng(seed).normal()
            """,
        # tests legitimately build generators to compare seeds
        "tests/test_a.py": """\
            import numpy as np

            def check(rng):
                a = np.random.default_rng(0)
                b = np.random.default_rng(1)
                return a, b
            """,
    }, rules=[RngTaint()])
    assert findings == []


# -- no-unbounded-queue ----------------------------------------------------

def test_unbounded_queue_bad_in_service_package(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/service/a.py": """\
            import asyncio
            import queue

            def build():
                jobs = asyncio.Queue()
                backlog = queue.Queue()
                infinite = asyncio.Queue(maxsize=0)
                return jobs, backlog, infinite
            """,
    }, rules=[UnboundedQueue()])
    assert rule_ids(findings) == ["no-unbounded-queue"] * 3
    assert [f.line for f in findings] == [5, 6, 7]


def test_unbounded_queue_good_bounded_and_outside_service(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/service/a.py": """\
            import asyncio
            from queue import Queue

            def build(size):
                jobs = asyncio.Queue(maxsize=size)
                backlog = Queue(16)
                return jobs, backlog
            """,
        # unbounded queues outside the service package are exempt:
        # the api relay drains a finite, known number of events
        "src/repro/api/b.py": """\
            import queue

            relay = queue.Queue()
            """,
    }, rules=[UnboundedQueue()])
    assert findings == []


# -- suppressions ----------------------------------------------------------

def test_inline_suppression_same_line_and_line_above(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import random

            def a():
                return random.random()  # repro: allow[no-global-rng]

            def b():
                # repro: allow[no-global-rng, no-wall-clock]
                return random.random()

            def c():
                return random.random()
            """,
    }, rules=[NoGlobalRng()])
    # only the unsuppressed call in c() survives
    assert [(f.rule, f.line) for f in findings] == [("no-global-rng", 11)]


def test_suppression_star_allows_every_rule(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/a.py": """\
            import random

            value = random.random()  # repro: allow[*]
            """,
    }, rules=[NoGlobalRng()])
    assert findings == []


# -- baseline --------------------------------------------------------------

def test_baseline_waives_by_rule_path_count(tmp_path):
    files = {
        "src/a.py": """\
            import random

            x = random.random()
            y = random.random()
            """,
    }
    baseline = Baseline(entries=[BaselineEntry(
        rule="no-global-rng", path="src/a.py", count=1)])
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    result = run_lint([tmp_path], root=tmp_path, rules=[NoGlobalRng()],
                      baseline=baseline)
    # budget of 1 absorbs one finding; the second stays active
    assert len(result.waived) == 1
    assert len(result.findings) == 1
    assert result.stale_entries == []


def test_baseline_reports_stale_entries(tmp_path):
    (tmp_path / "src").mkdir(parents=True)
    (tmp_path / "src/a.py").write_text("x = 1\n")
    baseline = Baseline(entries=[BaselineEntry(
        rule="no-global-rng", path="src/gone.py")])
    result = run_lint([tmp_path], root=tmp_path, rules=[NoGlobalRng()],
                      baseline=baseline)
    assert result.ok
    assert [e.path for e in result.stale_entries] == ["src/gone.py"]


def test_baseline_count_decrease_is_reported_as_slack(tmp_path):
    """An entry matching fewer findings than its count must be flagged
    so the baseline gets tightened — otherwise the unused budget could
    silently absorb a future regression."""
    (tmp_path / "src").mkdir(parents=True)
    (tmp_path / "src/a.py").write_text(
        "import random\nx = random.random()\n")
    baseline = Baseline(entries=[BaselineEntry(
        rule="no-global-rng", path="src/a.py", count=3)])
    result = run_lint([tmp_path], root=tmp_path, rules=[NoGlobalRng()],
                      baseline=baseline)
    assert result.ok and len(result.waived) == 1
    assert [(e.rule, e.count) for e in result.stale_entries] == [
        ("no-global-rng", 3)]
    # the CLI note names the slack explicitly
    out = io.StringIO()
    path = tmp_path / "lint-baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": [
        {"rule": "no-global-rng", "path": "src/a.py", "count": 3}]}))
    assert lint_command([], root=tmp_path, stdout=out) == 0
    assert "allows 3 but matched 1" in out.getvalue()


def test_write_baseline_is_idempotent_and_tightens(tmp_path):
    """Regenerating twice produces byte-identical output, and after a
    violation is fixed the regenerated file drops the slack."""
    (tmp_path / "src").mkdir(parents=True)
    (tmp_path / "src/a.py").write_text(
        "import random\nx = random.random()\ny = random.random()\n")
    base = tmp_path / "lint-baseline.json"
    assert lint_command([], root=tmp_path, update_baseline=True,
                        stdout=io.StringIO()) == 0
    first = base.read_text(encoding="utf-8")
    assert json.loads(first)["entries"] == [
        {"rule": "no-global-rng", "path": "src/a.py", "count": 2}]
    assert lint_command([], root=tmp_path, update_baseline=True,
                        stdout=io.StringIO()) == 0
    assert base.read_text(encoding="utf-8") == first
    # burn one violation down: the count must decrease, not linger
    (tmp_path / "src/a.py").write_text(
        "import random\nx = random.random()\n")
    assert lint_command([], root=tmp_path, update_baseline=True,
                        stdout=io.StringIO()) == 0
    assert json.loads(base.read_text(encoding="utf-8"))["entries"] == [
        {"rule": "no-global-rng", "path": "src/a.py", "count": 1}]


def test_load_baseline_missing_is_empty_and_malformed_raises(tmp_path):
    assert load_baseline(tmp_path / "absent.json").entries == []
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(LintUsageError):
        load_baseline(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(LintUsageError):
        load_baseline(wrong)


# -- CLI / exit codes ------------------------------------------------------

def test_shipped_tree_is_clean_with_empty_baseline():
    """The acceptance self-check: `repro lint` exits 0 on the shipped
    tree and the committed baseline waives nothing in src/repro."""
    shipped = json.loads(
        (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8"))
    assert shipped["entries"] == []
    out = io.StringIO()
    assert lint_command([], root=REPO_ROOT, stdout=out) == 0
    assert "OK" in out.getvalue()


def test_cli_exit_one_on_violation(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 1


def test_cli_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_exit_two_on_unparsable_file(tmp_path, capsys):
    """A SyntaxError in a checked file is a *finding* plus exit 2 —
    never a silent skip of the file."""
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert lint_main([str(broken), "--root", str(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "broken.py:1: [syntax-error]" in out


def test_unparsable_file_beside_healthy_ones_still_checked(tmp_path):
    """Other files still get the full rule pass; the broken one is
    reported, unwaivable, and forces exit 2 over exit 1."""
    (tmp_path / "src").mkdir()
    (tmp_path / "src/bad.py").write_text(
        "import random\nx = random.random()\n")
    (tmp_path / "src/broken.py").write_text("def oops(:\n")
    out = io.StringIO()
    code = lint_command([], root=tmp_path, stdout=out)
    assert code == 2
    text = out.getvalue()
    assert "[syntax-error]" in text and "[no-global-rng]" in text
    # the baseline cannot absorb a syntax error
    result = run_lint([tmp_path / "src"], root=tmp_path,
                      baseline=Baseline(entries=[BaselineEntry(
                          rule="syntax-error", path="src/broken.py")]))
    assert "syntax-error" in rule_ids(result.findings)


def test_cli_exit_two_on_malformed_baseline(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "src/ok.py").write_text("x = 1\n")
    bad = tmp_path / "base.json"
    bad.write_text("[]")
    assert lint_main(["--root", str(tmp_path),
                      "--baseline", str(bad)]) == 2


def test_cli_list_rules_prints_catalog():
    out = io.StringIO()
    assert lint_command([], list_rules=True, stdout=out) == 0
    text = out.getvalue()
    for rule_id in ("no-global-rng", "no-wall-clock", "shm-leak-path",
                    "no-silent-except", "frozen-records",
                    "event-exhaustiveness", "protocol-drift",
                    "no-unpicklable-submit", "no-unbounded-queue",
                    "rng-taint", "obs-pickle-boundary", "journal-order"):
        assert rule_id in text


def test_cli_json_output(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    out = io.StringIO()
    code = lint_command([str(tmp_path)], root=tmp_path, json_output=True,
                        stdout=out)
    payload = json.loads(out.getvalue())
    assert code == 1
    assert payload["findings"][0]["rule"] == "no-global-rng"
    assert payload["findings"][0]["path"] == "src/bad.py"


def test_cli_write_baseline_then_clean(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    out = io.StringIO()
    assert lint_command([], root=tmp_path, update_baseline=True,
                        stdout=out) == 0
    written = json.loads(
        (tmp_path / "lint-baseline.json").read_text(encoding="utf-8"))
    assert written["entries"] == [
        {"rule": "no-global-rng", "path": "src/bad.py", "count": 1}]
    # with the regenerated baseline the gate passes again
    assert lint_command([], root=tmp_path, stdout=io.StringIO()) == 0


def _git(tmp_path, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=tmp_path, check=True, capture_output=True)


def test_changed_scope_lints_only_modified_files(tmp_path):
    """--changed lints git-modified + untracked python files only; the
    violation in the untouched file stays out of scope."""
    (tmp_path / "src").mkdir()
    (tmp_path / "src/old.py").write_text(
        "import random\nx = random.random()\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    out = io.StringIO()
    assert lint_command([], root=tmp_path, changed="HEAD", stdout=out) == 0
    assert "no python files changed" in out.getvalue()
    # an untracked bad file enters the scope; old.py stays outside it
    (tmp_path / "src/new.py").write_text(
        "import random\ny = random.random()\n")
    out = io.StringIO()
    assert lint_command([], root=tmp_path, changed="HEAD", stdout=out) == 1
    text = out.getvalue()
    assert "src/new.py" in text and "old.py" not in text
    # a tracked modification enters too
    (tmp_path / "src/old.py").write_text(
        "import random\nx = random.random()\nz = random.random()\n")
    out = io.StringIO()
    assert lint_command([], root=tmp_path, changed="HEAD", stdout=out) == 1
    assert "src/old.py" in out.getvalue()


def test_changed_rejects_explicit_paths_and_non_git_roots(tmp_path):
    with pytest.raises(LintUsageError, match="cannot be combined"):
        lint_command(["src"], root=tmp_path, changed="HEAD",
                     stdout=io.StringIO())
    with pytest.raises(LintUsageError, match="git"):
        lint_command([], root=tmp_path, changed="HEAD",
                     stdout=io.StringIO())


def test_repro_cli_subcommand_wiring(capsys):
    """`repro lint` must work without touching the experiment registry."""
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--list-rules"]) == 0
    assert "rng-taint" in capsys.readouterr().out
    # LintUsageError maps to the repo-wide validation exit code
    assert cli_main(["lint", "definitely-not-here.py"]) == 2


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0
    assert "event-exhaustiveness" in proc.stdout
