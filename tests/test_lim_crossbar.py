"""Tests for the crossbar array: execution, fault injection, dynamics."""

import numpy as np
import pytest

from repro.lim import Crossbar, CrossbarConfig
from repro.lim.memristor import DeviceParams


def make_crossbar(rows=4, cols=3, gate="imply", variability=0.0, seed=0):
    return Crossbar(CrossbarConfig(
        rows=rows, cols=cols, gate_family=gate,
        device=DeviceParams(variability=variability), seed=seed))


def random_tiles(rng, rows, cols):
    return (rng.integers(0, 2, (rows, cols)).astype(np.uint8),
            rng.integers(0, 2, (rows, cols)).astype(np.uint8))


@pytest.mark.parametrize("gate", ["imply", "magic"])
def test_faultfree_matches_ideal(rng, gate):
    xbar = make_crossbar(gate=gate)
    a, b = random_tiles(rng, 4, 3)
    np.testing.assert_array_equal(xbar.compute_xnor(a, b), xbar.ideal_xnor(a, b))


def test_tile_shape_enforced(rng):
    xbar = make_crossbar()
    with pytest.raises(ValueError):
        xbar.compute_xnor(np.zeros((2, 2), dtype=np.uint8),
                          np.zeros((2, 2), dtype=np.uint8))


def test_stuck_gate_forces_output(rng):
    xbar = make_crossbar()
    xbar.inject_stuck_gate(1, 2, stuck_value=1)
    a, b = random_tiles(rng, 4, 3)
    out = xbar.compute_xnor(a, b)
    ideal = xbar.ideal_xnor(a, b)
    assert out[1, 2] == 1
    mismatch = out != ideal
    assert set(zip(*np.nonzero(mismatch))) <= {(1, 2)}


def test_row_fault_corrupts_whole_row(rng):
    xbar = make_crossbar()
    xbar.inject_row_fault(2, stuck_value=0)
    a, b = random_tiles(rng, 4, 3)
    out = xbar.compute_xnor(a, b)
    np.testing.assert_array_equal(out[2], np.zeros(3, dtype=np.uint8))
    ideal = xbar.ideal_xnor(a, b)
    np.testing.assert_array_equal(out[[0, 1, 3]], ideal[[0, 1, 3]])


def test_column_fault_corrupts_whole_column(rng):
    xbar = make_crossbar()
    xbar.inject_column_fault(0, stuck_value=1)
    a, b = random_tiles(rng, 4, 3)
    out = xbar.compute_xnor(a, b)
    # IMPLY with every cell stuck at LRS: OUT cell stuck at 1
    np.testing.assert_array_equal(out[:, 0], np.ones(4, dtype=np.uint8))


def test_static_bitflip_flips_every_use(rng):
    xbar = make_crossbar()
    xbar.inject_bitflip(0, 0, period=0)
    a, b = random_tiles(rng, 4, 3)
    for _ in range(3):
        out = xbar.compute_xnor(a, b)
        ideal = xbar.ideal_xnor(a, b)
        assert out[0, 0] == 1 - ideal[0, 0]


def test_dynamic_bitflip_period(rng):
    """Period-n flips fire on uses 0, n, 2n, ... — every n-th XNOR op."""
    xbar = make_crossbar()
    n = 3
    xbar.inject_bitflip(0, 0, period=n)
    a, b = random_tiles(rng, 4, 3)
    ideal = xbar.ideal_xnor(a, b)
    flips = []
    for use in range(9):
        out = xbar.compute_xnor(a, b)
        flips.append(out[0, 0] != ideal[0, 0])
    assert flips == [use % n == 0 for use in range(9)]


def test_use_count_increments(rng):
    xbar = make_crossbar()
    a, b = random_tiles(rng, 4, 3)
    for _ in range(5):
        xbar.compute_xnor(a, b)
    assert (xbar.use_count == 5).all()


def test_clear_faults_restores_ideal(rng):
    xbar = make_crossbar()
    xbar.inject_stuck_gate(0, 0, 1)
    xbar.inject_bitflip(1, 1)
    assert xbar.fault_summary()["stuck_cells"] > 0
    xbar.clear_faults()
    assert xbar.fault_summary() == {"stuck_cells": 0, "flip_gates": 0}
    a, b = random_tiles(rng, 4, 3)
    np.testing.assert_array_equal(xbar.compute_xnor(a, b), xbar.ideal_xnor(a, b))


def test_config_validation():
    with pytest.raises(ValueError):
        CrossbarConfig(rows=0, cols=5)
    with pytest.raises(TypeError):
        Crossbar(CrossbarConfig(), rows=4)


def test_default_geometry_matches_paper():
    """The paper's row/column experiment instantiates a 40x10 crossbar."""
    xbar = Crossbar()
    assert (xbar.rows, xbar.cols) == (40, 10)
