"""Tests for the declarative scenario subsystem (repro.scenarios)."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import FaultType, SpatialMode
from repro.lim import EnduranceModel
from repro.scenarios import (Episode, FaultClause, Scenario, ScenarioError,
                             Timeline, compile_scenario, get_scenario,
                             resolve_scenario, run_scenario, scenario_names)

ROWS, COLS = 6, 3


def small_model(seed=0):
    model = nn.Sequential([
        QuantDense(5, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ], name="one_dense")
    model.build((14,), seed=seed)
    return model


def small_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 14)).astype(np.float32)
    y = rng.integers(0, 5, size=n)
    return x, y


def aging_scenario(**overrides):
    base = dict(
        name="test-aging",
        timeline=Timeline(ages=(0.0, 5e7, 1.5e8),
                          endurance=EnduranceModel(mean_cycles=1e8)),
        clauses=(FaultClause(kind="stuck_at", rate="lifetime-stuck"),
                 FaultClause(kind="bitflip", rate=0.05)),
    )
    base.update(overrides)
    return Scenario(**base)


# -- spec validation ------------------------------------------------------

def test_clause_rejects_unknown_kind():
    with pytest.raises(ScenarioError):
        FaultClause(kind="gamma_ray")


def test_clause_rejects_out_of_range_rate():
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=1.5)
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=-0.1)
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=float("nan"))


def test_clause_rejects_unknown_rate_reference():
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate="lifetime-banana")


def test_clause_dynamic_period_must_be_at_least_one():
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=0.1, period=0)
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=0.1, period=-2)
    assert FaultClause(kind="bitflip", rate=0.1, period=1).period == 1


def test_clause_period_only_for_bitflips():
    with pytest.raises(ScenarioError):
        FaultClause(kind="stuck_at", rate=0.1, period=2)


def test_clause_rate_count_axis_mixups_rejected():
    with pytest.raises(ScenarioError):
        FaultClause(kind="bitflip", rate=0.1, count=2)
    with pytest.raises(ScenarioError):
        FaultClause(kind="faulty_rows", count=1, rate=0.1)
    with pytest.raises(ScenarioError):
        FaultClause(kind="faulty_rows", count=1, rate="lifetime-stuck")


def test_clause_spatial_validation():
    with pytest.raises(ScenarioError):
        FaultClause(kind="stuck_at", rate=0.1, spatial="fractal")
    with pytest.raises(ScenarioError):
        FaultClause(kind="faulty_rows", count=1, spatial="clustered",
                    cluster_size=2)


def test_clause_from_dict_rejects_unknown_keys():
    with pytest.raises(ScenarioError, match="unknown key"):
        FaultClause.from_dict({"kind": "bitflip", "rate": 0.1,
                               "ratee": 0.2})


def test_timeline_validation():
    with pytest.raises(ScenarioError):
        Timeline(ages=())
    with pytest.raises(ScenarioError):
        Timeline(ages=(1e8, 1e7))          # decreasing
    with pytest.raises(ScenarioError):
        Timeline(ages=(-1.0,))
    with pytest.raises(ScenarioError):
        Timeline(ages=(0.0,), cycles_per_inference=0)


def test_episode_validation():
    with pytest.raises(ScenarioError):
        Episode(name="nominal")            # reserved
    with pytest.raises(ScenarioError):
        Episode(name="storm", duty=1.5)


def test_scenario_needs_clauses_and_unique_episode_names():
    with pytest.raises(ScenarioError):
        Scenario(name="empty", clauses=())
    storm = Episode(name="storm", duty=0.1,
                    clauses=(FaultClause(kind="bitflip", rate=0.1),))
    with pytest.raises(ScenarioError):
        Scenario(name="dup", clauses=(),
                 episodes=(storm, storm))


def test_scenario_duties_cannot_exceed_one():
    heavy = Episode(name="a", duty=0.7,
                    clauses=(FaultClause(kind="bitflip", rate=0.1),))
    heavier = Episode(name="b", duty=0.7,
                      clauses=(FaultClause(kind="bitflip", rate=0.1),))
    with pytest.raises(ScenarioError):
        Scenario(name="over", clauses=(), episodes=(heavy, heavier))


def test_scenario_from_dict_rejects_unknown_keys():
    with pytest.raises(ScenarioError, match="unknown key"):
        Scenario.from_dict({"name": "x", "clauses": [], "sauces": []})


def test_scenario_from_dict_round_trip():
    scenario = Scenario.from_dict({
        "name": "doc",
        "timeline": {"ages": [0.0, 1e8],
                     "endurance": {"mean_cycles": 2e8, "shape": 3.0}},
        "clauses": [{"kind": "stuck_at", "rate": "lifetime-stuck",
                     "spatial": "clustered", "cluster_size": 4}],
        "episodes": [{"name": "storm", "duty": 0.25,
                      "clauses": [{"kind": "bitflip", "rate": 0.2,
                                   "period": 2}]}],
    })
    assert scenario.timeline.endurance.mean_cycles == 2e8
    assert scenario.episode_names() == ["nominal", "storm"]
    assert scenario.duties() == [0.75, 0.25]
    assert scenario.clauses_for("storm")[-1].period == 2


def test_scenario_from_yaml():
    yaml = pytest.importorskip("yaml")  # noqa: F841 (gate only)
    scenario = Scenario.from_yaml("""
name: yaml-story
timeline:
  ages: [0.0, 5.0e+7]
clauses:
  - {kind: stuck_at, rate: lifetime-stuck}
""")
    assert scenario.name == "yaml-story"
    assert scenario.timeline.ages == (0.0, 5e7)


def test_scenario_from_file_json(tmp_path):
    path = tmp_path / "story.json"
    path.write_text('{"name": "j", "timeline": {"ages": [0.0]}, '
                    '"clauses": [{"kind": "bitflip", "rate": 0.1}]}')
    assert Scenario.from_file(path).name == "j"


def test_scenario_from_file_malformed_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"name": ')
    with pytest.raises(ScenarioError):
        Scenario.from_file(path)


def test_resolve_scenario_unknown_name():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        resolve_scenario("not-a-story")


# -- clause lowering ------------------------------------------------------

def test_lifetime_rates_follow_endurance_curve():
    scenario = aging_scenario()
    grid = compile_scenario(scenario, rows=ROWS, cols=COLS)
    endurance = scenario.timeline.endurance
    stuck = [cell.specs[0] for cell in grid.cells]
    assert stuck[0].rate == endurance.stuck_fraction(0.0) == 0.0
    assert stuck[1].rate == pytest.approx(endurance.stuck_fraction(5e7))
    assert stuck[2].rate == pytest.approx(endurance.stuck_fraction(1.5e8))
    assert stuck[1].rate < stuck[2].rate
    # the fixed-rate clause stays fixed across checkpoints
    assert all(cell.specs[1].rate == 0.05 for cell in grid.cells)


def test_scale_and_clipping():
    clause = FaultClause(kind="stuck_at", rate="lifetime-stuck", scale=100.0)
    point = EnduranceModel(mean_cycles=1e8).rates_at(2e8, 1e3)
    spec = clause.lower(point, ROWS, COLS)
    assert spec.rate == 1.0  # clipped, not out of range


def test_lifetime_count_lowering():
    clause = FaultClause(kind="faulty_rows", count="lifetime", scale=0.5)
    point = EnduranceModel(mean_cycles=1e8).rates_at(1e8, 1e3)
    spec = clause.lower(point, ROWS, COLS)
    expected = round(point.stuck_rate * 0.5 * ROWS)
    assert spec.kind == FaultType.FAULTY_ROWS
    assert spec.count == min(ROWS, expected)


def test_lowered_spec_carries_spatial_and_layers():
    clause = FaultClause(kind="stuck_at", rate=0.2, spatial="row_burst",
                         cluster_size=2, layers=("one_dense",))
    point = EnduranceModel().rates_at(0.0, 1.0)
    spec = clause.lower(point, ROWS, COLS)
    assert spec.spatial == SpatialMode.ROW_BURST
    assert spec.cluster_size == 2
    assert spec.layers == ("one_dense",)


# -- compilation ----------------------------------------------------------

def test_compile_is_deterministic():
    a = compile_scenario(aging_scenario(), rows=ROWS, cols=COLS)
    b = compile_scenario(aging_scenario(), rows=ROWS, cols=COLS)
    assert a.xs == b.xs
    assert a.describe() == b.describe()


def test_compile_grid_shape_checkpoint_major():
    storm = Episode(name="storm", duty=0.1,
                    clauses=(FaultClause(kind="bitflip", rate=0.1),))
    grid = compile_scenario(aging_scenario(episodes=(storm,)),
                            rows=ROWS, cols=COLS)
    assert grid.n_checkpoints == 3
    assert grid.episodes == ["nominal", "storm"]
    assert [cell.index for cell in grid.cells] == list(range(6))
    assert [cell.episode for cell in grid.cells[:2]] == ["nominal", "storm"]
    # storm cells carry the extra clause on top of the base ones
    assert len(grid.cells[1].specs) == len(grid.cells[0].specs) + 1


def test_compile_validates_layer_targets_against_model():
    bad = aging_scenario(clauses=(
        FaultClause(kind="stuck_at", rate=0.1, layers=("nonexistent",)),))
    with pytest.raises(ScenarioError, match="not mapped"):
        compile_scenario(bad, small_model(), rows=ROWS, cols=COLS)
    from repro.core import mapped_layers
    model = small_model()
    name = mapped_layers(model)[0].name
    good = aging_scenario(clauses=(
        FaultClause(kind="stuck_at", rate=0.1, layers=(name,)),))
    grid = compile_scenario(good, model, rows=ROWS, cols=COLS)
    assert grid.cells[0].specs[0].layers == (name,)


def test_zoo_has_six_scenarios_that_all_compile():
    names = scenario_names()
    assert len(names) >= 6
    for name in names:
        grid = compile_scenario(get_scenario(name), small_model(),
                                rows=ROWS, cols=COLS)
        assert grid.cells, name
        assert grid.xs == [float(i) for i in range(len(grid.cells))]


def test_zoo_unknown_name():
    with pytest.raises(ScenarioError):
        get_scenario("mid-life-crisis")


# -- execution ------------------------------------------------------------

def test_run_scenario_shapes_and_determinism():
    model = small_model()
    x, y = small_data()
    first = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=7,
                         rows=ROWS, cols=COLS)
    again = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=7,
                         rows=ROWS, cols=COLS)
    assert first.accuracies.shape == (3, 1, 2)
    np.testing.assert_array_equal(first.accuracies, again.accuracies)
    assert first.baseline == again.baseline


def test_run_scenario_different_seeds_differ():
    model = small_model()
    x, y = small_data()
    a = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=0,
                     rows=ROWS, cols=COLS)
    b = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=99,
                     rows=ROWS, cols=COLS)
    assert not np.array_equal(a.accuracies, b.accuracies)


@pytest.mark.parametrize("executor,backend", [
    ("serial", "packed"),
    ("multiprocessing", "float"),
    ("multiprocessing", "packed"),
    ("shared_memory", "float"),
    ("shared_memory", "packed"),
])
def test_run_scenario_bit_identical_across_engine_combos(executor, backend):
    """Same scenario + seed ⇒ bit-identical trajectories on every
    executor × backend combination (the engine's §IV contract extends to
    compiled grids)."""
    model = small_model()
    x, y = small_data()
    scenario = aging_scenario()
    reference = run_scenario(scenario, model, x, y, repeats=2, seed=5,
                             rows=ROWS, cols=COLS)
    other = run_scenario(scenario, model, x, y, repeats=2, seed=5,
                         rows=ROWS, cols=COLS, executor=executor,
                         n_jobs=2, backend=backend)
    np.testing.assert_array_equal(reference.accuracies, other.accuracies)
    assert reference.baseline == other.baseline


def test_run_scenario_episode_columns_and_blending():
    model = small_model()
    x, y = small_data()
    storm = Episode(name="storm", duty=0.25,
                    clauses=(FaultClause(kind="bitflip", rate=0.4),))
    scenario = aging_scenario(episodes=(storm,))
    result = run_scenario(scenario, model, x, y, repeats=2, seed=1,
                          rows=ROWS, cols=COLS)
    assert result.accuracies.shape == (3, 2, 2)
    assert result.episodes == ["nominal", "storm"]
    nominal = result.trajectory("nominal")
    stormy = result.trajectory("storm")
    blended = result.blended_trajectory()
    np.testing.assert_allclose(blended, 0.75 * nominal + 0.25 * stormy)
    with pytest.raises(ScenarioError):
        result.trajectory("hurricane")


def test_run_scenario_journal_resume_bit_identical(tmp_path):
    model = small_model()
    x, y = small_data()
    journal = tmp_path / "scenario.jsonl"
    first = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=3,
                         rows=ROWS, cols=COLS, journal=journal)
    resumed = run_scenario(aging_scenario(), model, x, y, repeats=2, seed=3,
                           rows=ROWS, cols=COLS, journal=journal)
    np.testing.assert_array_equal(first.accuracies, resumed.accuracies)
    assert resumed.sweep.meta["resumed_cells"] == 6


def test_run_scenario_refuses_mismatched_journal(tmp_path):
    model = small_model()
    x, y = small_data()
    journal = tmp_path / "scenario.jsonl"
    run_scenario(aging_scenario(), model, x, y, repeats=2, seed=3,
                 rows=ROWS, cols=COLS, journal=journal)
    other = aging_scenario(clauses=(
        FaultClause(kind="bitflip", rate=0.3),))
    with pytest.raises(ValueError, match="different campaign"):
        run_scenario(other, model, x, y, repeats=2, seed=3,
                     rows=ROWS, cols=COLS, journal=journal)


def test_run_scenario_rows_for_reporting():
    model = small_model()
    x, y = small_data()
    result = run_scenario("fresh-device", model, x, y, repeats=1,
                          rows=ROWS, cols=COLS)
    rows = result.as_rows()
    assert [r["age"] for r in rows] == result.ages
    assert all("nominal" in r["episodes"] for r in rows)
    # fresh device: negligible rates, so accuracy == baseline at age 0
    assert rows[0]["stuck_rate"] == 0.0


def test_timeline_endurance_rejects_non_numeric_params():
    with pytest.raises(ScenarioError, match="endurance"):
        Timeline.from_dict({"ages": [0.0],
                            "endurance": {"mean_cycles": "fast"}})


def test_clause_spatial_cluster_size_consistency_at_parse_time():
    """Malformed spatial specs fail at parse time with ScenarioError,
    not later inside compile with a bare ValueError."""
    with pytest.raises(ScenarioError, match="cluster_size"):
        FaultClause(kind="stuck_at", rate=0.1, spatial="clustered")
    with pytest.raises(ScenarioError, match="cluster_size"):
        FaultClause(kind="stuck_at", rate=0.1, cluster_size=4)
