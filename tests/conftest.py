"""Shared fixtures for the test suite (numeric helpers live in gradcheck.py)."""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import assert_grad_close, numerical_gradient  # noqa: F401 (re-export)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
