"""Property-based and unit tests for the packed XNOR/popcount kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary import bitops


def bipolar_arrays(min_len=1, max_len=200):
    return st.integers(min_len, max_len).flatmap(
        lambda n: st.lists(st.sampled_from([-1.0, 1.0]), min_size=n, max_size=n))


@given(bipolar_arrays())
@settings(max_examples=60, deadline=None)
def test_pack_unpack_roundtrip(values):
    x = np.array(values, dtype=np.float32)
    packed, length = bitops.pack_bipolar(x)
    assert length == len(values)
    np.testing.assert_array_equal(bitops.unpack_bipolar(packed, length), x)


@given(st.integers(1, 300), st.integers(0, 2 ** 32 - 1))
@settings(max_examples=60, deadline=None)
def test_xnor_accumulate_equals_dot(length, seed):
    rng = np.random.default_rng(seed)
    a = rng.choice([-1.0, 1.0], size=length).astype(np.float32)
    b = rng.choice([-1.0, 1.0], size=length).astype(np.float32)
    a_packed, _ = bitops.pack_bipolar(a)
    b_packed, _ = bitops.pack_bipolar(b)
    got = bitops.xnor_accumulate(a_packed, b_packed, length)
    assert got == int(np.dot(a, b))


@given(st.integers(1, 20), st.integers(1, 100), st.integers(1, 12),
       st.integers(0, 2 ** 32 - 1))
@settings(max_examples=30, deadline=None)
def test_binary_matmul_equals_float_gemm(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.choice([-1.0, 1.0], size=(m, k)).astype(np.float32)
    b = rng.choice([-1.0, 1.0], size=(k, n)).astype(np.float32)
    got = bitops.binary_matmul(a, b)
    np.testing.assert_array_equal(got, (a @ b).astype(np.int64))


def test_pack_rejects_non_bipolar():
    with pytest.raises(ValueError):
        bitops.pack_bipolar(np.array([0.5, 1.0]))


def test_xnor_accumulate_parity_bound(rng):
    """|dot| <= length and dot has the same parity as length."""
    for _ in range(10):
        length = int(rng.integers(1, 128))
        a = rng.choice([-1.0, 1.0], size=length)
        b = rng.choice([-1.0, 1.0], size=length)
        ap, _ = bitops.pack_bipolar(a)
        bp, _ = bitops.pack_bipolar(b)
        acc = int(bitops.xnor_accumulate(ap, bp, length))
        assert abs(acc) <= length
        assert (acc - length) % 2 == 0
