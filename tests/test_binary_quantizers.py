"""Tests for the quantizer family."""

import numpy as np
import pytest

from repro.binary import quantizers


def test_ste_sign_bipolar_output(rng):
    q = quantizers.SteSign()
    out = q.quantize(rng.standard_normal(100))
    assert set(np.unique(out)) <= {-1.0, 1.0}
    assert q.quantize(np.array([0.0]))[0] == 1.0


def test_ste_sign_gradient_clips():
    q = quantizers.SteSign()
    latent = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
    grad = q.grad(latent, np.ones_like(latent))
    np.testing.assert_array_equal(grad, [0.0, 1.0, 1.0, 1.0, 0.0])


def test_approx_sign_gradient_shape():
    q = quantizers.ApproxSign()
    latent = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
    grad = q.grad(latent, np.ones_like(latent))
    np.testing.assert_allclose(grad, [0.0, 1.0, 2.0, 1.0, 0.0])


def test_approx_sign_is_strictly_binary(rng):
    q = quantizers.ApproxSign()
    out = q.quantize(rng.standard_normal(50))
    assert set(np.unique(out)) <= {-1.0, 1.0}
    assert q.strictly_binary


def test_magnitude_aware_not_strictly_binary(rng):
    q = quantizers.MagnitudeAwareSign()
    w = rng.standard_normal((3, 3, 2, 4))
    out = q.quantize(w)
    assert not q.strictly_binary
    # per-output-channel constant magnitude
    mags = np.abs(out).reshape(-1, 4)
    for c in range(4):
        assert np.allclose(mags[:, c], mags[0, c])


def test_magnitude_aware_split_recomposes(rng):
    q = quantizers.MagnitudeAwareSign()
    w = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
    binary, gain = q.split(w)
    assert set(np.unique(binary)) <= {-1.0, 1.0}
    np.testing.assert_allclose(binary * gain, q.quantize(w), rtol=1e-6)


def test_get_by_name_and_passthrough():
    assert isinstance(quantizers.get("ste_sign"), quantizers.SteSign)
    assert isinstance(quantizers.get("approx_sign"), quantizers.ApproxSign)
    assert quantizers.get(None) is None
    inst = quantizers.SteSign()
    assert quantizers.get(inst) is inst
    with pytest.raises(ValueError):
        quantizers.get("nope")
