"""Integration tests for the experiment runners (tiny configurations).

These use the cached trained LeNet (training it on first run) and tiny
sweep settings, so they validate the experiment plumbing end-to-end
without benchmark-scale runtimes.
"""

import numpy as np
import pytest

from repro.experiments import fig4, get_mnist, trained_lenet
from repro.experiments.tables import table1_setup
from repro.models.lenet import LENET_MAPPED_LAYERS


@pytest.fixture(scope="module")
def lenet():
    return trained_lenet()


@pytest.fixture(scope="module")
def tiny_test():
    _, test = get_mnist()
    return test.subset(60)


def test_lenet_baseline_matches_paper_regime(lenet):
    """Paper: 97.62% on MNIST.  The synthetic substitute must land in the
    same regime (>= 90%) for degradation studies to be meaningful."""
    _, test = get_mnist()
    assert test.x.shape[1:] == (28, 28, 1)
    accuracy = lenet.evaluate(test.x, test.y)
    assert accuracy >= 0.90


def test_fig4a_runner_structure(lenet, tiny_test):
    results = fig4.run_fig4a(lenet, tiny_test, rates=(0.0, 0.3), repeats=2)
    assert set(results) == set(LENET_MAPPED_LAYERS) | {"combined"}
    for label, result in results.items():
        assert result.accuracies.shape == (2, 2), label
        assert result.mean()[0] == result.baseline


def test_fig4b_stuckat_stronger_than_bitflip(lenet):
    """The paper's central finding: permanent stuck-at faults degrade
    accuracy more than transient bit-flips at the same injection rate."""
    _, test = get_mnist()
    test = test.subset(250)
    rate = 0.15
    flips = fig4.run_fig4a(lenet, test, rates=(rate,), repeats=4)
    stuck = fig4.run_fig4b(lenet, test, rates=(rate,), repeats=4)
    assert stuck["combined"].mean()[0] < flips["combined"].mean()[0]


def test_fig4c_dynamic_recovers(lenet, tiny_test):
    result = fig4.run_fig4c(lenet, tiny_test, periods=(0, 4), rate=0.15,
                            repeats=3)
    means = result.mean()
    assert means[1] >= means[0]


def test_fig4d_columns_within_range(lenet, tiny_test):
    results = fig4.run_fig4d(lenet, tiny_test, counts=(0, 4), repeats=2,
                             layer_names=("conv1",))
    assert list(results) == ["conv1"]
    conv1 = results["conv1"]
    assert conv1.mean()[1] <= conv1.mean()[0]


def test_fig4e_rows_milder_than_columns(lenet, tiny_test):
    """160 faulty cells via rows must hurt less than via columns (paper:
    'the impact of faulty columns is more substantial than of faulty
    rows')."""
    cols = fig4.run_fig4d(lenet, tiny_test, counts=(4,), repeats=3,
                          layer_names=("conv1",))["conv1"]
    rows = fig4.run_fig4e(lenet, tiny_test, counts=(16,), repeats=3,
                          layer_names=("conv1",))["conv1"]
    assert rows.mean()[0] >= cols.mean()[0] - 0.05


def test_fig4f_runtime_shape(rng):
    """Runtime protocol on a small model (LeNet-scale serial runs take
    minutes; the benchmark covers those)."""
    from repro import nn
    from repro.binary import QuantDense
    from repro.data import Dataset

    model = nn.Sequential([
        QuantDense(6, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(4, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ]).build((12,), seed=0)
    x = rng.standard_normal((40, 12)).astype(np.float32)
    y = rng.integers(0, 4, 40)
    test = Dataset(x, y)

    outcome = fig4.run_fig4f(model, test, passes=1, xfault_images=2,
                             serial_images=1, rows=6, cols=3)
    names = [sample.platform for sample in outcome["samples"]]
    assert names == ["X-Fault", "device-tile", "FLIM", "vanilla"]
    by_name = {platform: speedup for platform, _, speedup in outcome["table"]}
    assert by_name["X-Fault"] == pytest.approx(1.0)
    assert by_name["FLIM"] > 10.0      # device level must be far slower
    assert by_name["FLIM"] >= by_name["device-tile"]


def test_table1_setup_rows():
    rows = table1_setup()
    keys = [key for key, _ in rows]
    assert "CPU" in keys
    assert "numpy" in keys
    assert all(isinstance(value, str) and value for _, value in rows)


def test_trained_lenet_cache_roundtrip(lenet):
    """A second call must load identical weights from the cache."""
    again = trained_lenet()
    first = lenet.state_dict()
    second = again.state_dict()
    assert set(first) == set(second)
    for key in first:
        np.testing.assert_array_equal(first[key], second[key])
