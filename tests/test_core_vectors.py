"""Round-trip and format tests for the binary fault-vector files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FaultSpec, assemble_layer_masks, load_fault_vectors,
                        save_fault_vectors)
from repro.core.masks import LayerMasks
from repro.core.vectors import MAGIC


def random_plan(seed, layers=("conv1", "dense0")):
    rng = np.random.default_rng(seed)
    plan = {}
    for name in layers:
        plan[name] = assemble_layer_masks(
            40, 10, [FaultSpec.bitflip(0.1, period=2), FaultSpec.stuck_at(0.05)], rng)
    return plan


def assert_plans_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        ma, mb = a[name], b[name]
        assert (ma.rows, ma.cols) == (mb.rows, mb.cols)
        assert ma.flip_period == mb.flip_period
        assert ma.flip_semantics == mb.flip_semantics
        assert ma.stuck_semantics == mb.stuck_semantics
        np.testing.assert_array_equal(ma.flip_mask, mb.flip_mask)
        np.testing.assert_array_equal(ma.stuck_mask, mb.stuck_mask)
        # stuck values only matter where the stuck mask is set
        np.testing.assert_array_equal(ma.stuck_values[ma.stuck_mask],
                                      mb.stuck_values[mb.stuck_mask])


def test_roundtrip(tmp_path):
    plan = random_plan(0)
    path = tmp_path / "faults.flim"
    save_fault_vectors(path, plan)
    assert_plans_equal(plan, load_fault_vectors(path))


def test_file_starts_with_magic(tmp_path):
    path = tmp_path / "faults.flim"
    save_fault_vectors(path, random_plan(1))
    with open(path, "rb") as handle:
        assert handle.read(4) == MAGIC


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "not_flim.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(ValueError):
        load_fault_vectors(path)


def test_rejects_empty_and_header_only_files(tmp_path):
    path = tmp_path / "empty.flim"
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="truncated"):
        load_fault_vectors(path)
    path.write_bytes(MAGIC + b"\x01")  # half a header
    with pytest.raises(ValueError, match="truncated"):
        load_fault_vectors(path)


@pytest.mark.parametrize("keep", [11, 13, 20, 40, 75])
def test_truncated_file_raises_clear_valueerror(tmp_path, keep):
    """Cutting a valid file anywhere must raise ValueError (never a bare
    struct.error) and name the field that ran out."""
    path = tmp_path / "faults.flim"
    save_fault_vectors(path, random_plan(3))
    data = path.read_bytes()
    assert keep < len(data)
    truncated = tmp_path / "cut.flim"
    truncated.write_bytes(data[:keep])
    with pytest.raises(ValueError, match="truncated|corrupt"):
        load_fault_vectors(truncated)


def test_corrupt_semantics_code_rejected(tmp_path):
    path = tmp_path / "faults.flim"
    plan = {"layer": random_plan(4, layers=("layer",))["layer"]}
    save_fault_vectors(path, plan)
    data = bytearray(path.read_bytes())
    # the flip-semantics byte sits after header + name field + rows/cols/period
    offset = 10 + 2 + len(b"layer") + 12
    data[offset] = 99
    bad = tmp_path / "bad.flim"
    bad.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="semantics"):
        load_fault_vectors(bad)


def test_zero_size_crossbar_rejected(tmp_path):
    path = tmp_path / "faults.flim"
    save_fault_vectors(path, {"layer": random_plan(5, layers=("layer",))["layer"]})
    data = bytearray(path.read_bytes())
    offset = 10 + 2 + len(b"layer")  # rows field (u32)
    data[offset:offset + 4] = (0).to_bytes(4, "little")
    bad = tmp_path / "bad.flim"
    bad.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="empty"):
        load_fault_vectors(bad)


def test_overlong_layer_name_rejected_on_save(tmp_path):
    """Names beyond the u16 field must fail loudly, not overflow silently."""
    rng = np.random.default_rng(6)
    masks = assemble_layer_masks(4, 4, [FaultSpec.bitflip(0.5)], rng)
    path = tmp_path / "long.flim"
    with pytest.raises(ValueError, match="too long"):
        save_fault_vectors(path, {"x" * 70000: masks})
    # multi-byte UTF-8 may overflow even below 65536 characters
    with pytest.raises(ValueError, match="too long"):
        save_fault_vectors(path, {"ä" * 40000: masks})
    assert not path.exists() or path.stat().st_size == 0


def test_longest_legal_name_roundtrips(tmp_path):
    rng = np.random.default_rng(7)
    name = "n" * 0xFFFF
    masks = assemble_layer_masks(4, 4, [FaultSpec.bitflip(0.5)], rng)
    path = tmp_path / "max_name.flim"
    save_fault_vectors(path, {name: masks})
    assert set(load_fault_vectors(path)) == {name}


def test_empty_plan_roundtrip(tmp_path):
    path = tmp_path / "empty.flim"
    save_fault_vectors(path, {})
    assert load_fault_vectors(path) == {}


def test_unicode_layer_names(tmp_path):
    rng = np.random.default_rng(2)
    plan = {"schicht_äöü": assemble_layer_masks(4, 4, [FaultSpec.bitflip(0.5)], rng)}
    path = tmp_path / "unicode.flim"
    save_fault_vectors(path, plan)
    assert "schicht_äöü" in load_fault_vectors(path)


@given(st.integers(1, 25), st.integers(1, 25), st.integers(0, 2 ** 31 - 1),
       st.integers(0, 7))
@settings(max_examples=30, deadline=None)
def test_property_roundtrip_arbitrary_shapes(rows, cols, seed, period):
    import os
    import tempfile

    rng = np.random.default_rng(seed)
    masks = LayerMasks(
        rows=rows, cols=cols,
        flip_mask=rng.random((rows, cols)) < 0.3,
        flip_period=period,
        stuck_mask=rng.random((rows, cols)) < 0.2,
        stuck_values=rng.integers(0, 2, (rows, cols)).astype(np.uint8),
    )
    handle, path = tempfile.mkstemp(suffix=".flim")
    os.close(handle)
    try:
        save_fault_vectors(path, {"layer": masks})
        assert_plans_equal({"layer": masks}, load_fault_vectors(path))
    finally:
        os.unlink(path)
