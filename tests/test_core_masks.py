"""Tests for fault-mask construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FaultSpec, FaultType, StuckPolarity, assemble_layer_masks
from repro.core.masks import (LayerMasks, build_bitflip_mask, build_line_mask,
                              build_stuck_mask)


def test_bitflip_mask_exact_count(rng):
    mask = build_bitflip_mask(40, 10, 0.25, rng)
    assert mask.shape == (40, 10)
    assert mask.sum() == 100  # exactly round(0.25 * 400)


def test_bitflip_mask_zero_and_full(rng):
    assert build_bitflip_mask(8, 8, 0.0, rng).sum() == 0
    assert build_bitflip_mask(8, 8, 1.0, rng).sum() == 64


@given(st.integers(1, 30), st.integers(1, 30),
       st.floats(0.0, 1.0, allow_nan=False), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_property_bitflip_count_matches_rate(rows, cols, rate, seed):
    rng = np.random.default_rng(seed)
    mask = build_bitflip_mask(rows, cols, rate, rng)
    assert mask.sum() == int(round(rate * (rows * cols)))


def test_bitflip_mask_positions_vary_with_seed():
    m1 = build_bitflip_mask(20, 20, 0.1, np.random.default_rng(0))
    m2 = build_bitflip_mask(20, 20, 0.1, np.random.default_rng(1))
    assert not np.array_equal(m1, m2)


def test_stuck_mask_fixed_polarity(rng):
    mask, values = build_stuck_mask(10, 10, 0.2, StuckPolarity.STUCK_AT_1, rng)
    assert (values[mask] == 1).all()
    mask0, values0 = build_stuck_mask(10, 10, 0.2, StuckPolarity.STUCK_AT_0, rng)
    assert (values0[mask0] == 0).all()


def test_stuck_mask_random_polarity_mixes(rng):
    mask, values = build_stuck_mask(40, 40, 0.5, StuckPolarity.RANDOM, rng)
    levels = values[mask]
    assert 0 < levels.mean() < 1  # both polarities present


def test_line_mask_rows(rng):
    mask = build_line_mask(6, 4, FaultType.FAULTY_ROWS, 2, rng,
                           indices=np.array([1, 3]))
    assert mask.sum() == 2 * 4
    assert mask[1].all() and mask[3].all()
    assert not mask[0].any()


def test_line_mask_columns(rng):
    mask = build_line_mask(6, 4, FaultType.FAULTY_COLUMNS, 1, rng,
                           indices=np.array([2]))
    assert mask[:, 2].all()
    assert mask.sum() == 6


def test_line_mask_too_many_lines(rng):
    with pytest.raises(ValueError):
        build_line_mask(4, 4, FaultType.FAULTY_ROWS, 5, rng)


def test_assemble_combines_specs(rng):
    masks = assemble_layer_masks(40, 10, [
        FaultSpec.bitflip(0.1, period=3),
        FaultSpec.faulty_columns(1),
        FaultSpec.stuck_at(0.05),
    ], rng)
    assert masks.flip_period == 3
    assert masks.flip_mask.sum() >= 40       # the whole column plus flips
    assert masks.stuck_mask.sum() == 20      # round(0.05 * 400)
    assert masks.has_faults
    counts = masks.fault_counts()
    assert counts["stuck"] == 20


def test_assemble_empty_specs(rng):
    masks = assemble_layer_masks(8, 8, [], rng)
    assert not masks.has_faults


def test_layer_masks_shape_validation():
    with pytest.raises(ValueError):
        LayerMasks(rows=4, cols=4, flip_mask=np.zeros((2, 2), dtype=bool))


def test_vectors_flatten_row_major(rng):
    masks = assemble_layer_masks(3, 4, [FaultSpec.bitflip(0.5)], rng)
    np.testing.assert_array_equal(masks.flip_vector(),
                                  masks.flip_mask.reshape(-1))
    sm, sv = masks.stuck_vectors()
    assert sm.shape == (12,)
    assert sv.shape == (12,)


# -- spatially correlated masks (scenario subsystem, PR 4) ----------------

def _adjacency_fraction(mask):
    """Fraction of set cells with at least one set 4-neighbour."""
    padded = np.pad(mask, 1)
    neighbours = (padded[:-2, 1:-1] | padded[2:, 1:-1]
                  | padded[1:-1, :-2] | padded[1:-1, 2:])
    set_cells = int(mask.sum())
    return (mask & neighbours).sum() / set_cells if set_cells else 0.0


def test_clustered_mask_exact_count_and_clustering():
    from repro.core import build_bitflip_mask, build_clustered_mask
    rng = np.random.default_rng(7)
    clustered = build_clustered_mask(40, 10, 0.1, cluster_size=8, rng=rng)
    assert clustered.sum() == 40  # round(0.1 * 400), the paper's contract
    iid = build_bitflip_mask(40, 10, 0.1, np.random.default_rng(7))
    assert _adjacency_fraction(clustered) > _adjacency_fraction(iid)


@given(st.integers(2, 20), st.integers(2, 20),
       st.floats(0.0, 1.0, allow_nan=False), st.integers(1, 9),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_property_clustered_count_matches_rate(rows, cols, rate, size, seed):
    from repro.core import build_clustered_mask
    rng = np.random.default_rng(seed)
    mask = build_clustered_mask(rows, cols, rate, size, rng)
    assert mask.sum() == int(round(rate * (rows * cols)))


@given(st.integers(2, 20), st.integers(2, 20),
       st.floats(0.0, 1.0, allow_nan=False), st.integers(1, 6),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_property_row_burst_count_matches_rate(rows, cols, rate, burst, seed):
    from repro.core import build_row_burst_mask
    rng = np.random.default_rng(seed)
    mask = build_row_burst_mask(rows, cols, rate, burst, rng)
    assert mask.sum() == int(round(rate * (rows * cols)))


def test_row_burst_mask_fills_consecutive_rows():
    from repro.core import build_row_burst_mask
    rng = np.random.default_rng(3)
    # one burst of exactly 2 rows: 2 * cols cells at the matching rate
    mask = build_row_burst_mask(10, 4, 0.2, burst_rows=2, rng=rng)
    assert mask.sum() == 8
    full_rows = np.flatnonzero(mask.all(axis=1))
    assert len(full_rows) == 2
    assert full_rows[1] == full_rows[0] + 1


def test_correlated_builders_deterministic_under_seed():
    from repro.core import build_clustered_mask, build_row_burst_mask
    for build, kwargs in [(build_clustered_mask, dict(cluster_size=5)),
                          (build_row_burst_mask, dict(burst_rows=3))]:
        a = build(24, 12, 0.3, rng=np.random.default_rng(11), **kwargs)
        b = build(24, 12, 0.3, rng=np.random.default_rng(11), **kwargs)
        np.testing.assert_array_equal(a, b)


def test_correlated_builders_reject_bad_cluster_size():
    from repro.core import build_clustered_mask, build_row_burst_mask
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        build_clustered_mask(8, 8, 0.1, 0, rng)
    with pytest.raises(ValueError):
        build_row_burst_mask(8, 8, 0.1, 0, rng)


def test_assemble_honours_spatial_mode(rng):
    from repro.core import SpatialMode
    specs = [FaultSpec.stuck_at(0.2, spatial=SpatialMode.CLUSTERED,
                                cluster_size=6)]
    masks = assemble_layer_masks(20, 10, specs, rng)
    assert masks.stuck_mask.sum() == 40
    assert _adjacency_fraction(masks.stuck_mask) > 0.5
