"""Tests for the fault injector: hook wiring, determinism, cleanup."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantConv2D, QuantDense
from repro.core import (FaultInjector, FaultGenerator, FaultSpec, Semantics,
                        StuckPolarity)


def small_model(seed=0):
    model = nn.Sequential([
        QuantConv2D(4, 3, padding="same", input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        nn.Flatten(),
        QuantDense(5, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
    ], name="small")
    model.build((6, 6, 2), seed=seed)
    bn = model.layers_of_type(nn.BatchNorm)[0]
    bn.running_mean[...] = 0.2
    bn.running_var[...] = 1.3
    return model


@pytest.fixture
def model():
    return small_model()


@pytest.fixture
def x(rng):
    return rng.standard_normal((4, 6, 6, 2)).astype(np.float32)


def test_zero_fault_plan_is_identity(model, x):
    """FLIM without faults must equal vanilla inference bit-exactly."""
    clean = model.predict(x)
    generator = FaultGenerator(FaultSpec.bitflip(0.0), rows=8, cols=4, seed=0)
    plan = generator.generate(model)
    injector = FaultInjector()
    with injector.injecting(model, plan):
        faulty = model.predict(x)
    np.testing.assert_array_equal(clean, faulty)


def test_detach_restores_vanilla(model, x):
    clean = model.predict(x)
    generator = FaultGenerator(FaultSpec.bitflip(0.3), rows=8, cols=4, seed=1)
    injector = FaultInjector()
    injector.attach(model, generator.generate(model))
    corrupted = model.predict(x)
    assert not np.array_equal(clean, corrupted)
    injector.detach()
    np.testing.assert_array_equal(model.predict(x), clean)


def test_context_manager_detaches_on_exception(model, x):
    generator = FaultGenerator(FaultSpec.bitflip(0.3), rows=8, cols=4, seed=1)
    injector = FaultInjector()
    clean = model.predict(x)
    with pytest.raises(RuntimeError):
        with injector.injecting(model, generator.generate(model)):
            raise RuntimeError("boom")
    np.testing.assert_array_equal(model.predict(x), clean)


def test_double_attach_rejected(model):
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=8, cols=4)
    injector = FaultInjector()
    injector.attach(model, generator.generate(model))
    with pytest.raises(RuntimeError):
        injector.attach(model, generator.generate(model))
    injector.detach()


def test_unknown_layer_in_plan_rejected(model):
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=8, cols=4)
    plan = generator.generate(model)
    plan["bogus_layer"] = next(iter(plan.values()))
    with pytest.raises(KeyError):
        FaultInjector().attach(model, plan)


def test_injection_is_deterministic(model, x):
    generator = FaultGenerator(FaultSpec.bitflip(0.2), rows=8, cols=4, seed=7)
    plan = generator.generate(model)
    injector = FaultInjector()
    with injector.injecting(model, plan):
        first = model.predict(x)
        second = model.predict(x)
    np.testing.assert_array_equal(first, second)


def test_bitflip_output_semantics_changes_feature_map(model, x):
    conv = model.layers[0]
    generator = FaultGenerator(FaultSpec.bitflip(0.25), rows=8, cols=4, seed=3)
    plan = generator.generate(model, layers=[conv.name])
    clean = conv.forward(x)
    with FaultInjector().injecting(model, plan):
        faulty = conv.forward(x)
    changed = clean != faulty
    assert changed.any()
    # flips negate: wherever changed, the value must be the exact negation
    np.testing.assert_array_equal(faulty[changed], -clean[changed])


def test_weight_stuck_consistent_across_batches(model, rng):
    """Permanent faults corrupt identically for every input batch."""
    generator = FaultGenerator(
        FaultSpec.stuck_at(0.2, polarity=StuckPolarity.STUCK_AT_1,
                           semantics=Semantics.WEIGHT),
        rows=8, cols=4, seed=5)
    plan = generator.generate(model)
    dense = model.layers[-1]
    x1 = rng.standard_normal((2, 6, 6, 2)).astype(np.float32)
    injector = FaultInjector()
    with injector.injecting(model, plan):
        # the same stuck kernel bits must be used in both forward passes
        k1 = dense.kernel_fault_hook(
            np.sign(dense.params["kernel"]) + 0.0, dense)
        k2 = dense.kernel_fault_hook(
            np.sign(dense.params["kernel"]) + 0.0, dense)
    np.testing.assert_array_equal(k1, k2)
    assert (k1 == 1.0).sum() > (np.sign(dense.params["kernel"]) == 1.0).sum()


def test_per_layer_restriction(model, x):
    """Plans restricted to one layer must leave other layers untouched."""
    conv, dense = model.layers[0], model.layers[-1]
    generator = FaultGenerator(FaultSpec.bitflip(0.3), rows=8, cols=4, seed=2)
    plan = generator.generate(model, layers=[dense.name])
    with FaultInjector().injecting(model, plan):
        assert conv.output_fault_hook is None
        assert dense.output_fault_hook is not None


def test_product_semantics_flip_magnitude(model, x):
    """Product-level flips change each output by an even step of 2."""
    conv = model.layers[0]
    generator = FaultGenerator(
        FaultSpec.bitflip(0.1, semantics=Semantics.PRODUCT),
        rows=8, cols=4, seed=4)
    plan = generator.generate(model, layers=[conv.name])
    clean = conv.forward(x)
    with FaultInjector().injecting(model, plan):
        faulty = conv.forward(x)
    delta = faulty - clean
    assert delta.any()
    np.testing.assert_array_equal(delta % 2, 0)
    # a single product flip moves the accumulation by at most 2K
    assert np.abs(delta).max() <= 2 * conv.reduction_length()


def test_generator_report_layers(model):
    generator = FaultGenerator(FaultSpec.bitflip(0.1), rows=8, cols=4)
    report = generator.report(model)
    assert len(report) == 2
    assert {entry["layer"] for entry in report} == {
        model.layers[0].name, model.layers[-1].name}
    assert all(entry["parallel_xnor_ops"] == 32 for entry in report)
