"""Tests for QuantConv2D / QuantDense: arithmetic, hooks, geometry."""

import numpy as np

from repro import nn
from repro.binary import (MagnitudeAwareSign, QuantConv2D, QuantDense,
                          bitops)


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


def test_quantdense_matches_bitexact_kernel(rng):
    layer = build(QuantDense(8, input_quantizer="ste_sign"), (32,))
    x = rng.standard_normal((5, 32)).astype(np.float32)
    out = layer.forward(x)
    qx = np.where(x >= 0, 1.0, -1.0).astype(np.float32)
    qw = np.where(layer.params["kernel"] >= 0, 1.0, -1.0).astype(np.float32)
    np.testing.assert_array_equal(out, bitops.binary_matmul(qx, qw).astype(np.float32))


def test_quantconv_output_is_integer_valued(rng):
    layer = build(QuantConv2D(4, 3, input_quantizer="ste_sign"), (8, 8, 2))
    x = rng.standard_normal((2, 8, 8, 2)).astype(np.float32)
    out = layer.forward(x)
    np.testing.assert_array_equal(out, np.round(out))
    # popcount parity: output of a K-term bipolar sum has K's parity
    k = layer.reduction_length()
    assert ((out.astype(int) - k) % 2 == 0).all()


def test_quantconv_preactivation_bounds(rng):
    layer = build(QuantConv2D(4, 3, input_quantizer="ste_sign"), (8, 8, 2))
    x = rng.standard_normal((2, 8, 8, 2)).astype(np.float32)
    out = layer.forward(x)
    assert np.abs(out).max() <= layer.reduction_length()


def test_output_fault_hook_invoked(rng):
    layer = build(QuantConv2D(4, 3, input_quantizer="ste_sign"), (8, 8, 2))
    x = rng.standard_normal((1, 8, 8, 2)).astype(np.float32)
    clean = layer.forward(x)
    calls = []

    def hook(out, owner):
        calls.append(owner.name)
        return -out

    layer.output_fault_hook = hook
    faulty = layer.forward(x)
    np.testing.assert_array_equal(faulty, -clean)
    assert calls == [layer.name]
    layer.clear_fault_hooks()
    np.testing.assert_array_equal(layer.forward(x), clean)


def test_kernel_fault_hook_sees_binary_kernel(rng):
    layer = build(QuantDense(4), (16,))
    seen = {}

    def hook(qkernel, owner):
        seen["values"] = set(np.unique(qkernel))
        return qkernel

    layer.kernel_fault_hook = hook
    x = np.where(rng.standard_normal((2, 16)) >= 0, 1.0, -1.0).astype(np.float32)
    layer.forward(x)
    assert seen["values"] <= {-1.0, 1.0}


def test_magnitude_aware_kernel_hook_gets_sign_part(rng):
    layer = build(QuantDense(4, kernel_quantizer=MagnitudeAwareSign()), (16,))
    seen = {}

    def hook(qkernel, owner):
        seen["values"] = set(np.unique(qkernel))
        return qkernel

    layer.kernel_fault_hook = hook
    x = rng.standard_normal((2, 16)).astype(np.float32)
    layer.forward(x)
    # hook must see the crossbar-resident sign part, not the scaled weights
    assert seen["values"] <= {-1.0, 1.0}


def test_is_mapped_logic():
    assert QuantConv2D(4, 3, input_quantizer="ste_sign").is_mapped
    # first-layer style: real-valued input -> CMOS, not crossbar
    assert not QuantConv2D(4, 3).is_mapped
    assert not QuantConv2D(4, 3, kernel_quantizer=None).is_mapped


def test_geometry_counts():
    conv = build(QuantConv2D(8, 3, padding="same", input_quantizer="ste_sign"),
                 (16, 16, 4))
    assert conv.reduction_length() == 3 * 3 * 4
    assert conv.outputs_per_image() == 16 * 16 * 8
    assert conv.xnor_ops_per_image() == 36 * 16 * 16 * 8

    dense = build(QuantDense(10, input_quantizer="ste_sign"), (128,))
    assert dense.reduction_length() == 128
    assert dense.outputs_per_image() == 10
    assert dense.xnor_ops_per_image() == 1280


def test_param_binarization_counts():
    conv = build(QuantConv2D(8, 3), (8, 8, 2))
    assert conv.binary_param_count() == 3 * 3 * 2 * 8
    assert conv.full_precision_param_count() == 0
    fp_conv = build(QuantConv2D(8, 3, kernel_quantizer=None, use_bias=True), (8, 8, 2))
    assert fp_conv.binary_param_count() == 0
    assert fp_conv.full_precision_param_count() == 3 * 3 * 2 * 8 + 8


def test_quant_layers_train_with_ste(rng):
    """A fully binarized MLP must be trainable via latent weights.

    Majority vote over bipolar inputs is exactly representable by a single
    binary neuron, so optimization through the STE must recover it.
    """
    n = 300
    x = rng.choice([-1.0, 1.0], size=(n, 9)).astype(np.float32)
    y = (x.sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer=None, kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((9,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    history = trainer.fit(model, x, y, epochs=30, batch_size=32)
    assert history.train_accuracy[-1] > 0.95
