"""Shared-memory activation planes: registry lifecycle, worker adoption,
fingerprint checks, and leak-freedom on crashes/interrupts."""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import (CampaignEvaluator, FaultCampaign, FaultSpec,
                        SharedMemoryExecutor, SharedPlaneRegistry, build_jobs)
from repro.core import engine as engine_mod


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN with enough test data for 12 batches of 25."""
    rng = np.random.default_rng(0)
    n = 600
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=15, batch_size=32)
    return model, x[300:], y[300:]


def _attachable(name: str) -> bool:
    """Whether a shared-memory block with this name still exists."""
    from multiprocessing import shared_memory
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


# -- SharedPlaneRegistry unit behavior ------------------------------------

def test_registry_publish_attach_roundtrip():
    registry = SharedPlaneRegistry(fingerprint="fp")
    array = np.arange(12, dtype=np.float32).reshape(3, 4)
    descriptor = registry.publish(array, label="demo")
    attacher = SharedPlaneRegistry(fingerprint="fp")
    attached = attacher.attach(descriptor)
    assert np.array_equal(attached, array)
    assert not attached.flags.writeable
    attacher.release()
    registry.release()


def test_registry_attach_refuses_stale_fingerprint():
    registry = SharedPlaneRegistry(fingerprint="old-campaign")
    descriptor = registry.publish(np.zeros(4), label="stale")
    attacher = SharedPlaneRegistry(fingerprint="new-campaign")
    with pytest.raises(ValueError, match="stale shared-memory plane"):
        attacher.attach(descriptor)
    registry.release()


def test_registry_release_unlinks_and_is_idempotent():
    registry = SharedPlaneRegistry(fingerprint="fp")
    descriptor = registry.publish(np.ones(8))
    assert _attachable(descriptor["name"])
    registry.release()
    assert not _attachable(descriptor["name"])
    registry.release()  # second release is a no-op, not an error


def test_registry_finalizer_unlinks_on_gc():
    registry = SharedPlaneRegistry(fingerprint="fp")
    descriptor = registry.publish(np.ones(8))
    name = descriptor["name"]
    del registry  # CPython refcounting fires the finalizer immediately
    assert not _attachable(name)


# -- worker adoption of published planes ----------------------------------

@pytest.fixture
def worker_globals():
    """Snapshot/restore the worker-side module globals the initializer
    mutates, releasing any shared-memory attachments made in between."""
    saved_eval = engine_mod._WORKER_EVALUATOR
    saved_shm = list(engine_mod._WORKER_SHM)
    yield
    for registry in engine_mod._WORKER_SHM:
        if registry not in saved_shm:
            registry.release()
    engine_mod._WORKER_SHM[:] = saved_shm
    engine_mod._WORKER_EVALUATOR = saved_eval


def test_worker_init_adopts_prefix_planes(trained_setup, worker_globals):
    """A worker built from the payload evaluates jobs without ever
    recomputing the fault-free prefix from the test set."""
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=25)
    executor = SharedMemoryExecutor(n_jobs=2)
    payload, cleanup = executor._make_payload(evaluator)
    try:
        engine_mod._init_worker_shm(payload)
        worker = engine_mod._WORKER_EVALUATOR
        split = evaluator._baseline_split()
        assert (split, 0, 1) in worker._suffix_batches
        assert len(worker._suffix_batches[(split, 0, 1)]) == 12
        jobs = build_jobs(model, FaultSpec.bitflip, [0.3], 2, 0, 8, 4)
        for job in jobs:
            worker.run_job(job)
        worker.baseline()
        assert worker.prefix_computations == 0
        # worker results match the parent evaluator bit-for-bit
        assert worker.run_job(jobs[0]) == evaluator.run_job(jobs[0])
    finally:
        cleanup(False)


def test_worker_init_refuses_stale_planes(trained_setup, worker_globals):
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=25)
    executor = SharedMemoryExecutor(n_jobs=2)
    payload, cleanup = executor._make_payload(evaluator)
    try:
        tampered = dict(payload, planes_fingerprint="someone-elses-campaign")
        with pytest.raises(ValueError, match="stale shared-memory plane"):
            engine_mod._init_worker_shm(tampered)
    finally:
        cleanup(False)


def test_packed_rep_planes_published(trained_setup, worker_globals):
    """The packed backend publishes the split layer's packed-word planes
    and the worker's first lookup is already a hit."""
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=25,
                                  backend="packed")
    executor = SharedMemoryExecutor(n_jobs=2)
    payload, cleanup = executor._make_payload(evaluator)
    try:
        assert payload["prefix"]["reps"] is not None
        assert len(payload["prefix"]["reps"]) == 12
        engine_mod._init_worker_shm(payload)
        worker = engine_mod._WORKER_EVALUATOR
        jobs = build_jobs(model, FaultSpec.bitflip, [0.3], 1, 0, 8, 4)
        worker.run_job(jobs[0])
        stats = worker.input_cache_stats()
        assert stats["hits"] > 0 and stats["misses"] == 0
    finally:
        cleanup(False)


# -- executor lifecycle: caching, crashes, interrupts ---------------------

def _plane_names(executor) -> list[str]:
    return [shm.name for shm in executor._registry._owned]


def test_planes_cached_across_runs_and_released_on_close(trained_setup):
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                             executor="shared_memory", n_jobs=2)
    first = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2)
    assert first.meta["prefix_plane"]["reused"] is False
    assert first.meta["prefix_plane"]["batches"] == 12
    names = _plane_names(campaign._executor)
    assert names and all(_attachable(name) for name in names)
    second = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2)
    assert second.meta["prefix_plane"]["reused"] is True
    assert _plane_names(campaign._executor) == names  # same blocks, no copy
    assert np.array_equal(first.accuracies, second.accuracies)
    campaign.close()
    assert not any(_attachable(name) for name in names)
    campaign.close()  # idempotent


def _crash(job):  # module-level: must pickle by reference into workers
    raise RuntimeError("worker died")


def test_planes_released_when_worker_crashes(trained_setup, monkeypatch):
    """A worker failure aborts the run AND unlinks every plane."""
    model, x, y = trained_setup
    monkeypatch.setattr(engine_mod, "_run_worker_job", _crash)
    evaluator = CampaignEvaluator(model, x, y, batch_size=25)
    executor = SharedMemoryExecutor(n_jobs=2)
    jobs = build_jobs(model, FaultSpec.bitflip, [0.3, 0.4], 2, 0, 8, 4)
    with pytest.raises(RuntimeError, match="worker died"):
        executor.run(jobs, evaluator)
    assert executor._registry is None


def test_planes_released_on_keyboard_interrupt(trained_setup):
    """Abandoning the streaming iterator mid-run (the KeyboardInterrupt /
    generator-close path) must not leak psm_* blocks."""
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=25)
    executor = SharedMemoryExecutor(n_jobs=2)
    jobs = build_jobs(model, FaultSpec.bitflip, [0.3, 0.4], 3, 0, 8, 4)
    stream = executor.run_iter(jobs, evaluator)
    next(stream)
    names = _plane_names(executor)
    assert names
    stream.close()  # what an interrupt's stack unwind does to the generator
    assert executor._registry is None
    assert not any(_attachable(name) for name in names)


# -- derived prefix batches -----------------------------------------------

def test_sharded_batches_are_views_of_the_full_split(trained_setup):
    model, x, y = trained_setup
    evaluator = CampaignEvaluator(model, x, y, batch_size=25)
    full = evaluator._batches_for(0)
    shard = evaluator._batches_for(0, shard=1, n_shards=2)
    assert all(a is b for (a, _), (b, _) in zip(shard, full[1::2]))


def test_deeper_split_derived_from_cached_base_is_identical(trained_setup):
    model, x, y = trained_setup
    warm = CampaignEvaluator(model, x, y, batch_size=25)
    warm._batches_for(0)  # e.g. adopted planes at the baseline split
    derived = warm._batches_for(3)
    cold = CampaignEvaluator(model, x, y, batch_size=25)
    scratch = cold._batches_for(3)
    assert len(derived) == len(scratch)
    for (a, la), (b, lb) in zip(derived, scratch):
        assert np.array_equal(a, b)
        assert np.array_equal(la, lb)
