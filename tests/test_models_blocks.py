"""Gradient and topology tests for the composite zoo blocks."""

import numpy as np
import pytest

from repro.models.blocks import (DenseBinaryBlock, ImprovementBlock,
                                 RealToBinaryBlock, ResidualBinaryBlock)

from gradcheck import numerical_gradient


def build(block, shape, seed=0):
    block.build(shape, np.random.default_rng(seed))
    return block


def check_input_gradient(block, x, rng, rtol=5e-2, atol=2e-3):
    """Numerical check of the composite backward pass w.r.t. the input.

    Blocks are built with ``input_quantizer=None`` for this check: with a
    fixed (binarized) kernel the branch is then smooth in x, so the exact
    composite gradient (shortcut + conv + batch-norm) is verifiable by
    finite differences — covering the residual/concat/improve topologies.
    """
    probe = rng.standard_normal(block.forward(x, training=True).shape)

    def loss():
        return float((block.forward(x, training=True) * probe).sum())

    block.forward(x, training=True)
    dx = block.backward(probe)
    numeric = numerical_gradient(loss, x, eps=1e-4)
    np.testing.assert_allclose(dx, numeric, rtol=rtol, atol=atol)


def test_residual_shapes_same_channels(rng):
    block = build(ResidualBinaryBlock(4, name="res"), (6, 6, 4))
    x = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == (2, 6, 6, 4)
    assert block.compute_output_shape((6, 6, 4)) == (6, 6, 4)


def test_residual_zero_pad_shortcut(rng):
    block = build(ResidualBinaryBlock(6, name="res_grow"), (6, 6, 4))
    x = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == (2, 6, 6, 6)


def test_residual_rejects_channel_shrink():
    block = ResidualBinaryBlock(2, name="res_bad")
    with pytest.raises(ValueError):
        block.build((6, 6, 4), np.random.default_rng(0))


def test_residual_identity_contribution(rng):
    """With an untouched branch, the output must contain x verbatim."""
    block = build(ResidualBinaryBlock(4, name="res_id"), (6, 6, 4))
    x = rng.standard_normal((1, 6, 6, 4)).astype(np.float32)
    out = block.forward(x)
    branch = block.bn.forward(block.conv.forward(x))
    np.testing.assert_allclose(out - branch, x, rtol=1e-5)


def test_dense_block_concatenates(rng):
    block = build(DenseBinaryBlock(3, name="dense"), (6, 6, 4))
    x = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == (2, 6, 6, 7)
    np.testing.assert_array_equal(out[..., :4], x)
    assert block.compute_output_shape((6, 6, 4)) == (6, 6, 7)


def test_improvement_block_preserves_shape(rng):
    block = build(ImprovementBlock(2, name="improve"), (6, 6, 4))
    x = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == x.shape
    # only the newest `delta` channels change
    np.testing.assert_array_equal(out[..., :2], x[..., :2])
    assert not np.array_equal(out[..., 2:], x[..., 2:])


def test_improvement_block_needs_enough_channels():
    block = ImprovementBlock(8, name="improve_bad")
    with pytest.raises(ValueError):
        block.build((6, 6, 4), np.random.default_rng(0))


def test_real_to_binary_has_scale_params(rng):
    block = build(RealToBinaryBlock(4, name="r2b"), (6, 6, 4))
    assert "scale" in block.scale.params
    x = rng.standard_normal((2, 6, 6, 4)).astype(np.float32)
    assert block.forward(x).shape == (2, 6, 6, 4)


def test_sub_layers_expose_parameters():
    res = build(ResidualBinaryBlock(4, name="res_params"), (6, 6, 4))
    assert res.num_params() > 0
    names = [layer.name for layer in res.sub_layers()]
    assert f"{res.name}_conv" in names
    assert f"{res.name}_bn" in names
    r2b = build(RealToBinaryBlock(4, name="r2b_params"), (6, 6, 4))
    assert len(r2b.sub_layers()) == 3


@pytest.mark.parametrize("block_factory,channels", [
    (lambda: ResidualBinaryBlock(3, input_quantizer=None, name="g_res"), 3),
    (lambda: DenseBinaryBlock(2, input_quantizer=None, name="g_dense"), 3),
    (lambda: ImprovementBlock(2, input_quantizer=None, name="g_improve"), 3),
    (lambda: RealToBinaryBlock(3, input_quantizer=None, name="g_r2b"), 3),
])
def test_block_input_gradients(rng, block_factory, channels):
    block = build(block_factory(), (4, 4, channels))
    x = rng.standard_normal((2, 4, 4, channels))
    check_input_gradient(block, x, rng)
