"""Unit tests for the low-level tensor ops (im2col conv, pooling)."""

import numpy as np
import pytest

from repro.nn import ops


def conv2d_reference(x, kernel, stride=1, padding="valid"):
    """Direct-loop convolution used as an oracle for the im2col path."""
    kh, kw, c_in, c_out = kernel.shape
    n, h, w, _ = x.shape
    if padding == "same":
        ph, pw = ops.same_padding(h, kh, stride), ops.same_padding(w, kw, stride)
        x = np.pad(x, ((0, 0), ph, pw, (0, 0)))
        h, w = x.shape[1], x.shape[2]
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, oh, ow, c_out), dtype=np.float64)
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[b, i * stride:i * stride + kh, j * stride:j * stride + kw, :]
                for f in range(c_out):
                    out[b, i, j, f] = (patch * kernel[:, :, :, f]).sum()
    return out


@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("padding", ["valid", "same"])
@pytest.mark.parametrize("kernel_size", [1, 3, 5])
def test_conv2d_matches_reference(rng, stride, padding, kernel_size):
    x = rng.standard_normal((2, 9, 9, 3)).astype(np.float32)
    kernel = rng.standard_normal((kernel_size, kernel_size, 3, 4)).astype(np.float32)
    got = ops.conv2d(x, kernel, stride, padding)
    want = conv2d_reference(x, kernel, stride, padding)
    np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


def test_conv_output_size():
    assert ops.conv_output_size(28, 5, 1, 0) == 24
    assert ops.conv_output_size(28, 5, 1, 4) == 28
    assert ops.conv_output_size(32, 3, 2, 2) == 16


def test_same_padding_keeps_size_stride1(rng):
    x = rng.standard_normal((1, 11, 7, 2)).astype(np.float32)
    kernel = rng.standard_normal((3, 3, 2, 5)).astype(np.float32)
    out = ops.conv2d(x, kernel, stride=1, padding="same")
    assert out.shape == (1, 11, 7, 5)


def test_same_padding_ceil_division(rng):
    x = rng.standard_normal((1, 11, 11, 1)).astype(np.float32)
    kernel = rng.standard_normal((3, 3, 1, 1)).astype(np.float32)
    out = ops.conv2d(x, kernel, stride=2, padding="same")
    assert out.shape == (1, 6, 6, 1)


def test_im2col_col2im_adjoint(rng):
    """<im2col(x), y> == <x, col2im(y)> — the pair must be exact adjoints
    for conv backward to be a true gradient."""
    x = rng.standard_normal((2, 6, 6, 3)).astype(np.float64)
    cols, (oh, ow) = ops.im2col(x, 3, 3, stride=1, padding="valid")
    y = rng.standard_normal(cols.shape)
    lhs = float((cols * y).sum())
    xback = ops.col2im(y, x.shape, 3, 3, stride=1, padding="valid")
    rhs = float((x * xback).sum())
    assert abs(lhs - rhs) < 1e-8


def test_conv2d_backward_numeric(rng):
    from gradcheck import numerical_gradient

    x = rng.standard_normal((2, 5, 5, 2)).astype(np.float64)
    kernel = rng.standard_normal((3, 3, 2, 3)).astype(np.float64)
    probe = rng.standard_normal((2, 3, 3, 3))

    def loss():
        return float((ops.conv2d(x, kernel) * probe).sum())

    dx, dk = ops.conv2d_backward(probe, x, kernel)
    np.testing.assert_allclose(dx, numerical_gradient(loss, x), rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(dk, numerical_gradient(loss, kernel), rtol=1e-4, atol=1e-6)


def test_maxpool_forward_and_mask(rng):
    x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])  # (1,2,2,1)
    out, mask = ops.maxpool2d(x, 2)
    assert out.shape == (1, 1, 1, 1)
    assert out[0, 0, 0, 0] == 4.0
    assert mask.sum() == 1
    assert mask[0, 1, 1, 0] == 1


def test_maxpool_tie_breaking_single_winner():
    x = np.ones((1, 4, 4, 2))
    out, mask = ops.maxpool2d(x, 2)
    assert out.shape == (1, 2, 2, 2)
    # exactly one winner per window per channel even with all-equal values
    assert mask.sum() == 2 * 2 * 2


def test_maxpool_backward_routes_gradient(rng):
    x = rng.standard_normal((2, 4, 4, 3))
    out, mask = ops.maxpool2d(x, 2)
    dout = np.ones_like(out)
    dx = ops.maxpool2d_backward(dout, mask, 2)
    assert dx.shape == x.shape
    assert dx.sum() == out.size  # each window routes exactly its gradient


def test_maxpool_rejects_nondivisible():
    with pytest.raises(ValueError):
        ops.maxpool2d(np.zeros((1, 5, 4, 1)), 2)


def test_avgpool_roundtrip(rng):
    x = rng.standard_normal((2, 4, 4, 3))
    out = ops.avgpool2d(x, 2)
    np.testing.assert_allclose(out[0, 0, 0], x[0, :2, :2].mean(axis=(0, 1)))
    dx = ops.avgpool2d_backward(np.ones_like(out), 2)
    np.testing.assert_allclose(dx, np.full_like(x, 0.25))
