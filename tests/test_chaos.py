"""Chaos suite: every engine recovery path converges to the serial
ground truth.

The chaos executors (repro.testing.chaos) SIGKILL workers, poison jobs,
break initializers, and stall cells at chosen grid coordinates; these
tests assert the campaigns still complete — bit-identical to the serial
executor wherever a cell completes at all — and that the supervision
layer reports what happened through typed events and result meta.
"""

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import (FaultCampaign, FaultSpec, RetryPolicy,
                        SupervisorGaveUp)
from repro.testing import (ChaosMultiprocessingExecutor,
                           ChaosSharedMemoryExecutor, ChaosSpec)


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN with enough test data for 12 batches of 25."""
    rng = np.random.default_rng(0)
    n = 600
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=15, batch_size=32)
    return model, x[300:], y[300:]


KWARGS = dict(xs=[0.0, 0.3, 0.45], repeats=2, seed=7)


@pytest.fixture(scope="module")
def reference(trained_setup):
    """Serial ground truth for the 3x2 grid every chaos run must match."""
    model, x, y = trained_setup
    return FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25).run(
        FaultSpec.bitflip, **KWARGS)


def _policy(**overrides):
    """Fast-converging test policy (no backoff, short watchdog)."""
    kwargs = dict(max_attempts=3, backoff=0.0, stall_timeout=1.0,
                  max_rebuilds=1)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


def _campaign(trained_setup, executor):
    model, x, y = trained_setup
    return FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                         executor=executor)


def _attachable(name: str) -> bool:
    from multiprocessing import shared_memory
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


# -- acceptance: SIGKILL mid-grid, no manual resume ------------------------

def test_sigkill_mid_grid_completes_bit_identical(trained_setup, reference,
                                                  tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path), kill_job=(1, 0))
    executor = ChaosMultiprocessingExecutor(n_jobs=2, policy=_policy(),
                                            chaos=chaos)
    result = _campaign(trained_setup, executor).run(FaultSpec.bitflip,
                                                    **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    assert executor.resilience["workers_lost"] >= 1
    assert result.meta["resilience"]["workers_lost"] >= 1
    assert result.meta["resilience"]["quarantined"] == []


def test_sigkill_under_shared_memory_releases_planes(trained_setup,
                                                     reference, tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path), kill_job=(2, 1))
    executor = ChaosSharedMemoryExecutor(n_jobs=2, policy=_policy(),
                                         chaos=chaos)
    campaign = _campaign(trained_setup, executor)
    result = campaign.run(FaultSpec.bitflip, **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    assert executor.resilience["workers_lost"] >= 1
    names = [shm.name for shm in executor._registry._owned]
    assert names and all(_attachable(name) for name in names)
    campaign.close()
    assert not any(_attachable(name) for name in names)


# -- acceptance: poison job quarantined, not fatal -------------------------

def test_poison_job_quarantined_with_typed_events(trained_setup, reference,
                                                  tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path), poison_job=(2, 0))
    executor = ChaosMultiprocessingExecutor(n_jobs=2, policy=_policy(),
                                            chaos=chaos)
    events = []
    executor.on_event = events.append
    result = _campaign(trained_setup, executor).run(FaultSpec.bitflip,
                                                    **KWARGS)
    assert np.isnan(result.accuracies[2, 0])
    mask = ~np.isnan(result.accuracies)
    np.testing.assert_array_equal(result.accuracies[mask],
                                  reference.accuracies[mask])
    assert result.meta["resilience"]["quarantined"] == [(2, 0)]
    kinds = [type(e).__name__ for e in events]
    assert kinds.count("JobRetried") == 2  # attempts 1 and 2 failed
    assert "JobQuarantined" in kinds


def test_transient_failure_retried_without_quarantine(trained_setup,
                                                      reference, tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path), fail_job=(1, 1))
    executor = ChaosMultiprocessingExecutor(n_jobs=2, policy=_policy(),
                                            chaos=chaos)
    result = _campaign(trained_setup, executor).run(FaultSpec.bitflip,
                                                    **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    assert executor.resilience["retries"] == 1
    assert executor.resilience["quarantined"] == []


# -- per-job wall-clock timeouts ------------------------------------------

def test_stuck_job_times_out_and_retries(trained_setup, reference,
                                         tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path), slow_job=(0, 1),
                      slow_seconds=30.0)
    executor = ChaosMultiprocessingExecutor(
        n_jobs=2, policy=_policy(job_timeout=1.0, stall_timeout=5.0),
        chaos=chaos)
    result = _campaign(trained_setup, executor).run(FaultSpec.bitflip,
                                                    **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    assert executor.resilience["timeouts"] >= 1
    assert executor.resilience["quarantined"] == []


# -- the degradation ladder -----------------------------------------------

def test_broken_shm_initializer_degrades_to_multiprocessing(
        trained_setup, reference, tmp_path):
    chaos = ChaosSpec(scratch=str(tmp_path),
                      fail_init_modes=("shared_memory",))
    executor = ChaosSharedMemoryExecutor(n_jobs=2, policy=_policy(),
                                         chaos=chaos)
    result = _campaign(trained_setup, executor).run(FaultSpec.bitflip,
                                                    **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    assert result.meta["resilience"]["degraded"] == \
        ["shared_memory->multiprocessing"]
    assert executor._registry is None  # the failed rung's planes released


def test_unlinked_plane_mid_run_degrades_and_completes(trained_setup,
                                                       reference, tmp_path):
    """Someone unlinks a shared plane mid-run; the killed worker's
    respawn can't re-attach, the rung gives up, the run still
    converges.  The kill targets the last cell: it is dispatched only
    after this test resumes the stream, i.e. strictly post-unlink."""
    chaos = ChaosSpec(scratch=str(tmp_path), kill_job=(2, 1))
    executor = ChaosSharedMemoryExecutor(n_jobs=2, policy=_policy(),
                                         chaos=chaos)
    campaign = _campaign(trained_setup, executor)
    evaluator = campaign._evaluator
    from repro.core import build_jobs
    jobs = build_jobs(campaign.model, FaultSpec.bitflip, KWARGS["xs"],
                      KWARGS["repeats"], KWARGS["seed"], 8, 4)
    stream = executor.run_iter(jobs, evaluator)
    results = [next(stream)]
    # rip a plane out from under the campaign (not via the registry)
    executor._registry._owned[0].unlink()
    results.extend(stream)
    assert len(results) == len(jobs)
    by_coord = {(i, j): a for i, j, a in results}
    for i in range(3):
        for j in range(2):
            assert by_coord[(i, j)] == reference.accuracies[i, j]
    assert any(d.startswith("shared_memory->")
               for d in executor.resilience["degraded"])


def test_no_degrade_raises_supervisor_gave_up(trained_setup, tmp_path):
    import os

    chaos = ChaosSpec(scratch=str(tmp_path),
                      fail_init_modes=("shared_memory",))
    executor = ChaosSharedMemoryExecutor(
        n_jobs=2, policy=_policy(degrade=False), chaos=chaos)
    campaign = _campaign(trained_setup, executor)
    # compare against pre-existing blocks: other processes own /dev/shm
    # entries too, so only *new* leftovers count as leaks
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None
    with pytest.raises(SupervisorGaveUp):
        campaign.run(FaultSpec.bitflip, **KWARGS)
    assert executor._registry is None  # no leak on the failure path
    if before is not None:
        assert set(os.listdir(shm_dir)) - before == set()
    # nothing stale survives the crash: the next run republishes planes
    # from scratch rather than reusing the dead run's fingerprint
    payload, cleanup = executor._make_payload(campaign._evaluator)
    try:
        assert executor.prefix_plane["reused"] is False
    finally:
        cleanup(False)


# -- journaled chaos runs -------------------------------------------------

def test_journaled_chaos_run_records_events_and_resumes(trained_setup,
                                                        reference, tmp_path):
    import json

    from repro.testing import truncate_last_line

    chaos = ChaosSpec(scratch=str(tmp_path / "scratch"), kill_job=(0, 0))
    (tmp_path / "scratch").mkdir()
    journal = tmp_path / "sweep.jsonl"
    executor = ChaosMultiprocessingExecutor(n_jobs=2, policy=_policy(),
                                            chaos=chaos)
    model, x, y = trained_setup
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25,
                             executor=executor)
    result = campaign.run(FaultSpec.bitflip, journal=journal, **KWARGS)
    np.testing.assert_array_equal(result.accuracies, reference.accuracies)
    lines = [json.loads(line) for line in journal.read_text().splitlines()]
    events = [line for line in lines if line.get("kind") == "event"]
    assert any(line["event"] == "WorkerLost" for line in events)

    # tear the journal's tail (kill -9 mid-append) and resume serially
    truncate_last_line(journal)
    resumed = FaultCampaign(model, x, y, rows=8, cols=4, batch_size=25).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    assert resumed.meta["resumed_cells"] == 6 - 1
    np.testing.assert_array_equal(resumed.accuracies, reference.accuracies)


# -- request/CLI knob plumbing --------------------------------------------

def test_cli_flags_arm_the_retry_policy():
    from repro.api import RunRequest
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["run", "sweep", "--retries", "1", "--job-timeout", "2.5",
         "--no-degrade"])
    assert (args.retries, args.job_timeout, args.no_degrade) == \
        (1, 2.5, True)
    request = RunRequest("sweep", retries=args.retries,
                         job_timeout=args.job_timeout,
                         degrade=not args.no_degrade)
    policy = request.retry_policy()
    assert policy.max_attempts == 2
    assert policy.job_timeout == 2.5
    assert policy.degrade is False
    assert request.engine()["retries"] == 1


def test_request_rejects_bad_resilience_knobs():
    from repro.api import ApiError, RunRequest

    with pytest.raises(ApiError, match="retries"):
        RunRequest("sweep", retries=-1)
    with pytest.raises(ApiError, match="job_timeout"):
        RunRequest("sweep", job_timeout=0)
