"""Tests for the repro.api typed entry point.

Covers the registry contracts (duplicate names, unknown params, quick
overrides), request validation, the streaming event contract
(CellDone/CheckpointDone/RunWarning ordering), journal/resume through
``RunRequest``, bit-identity of registry entries against the legacy
free-function drivers, and the once-per-process deprecation warnings on
those legacy entry points.
"""

import json
import warnings

import numpy as np
import pytest

from repro import api
from repro._compat import reset_legacy_warnings
from repro.api import (ApiError, CellDone, CheckpointDone, Experiment,
                       ExperimentRegistry, Param, RunFinished, RunRequest,
                       RunStarted, RunWarning)

#: tiny-but-real sweep configuration shared by the heavier tests
TINY = dict(rates=[0.0, 0.3], repeats=2, images=60, rows=8, cols=4)


# -- registry -------------------------------------------------------------

def _entry(name="demo", **kwargs):
    return Experiment(name=name, func=lambda ctx: ctx.report(), **kwargs)


def test_duplicate_registration_refused():
    registry = ExperimentRegistry()
    registry.register(_entry("demo"))
    with pytest.raises(ApiError, match="already registered"):
        registry.register(_entry("demo"))


def test_alias_collision_refused():
    registry = ExperimentRegistry()
    registry.register(_entry("demo", aliases=("d",)))
    with pytest.raises(ApiError, match="already registered"):
        registry.register(_entry("d"))
    with pytest.raises(ApiError, match="already registered"):
        registry.register(_entry("other", aliases=("demo",)))


def test_alias_resolves_to_canonical_entry():
    assert api.describe("fig5")["name"] == "fig5a"
    assert "fig5" not in api.experiment_names()  # aliases are not listed


def test_unregister_removes_aliases():
    registry = ExperimentRegistry()
    registry.register(_entry("demo", aliases=("d",)))
    registry.unregister("demo")
    with pytest.raises(ApiError, match="unknown experiment"):
        registry.get("d")


def test_unregister_resolves_aliases_like_get():
    registry = ExperimentRegistry()
    registry.register(_entry("demo", aliases=("d",)))
    registry.unregister("d")  # by alias, symmetric with get()
    with pytest.raises(ApiError, match="unknown experiment"):
        registry.get("demo")


def test_quick_overrides_must_be_declared_params():
    with pytest.raises(ApiError, match="quick overrides"):
        _entry("demo", params=(Param("a", "int", 1),), quick={"b": 2})


def test_unknown_experiment_raises():
    with pytest.raises(ApiError, match="unknown experiment"):
        api.submit(RunRequest("not-an-experiment"))


def test_unknown_param_raises():
    with pytest.raises(ApiError, match="unknown param"):
        api.submit(RunRequest("sweep", params={"bogus": 1}))


def test_param_coercion_and_choices():
    floats = Param("rates", "floats", [0.0])
    assert floats.parse("0.0,0.25,1") == [0.0, 0.25, 1.0]
    assert floats.parse((0, 1)) == [0.0, 1.0]
    assert floats.format([0.0, 0.25]) == "0.0,0.25"
    flag = Param("accuracy", "bool", True)
    assert flag.parse("true") is True and flag.parse("0") is False
    with pytest.raises(ApiError, match="cannot read"):
        flag.parse("maybe")
    fault = Param("fault", "str", "bitflip", choices=("bitflip", "stuck_at"))
    with pytest.raises(ApiError, match="not one of"):
        fault.parse("meltdown")
    with pytest.raises(ApiError, match="unknown kind"):
        Param("x", "complex")


def test_resolve_applies_defaults_quick_then_user():
    entry = _entry("demo", params=(Param("a", "int", 1),
                                   Param("b", "int", 2)),
                   quick={"a": 10})
    assert entry.resolve({}) == {"a": 1, "b": 2}
    assert entry.resolve({}, quick=True) == {"a": 10, "b": 2}
    assert entry.resolve({"a": "7"}, quick=True) == {"a": 7, "b": 2}


# -- request validation ---------------------------------------------------

@pytest.mark.parametrize("kwargs,match", [
    (dict(executor="gpu"), "unknown executor"),
    (dict(backend="int8"), "unknown backend"),
    (dict(n_jobs=-1), "n_jobs"),
    (dict(cache_bytes=-5), "cache_bytes"),
    (dict(resume=True), "--journal"),
])
def test_request_validation(kwargs, match):
    with pytest.raises(ApiError, match=match):
        RunRequest("sweep", **kwargs)


def test_journal_refused_for_unsupported_experiment(tmp_path):
    with pytest.raises(ApiError, match="does not support journal"):
        api.submit(RunRequest("table1", journal=str(tmp_path / "t.jsonl")))


# -- events + handle ------------------------------------------------------

def test_sweep_event_stream_contract():
    events = []
    handle = api.submit(RunRequest("sweep", params=TINY))
    handle.subscribe(events.append)
    report = handle.run()
    assert isinstance(events[0], RunStarted)
    assert isinstance(events[-1], RunFinished)
    assert events[-1].report is report
    cells = [e for e in events if isinstance(e, CellDone)]
    assert len(cells) == len(TINY["rates"]) * TINY["repeats"]
    assert {c.series for c in cells} == {"bitflip"}
    assert cells[-1].done == cells[-1].total == len(cells)
    assert report.meta["events"]["CellDone"] == len(cells)
    # a second run() returns the stored report without re-running
    assert handle.run() is report


def test_events_iterator_drives_the_run():
    handle = api.submit(RunRequest("sweep", params=TINY))
    names = [type(event).__name__ for event in handle.events()]
    assert names[0] == "RunStarted" and names[-1] == "RunFinished"
    assert names.count("CellDone") == 4
    assert handle.report is not None


def test_events_iterator_reraises_failures():
    api.REGISTRY.register(Experiment(
        name="boom-iter", func=lambda ctx: (_ for _ in ()).throw(
            RuntimeError("kaput"))))
    try:
        handle = api.submit(RunRequest("boom-iter"))
        with pytest.raises(RuntimeError, match="kaput"):
            list(handle.events())
        assert handle.state == "failed"
    finally:
        api.REGISTRY.unregister("boom-iter")


def test_scenario_emits_checkpoint_events():
    events = []
    report = api.run("fresh-device", quick=True, on_event=events.append)
    checkpoints = [e for e in events if isinstance(e, CheckpointDone)]
    assert [c.index for c in checkpoints] == [0, 1, 2]
    assert checkpoints[0].total == 3
    assert report.get_series("nominal").xs == [0.0, 1e6, 5e6]


def test_pool_fallback_emits_warning_event():
    """A 1-cell grid on a 2-worker pool (1 batch, so unshardable) must
    announce its serial fallback through the typed event stream."""
    events = []
    api.run("sweep",
            params=dict(rates=[0.3], repeats=1, images=60, rows=8, cols=4),
            executor="multiprocessing", n_jobs=2, on_event=events.append)
    warnings_seen = [e for e in events if isinstance(e, RunWarning)]
    assert any("serial" in w.message for w in warnings_seen)


def test_report_json_roundtrip(tmp_path):
    report = api.run("sweep", params=TINY)
    path = report.save(tmp_path / "report.json")
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "sweep"
    assert payload["params"]["rates"] == [0.0, 0.3]
    assert payload["series"][0]["label"] == "bitflip"
    assert len(payload["series"][0]["mean"]) == 2
    # each series serializes its own fault-free baseline
    assert payload["series"][0]["baseline"] == payload["baseline"]
    assert report.artifacts["report"] == str(path)


def test_report_save_is_atomic(tmp_path, monkeypatch):
    """``repro run --out`` can never leave a torn half-report: a crash
    mid-write preserves the previous complete file (regression for the
    direct ``path.write_text`` save, which truncated before writing)."""
    import repro.api.report as report_module

    report = api.run("sweep", params=TINY)
    target = tmp_path / "report.json"
    target.write_text('{"old": "complete"}')

    real_replace = report_module.os.replace

    def torn_replace(src, dst):
        raise OSError("simulated crash between write and publish")

    monkeypatch.setattr(report_module.os, "replace", torn_replace)
    with pytest.raises(OSError, match="simulated crash"):
        report.save(target)
    # the old file is untouched and the temp sibling was cleaned up
    assert json.loads(target.read_text()) == {"old": "complete"}
    assert list(tmp_path.iterdir()) == [target]

    monkeypatch.setattr(report_module.os, "replace", real_replace)
    path = report.save(target)
    assert json.loads(path.read_text())["experiment"] == "sweep"
    assert list(tmp_path.iterdir()) == [target]


# -- bit-identity against the legacy drivers ------------------------------

def _legacy_lenet_test(images):
    from repro.experiments import get_mnist, trained_lenet
    model = trained_lenet()
    _, test = get_mnist()
    return model, test.subset(images)


def test_fig4a_registry_matches_legacy_driver():
    from repro.experiments import fig4
    model, test = _legacy_lenet_test(TINY["images"])
    legacy = fig4.run_fig4a.__wrapped__(
        model, test, rates=tuple(TINY["rates"]), repeats=TINY["repeats"],
        rows=TINY["rows"], cols=TINY["cols"])
    report = api.run("fig4a", params=TINY)
    assert set(report.raw) == set(legacy)
    for label, result in legacy.items():
        np.testing.assert_array_equal(report.raw[label].accuracies,
                                      result.accuracies)
        assert report.raw[label].baseline == result.baseline


def test_fig5a_registry_matches_legacy_driver():
    from repro.experiments import fig5, get_imagenet
    _, test = get_imagenet()
    legacy = fig5.run_fig5a.__wrapped__(
        models=["binary_alexnet"], rates=(0.0, 0.2), repeats=1,
        test=test.subset(60))
    report = api.run("fig5a", params=dict(models=["binary_alexnet"],
                                          rates=[0.0, 0.2], repeats=1,
                                          images=60))
    np.testing.assert_array_equal(
        report.raw["binary_alexnet"].accuracies,
        legacy["binary_alexnet"].accuracies)


def test_end_of_life_registry_matches_legacy_driver():
    from repro.scenarios import run_scenario
    model, test = _legacy_lenet_test(60)
    legacy = run_scenario.__wrapped__("end-of-life", model, test.x, test.y,
                                      repeats=1, rows=8, cols=4)
    report = api.run("end-of-life",
                     params=dict(repeats=1, images=60, rows=8, cols=4))
    np.testing.assert_array_equal(report.raw.accuracies, legacy.accuracies)
    assert report.baseline == legacy.baseline


@pytest.mark.parametrize("executor,backend", [
    ("serial", "packed"),
    ("shared_memory", "float"),
    ("shared_memory", "packed"),
])
def test_sweep_bit_identical_across_executors_and_backends(executor,
                                                           backend):
    reference = api.run("sweep", params=TINY)
    result = api.run("sweep", params=TINY, executor=executor, n_jobs=2,
                     backend=backend)
    np.testing.assert_array_equal(result.raw.accuracies,
                                  reference.raw.accuracies)
    assert result.baseline == reference.baseline


@pytest.mark.parametrize("executor,backend", [
    ("serial", "packed"),
    ("shared_memory", "packed"),
])
def test_end_of_life_bit_identical_across_executors_and_backends(
        executor, backend):
    params = dict(repeats=1, images=60, rows=8, cols=4)
    reference = api.run("end-of-life", params=params)
    result = api.run("end-of-life", params=params, executor=executor,
                     n_jobs=2, backend=backend)
    np.testing.assert_array_equal(result.raw.accuracies,
                                  reference.raw.accuracies)
    assert result.baseline == reference.baseline


# -- journal / resume through RunRequest ----------------------------------

def test_sweep_journal_resume_through_request(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    first = api.run("sweep", params=TINY, journal=str(journal))
    assert first.meta["resumed_cells"] == 0
    assert first.artifacts["journal"] == str(journal)

    # an existing journal without resume=True is refused before running
    with pytest.raises(ApiError, match="already exists"):
        api.run("sweep", params=TINY, journal=str(journal))

    resumed = api.run("sweep", params=TINY, journal=str(journal),
                      resume=True)
    assert resumed.meta["resumed_cells"] == 4
    np.testing.assert_array_equal(resumed.raw.accuracies,
                                  first.raw.accuracies)


def test_fig4a_derives_one_journal_per_series(tmp_path):
    journal = tmp_path / "fig4a.jsonl"
    report = api.run("fig4a", params=TINY, journal=str(journal))
    series = set(report.raw)
    derived = {path.name for path in tmp_path.glob("fig4a.*.jsonl")}
    assert derived == {f"fig4a.{label}.jsonl" for label in series}

    resumed = api.run("fig4a", params=TINY, journal=str(journal),
                      resume=True)
    cells = len(TINY["rates"]) * TINY["repeats"] * len(series)
    assert resumed.meta["resumed_cells"] == cells
    for label in series:
        np.testing.assert_array_equal(resumed.raw[label].accuracies,
                                      report.raw[label].accuracies)


def test_scenario_journal_resume_through_request(tmp_path):
    journal = tmp_path / "eol.jsonl"
    params = dict(repeats=1, images=60, rows=8, cols=4)
    first = api.run("end-of-life", params=params, journal=str(journal))
    resumed = api.run("end-of-life", params=params, journal=str(journal),
                      resume=True)
    assert resumed.meta["resumed_cells"] == len(first.raw.grid.cells)
    np.testing.assert_array_equal(resumed.raw.accuracies,
                                  first.raw.accuracies)


# -- legacy deprecation pins ----------------------------------------------

def test_legacy_fig4a_warns_once_per_process():
    from repro.experiments import fig4
    model, test = _legacy_lenet_test(40)
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning, match="run_fig4a"):
        fig4.run_fig4a(model, test, rates=(0.0,), repeats=1,
                       rows=8, cols=4, layer_names=("conv1",))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fig4.run_fig4a(model, test, rates=(0.0,), repeats=1,
                       rows=8, cols=4, layer_names=("conv1",))
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_legacy_run_scenario_warns():
    from repro.scenarios import run_scenario
    model, test = _legacy_lenet_test(40)
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning, match="run_scenario"):
        run_scenario("fresh-device", model, test.x, test.y, repeats=1,
                     rows=8, cols=4)


def test_legacy_run_fig5a_warns():
    from repro.experiments import fig5, get_imagenet
    _, test = get_imagenet()
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning, match="run_fig5a"):
        fig5.run_fig5a(models=["binary_alexnet"], rates=(0.0,), repeats=1,
                       test=test.subset(40))


def test_registry_path_does_not_warn():
    """The registry calls the identical implementation *without* the
    legacy warning — the supported path must stay quiet."""
    reset_legacy_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        api.run("fig4a", params=dict(rates=[0.0], repeats=1, images=40,
                                     rows=8, cols=4))
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
