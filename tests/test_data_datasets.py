"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset


@pytest.fixture
def dataset(rng):
    x = rng.standard_normal((40, 8, 8, 1)).astype(np.float32)
    y = np.arange(40) % 4
    return Dataset(x, y, class_names=["a", "b", "c", "d"])


def test_length_and_classes(dataset):
    assert len(dataset) == 40
    assert dataset.num_classes == 4


def test_mismatched_lengths_rejected(rng):
    with pytest.raises(ValueError):
        Dataset(rng.standard_normal((5, 2)), np.zeros(4, dtype=int))


def test_subset_first_n(dataset):
    sub = dataset.subset(10)
    assert len(sub) == 10
    np.testing.assert_array_equal(sub.x, dataset.x[:10])


def test_subset_random_seeded(dataset):
    a = dataset.subset(10, seed=1)
    b = dataset.subset(10, seed=1)
    np.testing.assert_array_equal(a.y, b.y)
    c = dataset.subset(10, seed=2)
    assert not np.array_equal(a.y, c.y)


def test_subset_larger_than_set(dataset):
    assert dataset.subset(1000) is dataset


def test_split_partitions(dataset):
    left, right = dataset.split(0.75, seed=0)
    assert len(left) == 30
    assert len(right) == 10
    with pytest.raises(ValueError):
        dataset.split(1.5)


def test_batches_cover_everything(dataset):
    seen = 0
    for xb, yb in dataset.batches(7):
        assert len(xb) == len(yb)
        seen += len(xb)
    assert seen == len(dataset)


def test_batches_shuffled_with_seed(dataset):
    plain = np.concatenate([yb for _, yb in dataset.batches(7)])
    shuffled = np.concatenate([yb for _, yb in dataset.batches(7, seed=3)])
    np.testing.assert_array_equal(np.sort(plain), np.sort(shuffled))
    assert not np.array_equal(plain, shuffled)


def test_class_balance(dataset):
    np.testing.assert_array_equal(dataset.class_balance(), [10, 10, 10, 10])


def test_standardized_moments(dataset):
    norm = dataset.standardized()
    assert abs(norm.x.mean()) < 1e-5
    assert abs(norm.x.std() - 1.0) < 1e-3
