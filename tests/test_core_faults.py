"""Tests for the fault vocabulary (FaultSpec and friends)."""

import pytest

from repro.core import FaultSpec, FaultType, Semantics, StuckPolarity


def test_bitflip_factory_defaults():
    spec = FaultSpec.bitflip(0.1)
    assert spec.kind == FaultType.BITFLIP
    assert spec.rate == 0.1
    assert spec.period == 0
    assert spec.effective_semantics == Semantics.OUTPUT


def test_stuck_at_defaults_to_output_rail_semantics():
    """Canonical stuck-at = dead gate with a railed output line."""
    spec = FaultSpec.stuck_at(0.01)
    assert spec.effective_semantics == Semantics.OUTPUT
    assert spec.polarity == StuckPolarity.RANDOM
    # the frozen-operand (weight) reading stays available as an option
    weight_spec = FaultSpec.stuck_at(0.01, semantics=Semantics.WEIGHT)
    assert weight_spec.effective_semantics == Semantics.WEIGHT


def test_line_fault_factories():
    rows = FaultSpec.faulty_rows(3)
    cols = FaultSpec.faulty_columns(2)
    assert rows.count == 3
    assert cols.count == 2
    assert rows.effective_semantics == Semantics.OUTPUT


def test_semantics_override():
    spec = FaultSpec.bitflip(0.1, semantics=Semantics.PRODUCT)
    assert spec.effective_semantics == Semantics.PRODUCT


def test_rate_bounds_validation():
    with pytest.raises(ValueError):
        FaultSpec.bitflip(1.5)
    with pytest.raises(ValueError):
        FaultSpec.bitflip(-0.1)


def test_row_faults_reject_rate():
    with pytest.raises(ValueError):
        FaultSpec(FaultType.FAULTY_ROWS, rate=0.5)


def test_stuck_at_rejects_period():
    with pytest.raises(ValueError):
        FaultSpec(FaultType.STUCK_AT, rate=0.1, period=3)


def test_negative_count_and_period_rejected():
    with pytest.raises(ValueError):
        FaultSpec(FaultType.FAULTY_ROWS, count=-1)
    with pytest.raises(ValueError):
        FaultSpec(FaultType.BITFLIP, rate=0.1, period=-2)


def test_specs_are_frozen():
    spec = FaultSpec.bitflip(0.1)
    with pytest.raises(AttributeError):
        spec.rate = 0.5


def test_rate_must_be_finite_number():
    with pytest.raises(ValueError):
        FaultSpec.bitflip(float("nan"))
    with pytest.raises(ValueError):
        FaultSpec.bitflip(float("inf"))
    with pytest.raises(ValueError):
        FaultSpec(FaultType.BITFLIP, rate="0.1")


def test_count_and_period_must_be_integers():
    with pytest.raises(ValueError):
        FaultSpec(FaultType.BITFLIP, rate=0.1, period=2.5)
    with pytest.raises(ValueError):
        FaultSpec(FaultType.FAULTY_ROWS, count=1.5)
    # integer-valued numpy scalars are fine (sweep axes produce them)
    import numpy as np
    assert FaultSpec(FaultType.BITFLIP, rate=0.1,
                     period=np.int64(3)).period == 3


def test_spatial_mode_validation():
    from repro.core import SpatialMode
    spec = FaultSpec.stuck_at(0.1, spatial=SpatialMode.CLUSTERED,
                              cluster_size=4)
    assert spec.cluster_size == 4
    with pytest.raises(ValueError):
        FaultSpec.stuck_at(0.1, spatial=SpatialMode.CLUSTERED)  # no size
    with pytest.raises(ValueError):
        FaultSpec.bitflip(0.1, cluster_size=4)  # size without a mode
    with pytest.raises(ValueError):
        FaultSpec(FaultType.FAULTY_ROWS, count=2,
                  spatial=SpatialMode.ROW_BURST, cluster_size=2)


def test_layer_targeting_validation():
    spec = FaultSpec.bitflip(0.1, layers=["conv1", "dense1"])
    assert spec.layers == ("conv1", "dense1")  # normalized to a tuple
    with pytest.raises(ValueError):
        FaultSpec.bitflip(0.1, layers=())
    with pytest.raises(ValueError):
        FaultSpec.bitflip(0.1, layers="conv1")  # a bare string is a bug


def test_enum_fields_coerce_from_string_values():
    """spatial='clustered' must mean clustered — never a silent i.i.d.
    fallback (and bad strings must fail loudly)."""
    from repro.core import SpatialMode
    spec = FaultSpec.stuck_at(0.2, spatial="clustered", cluster_size=6)
    assert spec.spatial is SpatialMode.CLUSTERED
    assert FaultSpec.bitflip(0.1, spatial="iid").spatial is SpatialMode.IID
    assert FaultSpec("bitflip", rate=0.1).kind is FaultType.BITFLIP
    assert FaultSpec.bitflip(0.1, semantics="product").effective_semantics \
        is Semantics.PRODUCT
    with pytest.raises(ValueError):
        FaultSpec.bitflip(0.1, spatial="fractal")
    with pytest.raises(ValueError):
        FaultSpec.bitflip(0.1, semantics="outputs")
