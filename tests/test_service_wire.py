"""Property tests for the service wire schema.

Two contracts, both load-bearing for the service's bit-identity claim:

* **round-trip** — every payload family (requests, events, reports,
  job records) survives ``encode → json → decode`` unchanged, for
  arbitrary well-formed values (hypothesis when available, a
  representative parametrized set otherwise);
* **strictness** — unknown fields, unknown event/state names, wrong
  schema versions, and type violations raise :class:`WireError` (a
  ``ValueError`` → CLI exit 2 / HTTP 400), and a malformed submission
  posted to a live server is refused without ever constructing a job.
"""

import json

import pytest

from repro.api.events import (CellDone, CheckpointDone, ExecutorDegraded,
                              JobQuarantined, JobRetried, JobStateChanged,
                              RunFinished, RunStarted, RunWarning,
                              WorkerLost)
from repro.api.report import RunReport, SeriesReport
from repro.api.request import RunRequest
from repro.service import wire
from repro.service.jobs import JobRecord, JobState

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the container ships hypothesis
    HAVE_HYPOTHESIS = False


def roundtrip(payload):
    """encode → the actual wire (JSON text) → decode input."""
    return json.loads(json.dumps(payload))


# -- example payloads (the fallback set; hypothesis generalizes them) ------

EXAMPLE_REQUESTS = [
    (RunRequest("fig4a"), False),
    (RunRequest("svc-tiny", params={"rates": [0.0, 0.5], "repeats": 3},
                executor="shared_memory", n_jobs=4, backend="packed",
                cache_bytes=1 << 20, quick=True, retries=0,
                job_timeout=2.5, degrade=False), True),
]

EXAMPLE_REPORT = RunReport(
    experiment="svc-tiny", params={"rates": [0.0, 0.5]},
    engine={"executor": "serial", "backend": "float"},
    series=[SeriesReport("svc", [0.0, 0.5], [0.9, 0.4], [0.0, 0.1],
                         baseline=0.9),
            SeriesReport("other", [1.0], [0.5], [0.0])],
    tables={"runtime": {"columns": ["a"], "rows": [[1.5]]}},
    baseline=0.9, meta={"events": {"CellDone": 6}},
    artifacts={"journal": "/tmp/x.jsonl"})

EXAMPLE_EVENTS = [
    RunStarted(experiment="fig4a", params={"repeats": 2}),
    CellDone(series="conv1", done=1, total=12, point=0, repeat=1,
             accuracy=0.625),
    CheckpointDone(index=0, total=3, age=1e6),
    RunWarning(message="pool fell back to serial"),
    JobRetried(point=1, repeat=2, attempt=1, delay=0.5, cause="timeout",
               error="TimeoutError"),
    JobQuarantined(point=1, repeat=2, attempts=3, error="boom"),
    WorkerLost(reason="SIGKILL", in_flight=2),
    ExecutorDegraded(from_mode="shared_memory", to_mode="multiprocessing",
                     reason="init failed"),
    JobStateChanged(job_id="job-abc", state="running", error=""),
    RunFinished(report=EXAMPLE_REPORT),
]


def make_record(state=JobState.QUEUED, durable=False, error=""):
    request, _ = EXAMPLE_REQUESTS[1 if durable else 0]
    return JobRecord(job_id="job-00ff", seq=3, client="cli", state=state,
                     durable=durable, request=request, error=error,
                     resumes=1 if durable else 0, cache_bytes=1 << 20)


# -- round-trips -----------------------------------------------------------

@pytest.mark.parametrize("request_, durable", EXAMPLE_REQUESTS)
def test_request_roundtrip_examples(request_, durable):
    decoded, decoded_durable = wire.decode_request(
        roundtrip(wire.encode_request(request_, durable)))
    assert decoded == request_
    assert decoded_durable == durable
    assert decoded.journal is None and decoded.resume is False


@pytest.mark.parametrize("event", EXAMPLE_EVENTS,
                         ids=lambda e: type(e).__name__)
def test_event_roundtrip_examples(event):
    assert wire.decode_event(roundtrip(wire.encode_event(event))) == event


def test_report_roundtrip_example():
    decoded = wire.decode_report(roundtrip(wire.encode_report(
        EXAMPLE_REPORT)))
    assert decoded == EXAMPLE_REPORT
    assert decoded.raw is None


@pytest.mark.parametrize("state", list(JobState))
def test_job_record_roundtrip_examples(state):
    record = make_record(state=state, durable=True,
                         error="boom" if state is JobState.FAILED else "")
    assert wire.decode_job(roundtrip(wire.encode_job(record))) == record


if HAVE_HYPOTHESIS:
    finite = st.floats(allow_nan=False, allow_infinity=False)
    names = st.text(min_size=1, max_size=12)
    json_scalars = st.one_of(st.booleans(), st.integers(), finite, names,
                             st.none())
    param_dicts = st.dictionaries(names, st.one_of(
        json_scalars, st.lists(json_scalars, max_size=3)), max_size=4)

    requests = st.builds(
        RunRequest,
        experiment=names,
        params=param_dicts,
        executor=st.sampled_from(["serial", "multiprocessing",
                                  "shared_memory"]),
        n_jobs=st.one_of(st.none(), st.integers(0, 64)),
        backend=st.sampled_from(["float", "packed"]),
        cache_bytes=st.one_of(st.none(), st.integers(0, 1 << 40)),
        quick=st.booleans(),
        retries=st.integers(0, 9),
        job_timeout=st.one_of(st.none(),
                              st.floats(min_value=0.001, max_value=1e6,
                                        allow_nan=False)),
        degrade=st.booleans())

    series_reports = st.builds(
        SeriesReport, label=names,
        xs=st.lists(finite, max_size=4), mean=st.lists(finite, max_size=4),
        std=st.lists(finite, max_size=4),
        baseline=st.one_of(st.none(), finite))

    reports = st.builds(
        RunReport, experiment=names, params=param_dicts,
        engine=param_dicts, series=st.lists(series_reports, max_size=3),
        tables=st.dictionaries(names, param_dicts, max_size=2),
        baseline=st.one_of(st.none(), finite), meta=param_dicts,
        artifacts=st.dictionaries(names, names, max_size=2))

    events = st.one_of(
        st.builds(RunStarted, experiment=names, params=param_dicts),
        st.builds(CellDone, series=names, done=st.integers(0, 99),
                  total=st.integers(0, 99), point=st.integers(0, 99),
                  repeat=st.integers(0, 99), accuracy=finite),
        st.builds(CheckpointDone, index=st.integers(0, 9),
                  total=st.integers(1, 9), age=finite),
        st.builds(RunWarning, message=names),
        st.builds(JobRetried, point=st.integers(0, 9),
                  repeat=st.integers(0, 9), attempt=st.integers(1, 9),
                  delay=finite, cause=st.sampled_from(["error", "timeout"]),
                  error=names),
        st.builds(JobQuarantined, point=st.integers(0, 9),
                  repeat=st.integers(0, 9), attempts=st.integers(1, 9),
                  error=names),
        st.builds(WorkerLost, reason=names, in_flight=st.integers(0, 9)),
        st.builds(ExecutorDegraded, from_mode=names, to_mode=names,
                  reason=names),
        st.builds(JobStateChanged, job_id=names,
                  state=st.sampled_from([s.value for s in JobState]),
                  error=names),
        st.builds(RunFinished, report=reports))

    records = st.builds(
        make_record, state=st.sampled_from(list(JobState)),
        durable=st.booleans(), error=names)

    @settings(max_examples=60, deadline=None)
    @given(request_=requests, durable=st.booleans())
    def test_request_roundtrip_property(request_, durable):
        decoded, decoded_durable = wire.decode_request(
            roundtrip(wire.encode_request(request_, durable)))
        assert decoded == request_ and decoded_durable == durable

    @settings(max_examples=120, deadline=None)
    @given(event=events)
    def test_event_roundtrip_property(event):
        assert wire.decode_event(
            roundtrip(wire.encode_event(event))) == event

    @settings(max_examples=60, deadline=None)
    @given(report=reports)
    def test_report_roundtrip_property(report):
        assert wire.decode_report(
            roundtrip(wire.encode_report(report))) == report

    @settings(max_examples=30, deadline=None)
    @given(record=records)
    def test_job_record_roundtrip_property(record):
        assert wire.decode_job(roundtrip(wire.encode_job(record))) == record


# -- strictness ------------------------------------------------------------

def bad_payloads():
    good_request = wire.encode_request(RunRequest("fig4a"))
    good_event = wire.encode_event(EXAMPLE_EVENTS[1])
    good_report = wire.encode_report(EXAMPLE_REPORT)
    good_job = wire.encode_job(make_record())
    yield "request-unknown-field", wire.decode_request, \
        {**good_request, "surprise": 1}
    yield "request-journal-on-wire", wire.decode_request, \
        {**good_request, "journal": "/tmp/evil.jsonl"}
    yield "request-resume-on-wire", wire.decode_request, \
        {**good_request, "resume": True}
    yield "request-missing-experiment", wire.decode_request, \
        {k: v for k, v in good_request.items() if k != "experiment"}
    yield "request-durable-not-bool", wire.decode_request, \
        {**good_request, "durable": "yes"}
    yield "request-not-object", wire.decode_request, ["fig4a"]
    yield "event-unknown-type", wire.decode_event, \
        {"event": "CellExploded", "boom": 1}
    yield "event-unknown-field", wire.decode_event, \
        {**good_event, "surprise": 1}
    yield "event-missing-field", wire.decode_event, \
        {k: v for k, v in good_event.items() if k != "accuracy"}
    yield "event-no-type", wire.decode_event, {"series": "x"}
    yield "report-unknown-field", wire.decode_report, \
        {**good_report, "surprise": 1}
    yield "report-wrong-schema", wire.decode_report, \
        {**good_report, "schema_version": 99}
    yield "report-missing-field", wire.decode_report, \
        {k: v for k, v in good_report.items() if k != "tables"}
    yield "runfinished-missing-report", wire.decode_event, \
        {"event": "RunFinished"}
    yield "job-unknown-state", wire.decode_job, \
        {**good_job, "state": "exploded"}
    yield "job-unknown-field", wire.decode_job, {**good_job, "surprise": 1}
    yield "job-missing-field", wire.decode_job, \
        {k: v for k, v in good_job.items() if k != "seq"}
    yield "job-durable-mismatch", wire.decode_job, \
        {**good_job, "durable": True}


@pytest.mark.parametrize("label, decoder, payload",
                         list(bad_payloads()),
                         ids=[label for label, _, _ in bad_payloads()])
def test_malformed_payloads_rejected(label, decoder, payload):
    with pytest.raises(wire.WireError):
        decoder(roundtrip(payload))
    assert issubclass(wire.WireError, ValueError)  # the exit-2 class


def test_request_values_validated_after_decode():
    from repro.api import ApiError
    payload = wire.encode_request(RunRequest("fig4a"))
    payload["executor"] = "carrier-pigeon"
    with pytest.raises(ApiError):
        wire.decode_request(payload)


def test_canonical_result_strips_only_bookkeeping():
    direct = EXAMPLE_REPORT.to_dict()
    service = EXAMPLE_REPORT.to_dict()
    service["artifacts"] = {"journal": "/elsewhere/journals/job-1.jsonl"}
    service["engine"] = {**service["engine"],
                         "journal": "/elsewhere", "resume": True}
    service["meta"] = {**service["meta"], "resumed_cells": 5,
                       "journal": "/elsewhere",
                       "events": {"CellDone": 2}}
    assert wire.canonical_result(direct) == wire.canonical_result(service)
    tampered = EXAMPLE_REPORT.to_dict()
    tampered["series"][0]["mean"][0] += 1e-9
    assert wire.canonical_result(direct) != wire.canonical_result(tampered)


# -- nothing malformed ever reaches the queue ------------------------------

def test_malformed_submissions_never_queued(tmp_path):
    """POST every malformed body to a live server: each is refused with
    an HTTP 4xx and the job table stays empty."""
    import http.client

    from repro.service import ServiceClient, start_in_thread

    bodies = [b"not json at all",
              json.dumps({"experiment": "no-such-experiment"}).encode(),
              json.dumps({"experiment": "fig4a",
                          "journal": "/tmp/evil"}).encode(),
              json.dumps({"experiment": "fig4a",
                          "params": {"bogus_param": 1}}).encode(),
              json.dumps(["fig4a"]).encode()]
    with start_in_thread(tmp_path / "store", workers=1) as port:
        for body in bodies:
            connection = http.client.HTTPConnection("127.0.0.1", port,
                                                    timeout=30)
            connection.request("POST", "/v1/jobs", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert 400 <= response.status < 500, body
            response.read()
            connection.close()
        client = ServiceClient(port=port)
        assert client.jobs() == []
        assert client.health()["jobs"] == {}
        # the store holds no record either — nothing was constructed
        assert list((tmp_path / "store" / "jobs").glob("*")) == []
