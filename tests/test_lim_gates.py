"""Truth-table and fault-propagation tests for the XNOR gate families."""

import numpy as np
import pytest

from repro.lim import (CELL_A, CELL_OUT, CELL_W, CellArray,
                       Health, ImplyXnorGate, MagicXnorGate, get_gate_family)
from repro.lim.memristor import DeviceParams


def fresh_cells(shape=(2, 2, 4), variability=0.0):
    return CellArray(shape, DeviceParams(variability=variability), seed=0)


@pytest.mark.parametrize("family", ["imply", "magic"])
def test_xnor_truth_table(family):
    gate = get_gate_family(family)
    # one tile evaluating all four input combinations at once
    a = np.array([[0, 0], [1, 1]], dtype=np.uint8)
    b = np.array([[0, 1], [0, 1]], dtype=np.uint8)
    out = gate.compute(fresh_cells(), a, b)
    expected = 1 - (a ^ b)
    np.testing.assert_array_equal(out, expected)


@pytest.mark.parametrize("family", ["imply", "magic"])
def test_xnor_truth_table_with_variability(family):
    """Cycle-to-cycle variability must not flip healthy logic levels."""
    gate = get_gate_family(family)
    rng = np.random.default_rng(3)
    a = rng.integers(0, 2, (16, 16)).astype(np.uint8)
    b = rng.integers(0, 2, (16, 16)).astype(np.uint8)
    out = gate.compute(fresh_cells((16, 16, 4), variability=0.1), a, b)
    np.testing.assert_array_equal(out, 1 - (a ^ b))


@pytest.mark.parametrize("family", ["imply", "magic"])
@pytest.mark.parametrize("stuck_value", [0, 1])
def test_stuck_input_cell_corrupts_mechanistically(family, stuck_value):
    """A stuck A-cell corrupts the gate the way the physical program would.

    IMPLY reuses the A cell as scratch in its final steps, so a stuck A
    forces the output to ``¬stuck`` for every input combination.  MAGIC
    stores (x, x̄) on two cells; a stuck x-cell breaks the complementary
    pair: out = (stuck∧w) ∨ (¬x∧¬w).
    """
    gate = get_gate_family(family)
    health = Health.STUCK_LRS if stuck_value else Health.STUCK_HRS
    for a_val in (0, 1):
        for b_val in (0, 1):
            cells = fresh_cells((1, 1, 4))
            cells.set_health((0, 0, CELL_A), health)
            a = np.full((1, 1), a_val, dtype=np.uint8)
            b = np.full((1, 1), b_val, dtype=np.uint8)
            out = gate.compute(cells, a, b)
            if family == "imply":
                assert out[0, 0] == 1 - stuck_value
            else:
                expected = (stuck_value & b_val) | ((1 - a_val) & (1 - b_val))
                assert out[0, 0] == expected


def test_imply_stuck_out_cell_forces_output():
    gate = ImplyXnorGate()
    for stuck, health in ((0, Health.STUCK_HRS), (1, Health.STUCK_LRS)):
        for a_val in (0, 1):
            for b_val in (0, 1):
                cells = fresh_cells((1, 1, 4))
                cells.set_health((0, 0, CELL_OUT), health)
                out = gate.compute(cells,
                                   np.full((1, 1), a_val, dtype=np.uint8),
                                   np.full((1, 1), b_val, dtype=np.uint8))
                assert out[0, 0] == stuck


def test_imply_stuck_work_cell_corrupts_some_inputs():
    """A stuck work cell must corrupt at least one input combination."""
    gate = ImplyXnorGate()
    wrong = 0
    for a_val in (0, 1):
        for b_val in (0, 1):
            cells = fresh_cells((1, 1, 4))
            cells.set_health((0, 0, CELL_W), Health.STUCK_LRS)
            out = gate.compute(cells,
                               np.full((1, 1), a_val, dtype=np.uint8),
                               np.full((1, 1), b_val, dtype=np.uint8))
            wrong += int(out[0, 0] != (1 - (a_val ^ b_val)))
    assert wrong > 0


def test_magic_stuck_weight_cell_acts_as_stuck_weight():
    gate = MagicXnorGate()
    for a_val in (0, 1):
        for b_val in (0, 1):
            cells = fresh_cells((1, 1, 4))
            cells.set_health((0, 0, CELL_W), Health.STUCK_LRS)  # w stuck 1
            out = gate.compute(cells,
                               np.full((1, 1), a_val, dtype=np.uint8),
                               np.full((1, 1), b_val, dtype=np.uint8))
            expected = (a_val & 1) | ((1 - a_val) & (1 - b_val))
            assert out[0, 0] == expected


def test_gate_family_registry():
    assert isinstance(get_gate_family("imply"), ImplyXnorGate)
    assert isinstance(get_gate_family("magic"), MagicXnorGate)
    with pytest.raises(ValueError):
        get_gate_family("nand")


def test_imply_costs_more_steps_than_magic():
    assert ImplyXnorGate.steps_per_op > MagicXnorGate.steps_per_op
