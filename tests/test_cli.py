"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_lenet(capsys):
    code, out = run_cli(capsys, "report", "--model", "lenet",
                        "--rows", "8", "--cols", "4")
    assert code == 0
    for name in ("conv1", "conv2", "dense0", "dense1"):
        assert name in out
    assert "reuse" in out


def test_vectors_and_inspect_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "plan.flim")
    code, out = run_cli(capsys, "vectors", path, "--model", "lenet",
                        "--fault", "bitflip", "--rate", "0.2",
                        "--rows", "8", "--cols", "4", "--seed", "3")
    assert code == 0
    assert "4 layer records" in out

    code, out = run_cli(capsys, "inspect", path)
    assert code == 0
    assert "conv1" in out
    assert "8x4" in out


def test_vectors_stuck_at(capsys, tmp_path):
    path = str(tmp_path / "stuck.flim")
    code, out = run_cli(capsys, "vectors", path, "--fault", "stuck_at",
                        "--rate", "0.1", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.stuck_mask.sum() == round(0.1 * 32) for m in plan.values())


def test_vectors_faulty_columns(capsys, tmp_path):
    path = str(tmp_path / "cols.flim")
    code, _ = run_cli(capsys, "vectors", path, "--fault", "faulty_columns",
                      "--count", "2", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.flip_mask.sum() == 2 * 8 for m in plan.values())


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "CPU" in out
    assert "numpy" in out


def test_cost_lenet(capsys):
    code, out = run_cli(capsys, "cost", "--model", "lenet", "--gate", "magic")
    assert code == 0
    assert "dense1" in out
    assert "total per image (magic)" in out


def test_cost_gate_families_differ(capsys):
    _, out_imply = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "imply")
    _, out_magic = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "magic")
    assert out_imply != out_magic


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["report", "--model", "not_a_model"])


def test_sweep_parallel_with_journal_smoke(capsys, tmp_path):
    """End-to-end: pool executor + journal + resume through the CLI."""
    journal = str(tmp_path / "sweep.jsonl")
    argv = ["sweep", "--rates", "0.0", "0.3", "--repeats", "2",
            "--images", "60", "--rows", "8", "--cols", "4",
            "--jobs", "2", "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "baseline:" in out
    assert "[multiprocessing/float]" in out
    assert "0 cells resumed" in out

    # reusing a journal requires --resume ...
    code, _ = run_cli(capsys, *argv)
    assert code == 2

    # ... and with it the completed journal replays instantly
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "4 cells resumed" in out


def test_sweep_resume_requires_journal(capsys):
    code = main(["sweep", "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--journal" in captured.err


def test_sweep_shared_memory_executor_smoke(capsys, tmp_path):
    code, out = run_cli(capsys, "sweep", "--rates", "0.0", "0.3",
                        "--repeats", "2", "--images", "60",
                        "--rows", "8", "--cols", "4",
                        "--jobs", "2", "--executor", "shared_memory")
    assert code == 0
    assert "[shared_memory/float]" in out
