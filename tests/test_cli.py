"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_lenet(capsys):
    code, out = run_cli(capsys, "report", "--model", "lenet",
                        "--rows", "8", "--cols", "4")
    assert code == 0
    for name in ("conv1", "conv2", "dense0", "dense1"):
        assert name in out
    assert "reuse" in out


def test_vectors_and_inspect_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "plan.flim")
    code, out = run_cli(capsys, "vectors", path, "--model", "lenet",
                        "--fault", "bitflip", "--rate", "0.2",
                        "--rows", "8", "--cols", "4", "--seed", "3")
    assert code == 0
    assert "4 layer records" in out

    code, out = run_cli(capsys, "inspect", path)
    assert code == 0
    assert "conv1" in out
    assert "8x4" in out


def test_vectors_stuck_at(capsys, tmp_path):
    path = str(tmp_path / "stuck.flim")
    code, out = run_cli(capsys, "vectors", path, "--fault", "stuck_at",
                        "--rate", "0.1", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.stuck_mask.sum() == round(0.1 * 32) for m in plan.values())


def test_vectors_faulty_columns(capsys, tmp_path):
    path = str(tmp_path / "cols.flim")
    code, _ = run_cli(capsys, "vectors", path, "--fault", "faulty_columns",
                      "--count", "2", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.flip_mask.sum() == 2 * 8 for m in plan.values())


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "CPU" in out
    assert "numpy" in out


def test_cost_lenet(capsys):
    code, out = run_cli(capsys, "cost", "--model", "lenet", "--gate", "magic")
    assert code == 0
    assert "dense1" in out
    assert "total per image (magic)" in out


def test_cost_gate_families_differ(capsys):
    _, out_imply = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "imply")
    _, out_magic = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "magic")
    assert out_imply != out_magic


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["report", "--model", "not_a_model"])


def test_sweep_parallel_with_journal_smoke(capsys, tmp_path):
    """End-to-end: pool executor + journal + resume through the CLI."""
    journal = str(tmp_path / "sweep.jsonl")
    argv = ["sweep", "--rates", "0.0", "0.3", "--repeats", "2",
            "--images", "60", "--rows", "8", "--cols", "4",
            "--jobs", "2", "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "baseline:" in out
    assert "[multiprocessing/float]" in out
    assert "0 cells resumed" in out

    # reusing a journal requires --resume ...
    code, _ = run_cli(capsys, *argv)
    assert code == 2

    # ... and with it the completed journal replays instantly
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "4 cells resumed" in out


def test_sweep_resume_requires_journal(capsys):
    code = main(["sweep", "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--journal" in captured.err


def test_sweep_shared_memory_executor_smoke(capsys, tmp_path):
    code, out = run_cli(capsys, "sweep", "--rates", "0.0", "0.3",
                        "--repeats", "2", "--images", "60",
                        "--rows", "8", "--cols", "4",
                        "--jobs", "2", "--executor", "shared_memory")
    assert code == 0
    assert "[shared_memory/float]" in out


def test_scenarios_list(capsys):
    code, out = run_cli(capsys, "scenarios", "list")
    assert code == 0
    for name in ("fresh-device", "mid-life-drift", "end-of-life",
                 "seu-storm", "clustered-variation-attack",
                 "row-driver-failure"):
        assert name in out


def test_scenarios_run_requires_a_scenario(capsys):
    code = main(["scenarios", "run"])
    captured = capsys.readouterr()
    assert code == 2
    assert "scenarios list" in captured.err


def test_scenarios_run_unknown_zoo_name(capsys):
    code = main(["scenarios", "run", "mid-life-crisis"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown scenario" in captured.err


def test_scenarios_run_malformed_spec_file(capsys, tmp_path):
    path = tmp_path / "broken.yaml"
    path.write_text("{unclosed")
    code = main(["scenarios", "run", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_scenarios_run_spec_with_unknown_keys(capsys, tmp_path):
    path = tmp_path / "typo.json"
    path.write_text('{"name": "t", "timeline": {"ages": [0.0]}, '
                    '"clauses": [{"kind": "bitflip", "rate": 0.1}], '
                    '"sauces": []}')
    code = main(["scenarios", "run", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown key" in captured.err


def test_scenarios_run_smoke_and_journal_guards(capsys, tmp_path):
    """End-to-end scenario run + the journal exit-2 contract."""
    journal = str(tmp_path / "scenario.jsonl")
    argv = ["scenarios", "run", "fresh-device", "--images", "60",
            "--repeats", "1", "--rows", "8", "--cols", "4",
            "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "fresh-device" in out
    assert "baseline:" in out
    assert "0 cells resumed" in out

    # reusing a journal requires --resume ...
    code, _ = run_cli(capsys, *argv)
    assert code == 2

    # ... and a journal written for a *different* scenario is refused
    code = main(["scenarios", "run", "end-of-life", "--images", "60",
                 "--repeats", "1", "--rows", "8", "--cols", "4",
                 "--journal", journal, "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "different campaign" in captured.err

    # the matching scenario replays the completed journal instantly
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "3 cells resumed" in out


def test_scenarios_run_resume_requires_journal(capsys):
    code = main(["scenarios", "run", "fresh-device", "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--journal" in captured.err


def test_scenarios_run_rejects_name_plus_spec(capsys, tmp_path):
    path = tmp_path / "story.json"
    path.write_text('{"name": "s", "timeline": {"ages": [0.0]}, '
                    '"clauses": [{"kind": "bitflip", "rate": 0.1}]}')
    code = main(["scenarios", "run", "end-of-life", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "pick one" in captured.err
