"""Tests for the command-line interface.

Exit codes are asserted per the uniform contract: 0 success, 2
usage/validation (malformed spec or --param, unknown experiment,
mismatched journal), 1 runtime failure — for every subcommand including
the registry-backed ``run`` / ``list`` / ``describe``.
"""

import re

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_lenet(capsys):
    code, out = run_cli(capsys, "report", "--model", "lenet",
                        "--rows", "8", "--cols", "4")
    assert code == 0
    for name in ("conv1", "conv2", "dense0", "dense1"):
        assert name in out
    assert "reuse" in out


def test_vectors_and_inspect_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "plan.flim")
    code, out = run_cli(capsys, "vectors", path, "--model", "lenet",
                        "--fault", "bitflip", "--rate", "0.2",
                        "--rows", "8", "--cols", "4", "--seed", "3")
    assert code == 0
    assert "4 layer records" in out

    code, out = run_cli(capsys, "inspect", path)
    assert code == 0
    assert "conv1" in out
    assert "8x4" in out


def test_vectors_stuck_at(capsys, tmp_path):
    path = str(tmp_path / "stuck.flim")
    code, out = run_cli(capsys, "vectors", path, "--fault", "stuck_at",
                        "--rate", "0.1", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.stuck_mask.sum() == round(0.1 * 32) for m in plan.values())


def test_vectors_faulty_columns(capsys, tmp_path):
    path = str(tmp_path / "cols.flim")
    code, _ = run_cli(capsys, "vectors", path, "--fault", "faulty_columns",
                      "--count", "2", "--rows", "8", "--cols", "4")
    assert code == 0
    from repro.core import load_fault_vectors
    plan = load_fault_vectors(path)
    assert all(m.flip_mask.sum() == 2 * 8 for m in plan.values())


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "CPU" in out
    assert "numpy" in out


def test_cost_lenet(capsys):
    code, out = run_cli(capsys, "cost", "--model", "lenet", "--gate", "magic")
    assert code == 0
    assert "dense1" in out
    assert "total per image (magic)" in out


def test_cost_gate_families_differ(capsys):
    _, out_imply = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "imply")
    _, out_magic = run_cli(capsys, "cost", "--model", "lenet",
                           "--gate", "magic")
    assert out_imply != out_magic


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["report", "--model", "not_a_model"])


def test_sweep_parallel_with_journal_smoke(capsys, tmp_path):
    """End-to-end: pool executor + journal + resume through the CLI."""
    journal = str(tmp_path / "sweep.jsonl")
    argv = ["sweep", "--rates", "0.0", "0.3", "--repeats", "2",
            "--images", "60", "--rows", "8", "--cols", "4",
            "--jobs", "2", "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "baseline:" in out
    assert "[multiprocessing/float]" in out
    assert "0 cells resumed" in out

    # reusing a journal requires --resume ...
    code, _ = run_cli(capsys, *argv)
    assert code == 2

    # ... and with it the completed journal replays instantly
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "4 cells resumed" in out


def test_sweep_resume_requires_journal(capsys):
    code = main(["sweep", "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--journal" in captured.err


def test_sweep_shared_memory_executor_smoke(capsys, tmp_path):
    code, out = run_cli(capsys, "sweep", "--rates", "0.0", "0.3",
                        "--repeats", "2", "--images", "60",
                        "--rows", "8", "--cols", "4",
                        "--jobs", "2", "--executor", "shared_memory")
    assert code == 0
    assert "[shared_memory/float]" in out


def test_scenarios_list(capsys):
    code, out = run_cli(capsys, "scenarios", "list")
    assert code == 0
    for name in ("fresh-device", "mid-life-drift", "end-of-life",
                 "seu-storm", "clustered-variation-attack",
                 "row-driver-failure"):
        assert name in out


def test_scenarios_run_requires_a_scenario(capsys):
    code = main(["scenarios", "run"])
    captured = capsys.readouterr()
    assert code == 2
    assert "scenarios list" in captured.err


def test_scenarios_run_unknown_zoo_name(capsys):
    code = main(["scenarios", "run", "mid-life-crisis"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown scenario" in captured.err


def test_scenarios_run_malformed_spec_file(capsys, tmp_path):
    path = tmp_path / "broken.yaml"
    path.write_text("{unclosed")
    code = main(["scenarios", "run", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_scenarios_run_spec_with_unknown_keys(capsys, tmp_path):
    path = tmp_path / "typo.json"
    path.write_text('{"name": "t", "timeline": {"ages": [0.0]}, '
                    '"clauses": [{"kind": "bitflip", "rate": 0.1}], '
                    '"sauces": []}')
    code = main(["scenarios", "run", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown key" in captured.err


def test_scenarios_run_smoke_and_journal_guards(capsys, tmp_path):
    """End-to-end scenario run + the journal exit-2 contract."""
    journal = str(tmp_path / "scenario.jsonl")
    argv = ["scenarios", "run", "fresh-device", "--images", "60",
            "--repeats", "1", "--rows", "8", "--cols", "4",
            "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "fresh-device" in out
    assert "baseline:" in out
    assert "0 cells resumed" in out

    # reusing a journal requires --resume ...
    code, _ = run_cli(capsys, *argv)
    assert code == 2

    # ... and a journal written for a *different* scenario is refused
    code = main(["scenarios", "run", "end-of-life", "--images", "60",
                 "--repeats", "1", "--rows", "8", "--cols", "4",
                 "--journal", journal, "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "different campaign" in captured.err

    # the matching scenario replays the completed journal instantly
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "3 cells resumed" in out


def test_scenarios_run_resume_requires_journal(capsys):
    code = main(["scenarios", "run", "fresh-device", "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--journal" in captured.err


def test_scenarios_run_rejects_name_plus_spec(capsys, tmp_path):
    path = tmp_path / "story.json"
    path.write_text('{"name": "s", "timeline": {"ages": [0.0]}, '
                    '"clauses": [{"kind": "bitflip", "rate": 0.1}]}')
    code = main(["scenarios", "run", "end-of-life", "--spec", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "pick one" in captured.err


# -- registry commands: run / list / describe -----------------------------

TINY_SWEEP = ["--param", "rates=0.0,0.3", "--param", "repeats=1",
              "--param", "images=60", "--param", "rows=8",
              "--param", "cols=4"]


def test_run_sweep_quick(capsys):
    code, out = run_cli(capsys, "run", "sweep", "--quick")
    assert code == 0
    assert "experiment: sweep" in out
    assert "baseline:" in out
    assert "[serial/float]" in out
    assert "bitflip" in out


def test_run_accepts_params_and_writes_report(capsys, tmp_path):
    out_path = tmp_path / "report.json"
    code, out = run_cli(capsys, "run", "sweep", *TINY_SWEEP,
                        "--out", str(out_path))
    assert code == 0
    assert out_path.exists()
    assert "[report]" in out
    import json
    payload = json.loads(out_path.read_text())
    assert payload["experiment"] == "sweep"
    assert payload["params"]["repeats"] == 1


def test_run_scenario_by_zoo_name(capsys):
    code, out = run_cli(capsys, "run", "fresh-device", "--quick")
    assert code == 0
    assert "experiment: fresh-device" in out
    assert "nominal" in out


def test_run_with_journal_streams_and_resumes(capsys, tmp_path):
    journal = str(tmp_path / "run.jsonl")
    argv = ["run", "sweep", *TINY_SWEEP, "--journal", journal]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "0 cells resumed" in out

    # reusing a journal requires --resume (uniform exit 2) ...
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 2
    assert "--resume" in captured.err

    # ... and with it the completed journal replays
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "2 cells resumed" in out


def test_run_unknown_experiment_exits_2(capsys):
    code = main(["run", "definitely-not-registered"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown experiment" in captured.err


def test_run_unknown_param_exits_2(capsys):
    code = main(["run", "sweep", "--param", "bogus=1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown param" in captured.err


def test_run_malformed_param_exits_2(capsys):
    code = main(["run", "sweep", "--param", "rates"])
    captured = capsys.readouterr()
    assert code == 2
    assert "name=value" in captured.err


def test_run_uncoercible_param_exits_2(capsys):
    code = main(["run", "sweep", "--param", "repeats=lots"])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot read" in captured.err


def test_run_runtime_failure_exits_1(capsys):
    from repro import api

    def explode(ctx):
        raise RuntimeError("injected runtime failure")

    api.REGISTRY.register(api.Experiment(name="boom-cli", func=explode))
    try:
        code = main(["run", "boom-cli"])
    finally:
        api.REGISTRY.unregister("boom-cli")
    captured = capsys.readouterr()
    assert code == 1
    assert "injected runtime failure" in captured.err


def test_list_table_and_names(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("fig4a", "fig5a", "sweep", "table2", "end-of-life"):
        assert name in out

    code, out = run_cli(capsys, "list", "--names")
    assert code == 0
    names = out.split()
    assert "fig4a" in names and "scenario" in names


def test_describe_unknown_experiment_exits_2(capsys):
    code = main(["describe", "not-there"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown experiment" in captured.err


def test_describe_roundtrips_to_a_valid_invocation(capsys):
    """The printed `--param k=v` tokens must parse back into a valid
    request for the same experiment (validated without running)."""
    from repro import api
    for name in ("fig4a", "sweep", "end-of-life", "scenario"):
        code, out = run_cli(capsys, "describe", name)
        assert code == 0
        line = next(l for l in out.splitlines()
                    if l.strip().startswith("python -m repro run"))
        tokens = re.findall(r"--param (\S+)=(\S+)", line)
        assert tokens, line
        params = dict(tokens)
        handle = api.submit(api.RunRequest(name, params=params))
        # resolved values equal the declared defaults they were printed from
        for key, value in handle.params.items():
            default = next(p["default"] for p in api.describe(name)["params"]
                           if p["name"] == key)
            if default is not None:
                assert value == default, (name, key)


def test_sweep_shim_warns_deprecation(capsys):
    from repro._compat import reset_legacy_warnings
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning, match="repro sweep"):
        code = main(["sweep", "--rates", "0.0", "--repeats", "1",
                     "--images", "40", "--rows", "8", "--cols", "4"])
    captured = capsys.readouterr()
    assert code == 0
    assert "deprecated" in captured.err


def test_scenarios_run_shim_warns_deprecation(capsys):
    from repro._compat import reset_legacy_warnings
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning, match="repro scenarios run"):
        code = main(["scenarios", "run", "fresh-device", "--repeats", "1",
                     "--images", "40", "--rows", "8", "--cols", "4"])
    captured = capsys.readouterr()
    assert code == 0
    assert "deprecated" in captured.err
