"""Tests for journaled (resumable) campaigns."""

import json

import numpy as np
import pytest

from repro import nn
from repro.binary import QuantDense
from repro.core import CampaignJournal, FaultCampaign, FaultSpec


@pytest.fixture(scope="module")
def trained_setup():
    """A tiny trained BNN on a separable task, with held-out data."""
    rng = np.random.default_rng(0)
    n = 400
    x = rng.choice([-1.0, 1.0], size=(n, 16)).astype(np.float32)
    y = (x[:, :8].sum(axis=1) > 0).astype(int)
    model = nn.Sequential([
        QuantDense(32, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
        nn.Sign(),
        QuantDense(2, input_quantizer="ste_sign", kernel_quantizer="ste_sign"),
        nn.BatchNorm(),
    ]).build((16,), seed=0)
    trainer = nn.Trainer(nn.Adam(0.01), seed=0)
    trainer.fit(model, x[:300], y[:300], epochs=25, batch_size=32)
    return model, x[300:], y[300:]


class AbortAfter:
    """Executor wrapper that dies mid-grid, like a killed campaign."""

    name = "abort-after"

    def __init__(self, cells: int):
        self.cells = cells
        self.executed = 0

    def run_iter(self, jobs, evaluator):
        for job in jobs:
            if self.executed >= self.cells:
                raise KeyboardInterrupt("simulated kill")
            self.executed += 1
            yield evaluator.run_job(job)


KWARGS = dict(xs=[0.0, 0.25, 0.45], repeats=3, seed=11)


def test_journal_resume_mid_grid_reproduces_uninterrupted_run(
        trained_setup, tmp_path):
    model, x, y = trained_setup
    reference = FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, **KWARGS)

    journal = tmp_path / "sweep.jsonl"
    aborting = AbortAfter(4)
    campaign = FaultCampaign(model, x, y, rows=8, cols=4, executor=aborting)
    with pytest.raises(KeyboardInterrupt):
        campaign.run(FaultSpec.bitflip, journal=journal, **KWARGS)
    assert aborting.executed == 4

    finisher = AbortAfter(cells=10 ** 9)
    resumed = FaultCampaign(model, x, y, rows=8, cols=4,
                            executor=finisher).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    assert resumed.meta["resumed_cells"] == 4
    assert finisher.executed == 9 - 4  # only the missing cells re-ran
    np.testing.assert_array_equal(resumed.accuracies, reference.accuracies)
    assert resumed.baseline == reference.baseline


def test_completed_journal_resumes_without_evaluating(trained_setup, tmp_path):
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    first = FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    counter = AbortAfter(cells=10 ** 9)
    replay = FaultCampaign(model, x, y, rows=8, cols=4,
                           executor=counter).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    assert counter.executed == 0
    np.testing.assert_array_equal(first.accuracies, replay.accuracies)


def test_journal_tolerates_torn_final_line(trained_setup, tmp_path):
    """A write cut off mid-line (kill -9) just re-evaluates that cell."""
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    reference = FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    text = journal.read_text()
    lines = text.splitlines(keepends=True)
    journal.write_text("".join(lines[:-1]) + lines[-1][:17])  # tear the tail
    resumed = FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    assert resumed.meta["resumed_cells"] == 9 - 1
    np.testing.assert_array_equal(resumed.accuracies, reference.accuracies)


def test_journal_rejects_mismatched_grid(trained_setup, tmp_path):
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    campaign.run(FaultSpec.bitflip, journal=journal, **KWARGS)
    with pytest.raises(ValueError, match="different campaign"):
        campaign.run(FaultSpec.bitflip, journal=journal,
                     xs=[0.0, 0.5], repeats=3, seed=11)
    with pytest.raises(ValueError, match="different campaign"):
        campaign.run(FaultSpec.bitflip, journal=journal,
                     xs=KWARGS["xs"], repeats=3, seed=12)


def test_journal_rejects_different_data_or_model(trained_setup, tmp_path):
    """Cells evaluated on other data/weights must never mix into a
    resumed result — the header fingerprints both."""
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    with pytest.raises(ValueError, match="different campaign"):
        FaultCampaign(model, x[:50], y[:50], rows=8, cols=4).run(
            FaultSpec.bitflip, journal=journal, **KWARGS)
    mutated = x.copy()
    mutated[0, 0] = -mutated[0, 0]
    with pytest.raises(ValueError, match="different campaign"):
        FaultCampaign(model, mutated, y, rows=8, cols=4).run(
            FaultSpec.bitflip, journal=journal, **KWARGS)
    with pytest.raises(ValueError, match="different campaign"):
        FaultCampaign(model, x, y, rows=8, cols=4,
                      continue_time_across_layers=False).run(
            FaultSpec.bitflip, journal=journal, **KWARGS)


def test_journal_layer_restriction_as_tuple_resumes(trained_setup, tmp_path):
    """`layers` given as a tuple must resume its own journal (JSON
    round-trips sequences as lists)."""
    model, x, y = trained_setup
    name = model.layers[0].name
    journal = tmp_path / "layers.jsonl"
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    first = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2,
                         seed=0, layers=(name,), journal=journal)
    again = campaign.run(FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2,
                         seed=0, layers=(name,), journal=journal)
    assert again.meta["resumed_cells"] == 4
    np.testing.assert_array_equal(first.accuracies, again.accuracies)


def test_journal_rejects_different_fault_spec(trained_setup, tmp_path):
    """Same grid, different fault specification must not mix."""
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    campaign.run(FaultSpec.bitflip, journal=journal, **KWARGS)
    with pytest.raises(ValueError, match="different campaign"):
        campaign.run(FaultSpec.stuck_at, journal=journal, **KWARGS)
    # same sweep axis (periods), different fixed rate behind the factory
    periods = tmp_path / "periods.jsonl"
    campaign.run(lambda n: FaultSpec.bitflip(0.1, period=int(n)),
                 xs=[0, 2], repeats=2, seed=0, journal=periods)
    with pytest.raises(ValueError, match="different campaign"):
        campaign.run(lambda n: FaultSpec.bitflip(0.2, period=int(n)),
                     xs=[0, 2], repeats=2, seed=0, journal=periods)


def test_build_jobs_skip_preserves_remaining_plans(trained_setup):
    """Skipping journaled cells must not disturb the other cells' plans
    (each job seed is a pure function of its coordinates)."""
    from repro.core import build_jobs

    model, _, _ = trained_setup
    full = build_jobs(model, FaultSpec.bitflip, [0.2, 0.4], 3, 7, 8, 4)
    skip = {(0, 0), (0, 1), (0, 2), (1, 1)}  # point 0 entirely + one cell
    partial = build_jobs(model, FaultSpec.bitflip, [0.2, 0.4], 3, 7, 8, 4,
                         skip=skip)
    assert {(job.point_index, job.repeat_index) for job in partial} == \
        {(1, 0), (1, 2)}
    by_coord = {(job.point_index, job.repeat_index): job for job in full}
    for job in partial:
        reference = by_coord[(job.point_index, job.repeat_index)]
        assert job.seed == reference.seed
        for name in job.plan:
            np.testing.assert_array_equal(job.plan[name].flip_mask,
                                          reference.plan[name].flip_mask)


def test_journal_rejects_foreign_file(trained_setup, tmp_path):
    model, x, y = trained_setup
    journal = tmp_path / "not_a_journal.jsonl"
    journal.write_text("this is not json\n")
    campaign = FaultCampaign(model, x, y, rows=8, cols=4)
    with pytest.raises(ValueError, match="not a campaign journal"):
        campaign.run(FaultSpec.bitflip, journal=journal, **KWARGS)


def test_journal_file_layout(trained_setup, tmp_path):
    model, x, y = trained_setup
    journal = tmp_path / "sweep.jsonl"
    FaultCampaign(model, x, y, rows=8, cols=4, backend="float").run(
        FaultSpec.bitflip, journal=journal, **KWARGS)
    lines = [json.loads(line) for line in journal.read_text().splitlines()]
    header, cells = lines[0], lines[1:]
    assert header["kind"] == "header"
    assert header["xs"] == KWARGS["xs"]
    assert header["repeats"] == KWARGS["repeats"]
    assert header["backend"] == "float"
    assert len(cells) == len(KWARGS["xs"]) * KWARGS["repeats"]
    coords = {(cell["point"], cell["repeat"]) for cell in cells}
    assert coords == {(i, j) for i in range(3) for j in range(3)}
    for cell in cells:
        assert cell["x"] == KWARGS["xs"][cell["point"]]
        assert 0.0 <= cell["accuracy"] <= 1.0


def test_progress_callback_reports_every_cell(trained_setup, tmp_path):
    model, x, y = trained_setup
    seen = []
    FaultCampaign(model, x, y, rows=8, cols=4).run(
        FaultSpec.bitflip, xs=[0.0, 0.3], repeats=2, seed=0,
        progress=lambda done, total, cell: seen.append((done, total, cell)))
    assert [done for done, _, _ in seen] == [1, 2, 3, 4]
    assert all(total == 4 for _, total, _ in seen)


def test_campaign_journal_direct_api(tmp_path):
    header = {"xs": [0.0], "repeats": 1, "seed": 0, "rows": 8, "cols": 4,
              "layers": None, "backend": "float", "label": "t"}
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path, header) as journal:
        journal.record(0, 0, 0.0, 0.5)
    with CampaignJournal(path, header) as journal:
        assert journal.completed == {(0, 0): 0.5}
