"""Tests for the energy/latency and lifetime-reliability models."""

import numpy as np
import pytest

from repro.binary import QuantDense
from repro.lim import (EnduranceModel, EnergyParams, estimate_layer_cost,
                       estimate_model_cost, lifetime_fault_rates)
from repro.models import build_lenet


def dense_layer(units=8, features=64):
    layer = QuantDense(units, input_quantizer="ste_sign")
    layer.build((features,), np.random.default_rng(0))
    return layer


def test_layer_cost_scales_with_ops():
    small = estimate_layer_cost(dense_layer(units=4), 8, 4)
    big = estimate_layer_cost(dense_layer(units=16), 8, 4)
    assert big.xnor_ops > small.xnor_ops
    assert big.energy_nj > small.energy_nj
    assert big.latency_us > small.latency_us


def test_imply_costs_more_than_magic():
    """IMPLY's 11-step program must cost more than MAGIC's 3 steps."""
    layer = dense_layer()
    imply = estimate_layer_cost(layer, 8, 4, gate_family="imply")
    magic = estimate_layer_cost(layer, 8, 4, gate_family="magic")
    assert imply.driver_steps > magic.driver_steps
    assert imply.latency_us > magic.latency_us
    assert imply.xnor_ops == magic.xnor_ops  # same logical work


def test_model_cost_covers_mapped_layers():
    model = build_lenet()
    costs = estimate_model_cost(model)
    assert [c.layer for c in costs] == ["conv1", "conv2", "dense0", "dense1"]
    assert all(c.energy_nj > 0 for c in costs)


def test_energy_params_influence():
    layer = dense_layer()
    cheap = estimate_layer_cost(layer, 8, 4,
                                params=EnergyParams(write_energy_pj=0.1))
    pricey = estimate_layer_cost(layer, 8, 4,
                                 params=EnergyParams(write_energy_pj=1.0))
    assert pricey.energy_nj > cheap.energy_nj


def test_endurance_stuck_fraction_monotone():
    model = EnduranceModel(mean_cycles=1e6, shape=2.0)
    ages = [0, 1e5, 1e6, 1e7]
    fractions = [model.stuck_fraction(age) for age in ages]
    assert fractions[0] == 0.0
    assert all(a <= b for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] > 0.99


def test_endurance_mean_is_characteristic():
    """At the mean endurance, roughly half the cells have failed."""
    model = EnduranceModel(mean_cycles=1e6, shape=2.0)
    assert 0.3 < model.stuck_fraction(1e6) < 0.8


def test_upset_probability_small_rate():
    model = EnduranceModel(upset_rate_per_cycle=1e-9)
    p = model.upset_probability(1e6)
    assert p == pytest.approx(1e-3, rel=0.01)


def test_endurance_validation():
    with pytest.raises(ValueError):
        EnduranceModel(mean_cycles=0)


def test_lifetime_fault_rates_series():
    points = lifetime_fault_rates(
        model_cycles_per_inference=1e4,
        ages=[0.0, 1e7, 1e8, 1e9],
        endurance=EnduranceModel(mean_cycles=1e8))
    assert len(points) == 4
    stuck = [p.stuck_rate for p in points]
    assert stuck[0] == 0.0
    assert stuck == sorted(stuck)
    # transient rate is age-independent (environmental)
    flips = {p.bitflip_rate for p in points}
    assert len(flips) == 1
