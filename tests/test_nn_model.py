"""Tests for the Sequential container: build, predict, persistence."""

import numpy as np
import pytest

from repro import nn


def make_mlp():
    return nn.Sequential([
        nn.Dense(16),
        nn.BatchNorm(),
        nn.ReLU(),
        nn.Dense(3),
    ], name="mlp")


def test_build_sets_shapes():
    model = make_mlp().build((8,), seed=0)
    assert model.built
    assert model.input_shape == (8,)
    assert model.output_shape == (3,)


def test_forward_requires_build(rng):
    model = make_mlp()
    with pytest.raises(RuntimeError):
        model.forward(rng.standard_normal((2, 8)))


def test_predict_batching_consistent(rng):
    model = make_mlp().build((8,), seed=0)
    x = rng.standard_normal((50, 8)).astype(np.float32)
    full = model.predict(x, batch_size=50)
    chunked = model.predict(x, batch_size=7)
    np.testing.assert_allclose(full, chunked, rtol=1e-6)


def test_evaluate_accuracy_bounds(rng):
    model = make_mlp().build((8,), seed=0)
    x = rng.standard_normal((20, 8)).astype(np.float32)
    y = rng.integers(0, 3, 20)
    acc = model.evaluate(x, y)
    assert 0.0 <= acc <= 1.0


def test_state_dict_roundtrip(rng, tmp_path):
    model = make_mlp().build((8,), seed=0)
    x = rng.standard_normal((4, 8)).astype(np.float32)
    before = model.predict(x)
    path = tmp_path / "weights.npz"
    model.save_weights(path)

    # a freshly built model with a different seed diverges...
    other = make_mlp().build((8,), seed=99)
    assert not np.allclose(other.predict(x), before)
    # ...until the saved state is loaded
    other.load_weights(path)
    np.testing.assert_allclose(other.predict(x), before, rtol=1e-6)


def test_num_params_counts_everything():
    model = make_mlp().build((8,), seed=0)
    # dense(8->16)+bias + bn(gamma+beta) + dense(16->3)+bias
    expected = (8 * 16 + 16) + (16 + 16) + (16 * 3 + 3)
    assert model.num_params() == expected


def test_summary_mentions_layers():
    model = make_mlp().build((8,), seed=0)
    text = model.summary()
    assert "total params" in text
    assert "mlp" in text


def test_layers_of_type():
    model = make_mlp().build((8,), seed=0)
    assert len(model.layers_of_type(nn.Dense)) == 2
    assert len(model.layers_of_type(nn.BatchNorm)) == 1
