"""Tests for the fault-mapping arithmetic."""

import numpy as np
import pytest

from repro.binary import QuantConv2D, QuantDense
from repro.core import LayerMapping, tile_vector


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


def dense_layer(units=6, features=20):
    return build(QuantDense(units, input_quantizer="ste_sign"), (features,))


def conv_layer():
    return build(QuantConv2D(8, 3, padding="same", input_quantizer="ste_sign"),
                 (8, 8, 4))


def test_tile_vector_exact_length():
    v = np.array([True, False, True])
    tiled = tile_vector(v, 8)
    np.testing.assert_array_equal(
        tiled, [True, False, True, True, False, True, True, False])


def test_tile_vector_shorter_than_pattern():
    v = np.arange(10)
    np.testing.assert_array_equal(tile_vector(v, 3), [0, 1, 2])


def test_tile_vector_empty_rejected():
    with pytest.raises(ValueError):
        tile_vector(np.array([]), 5)


def test_mapping_requires_mapped_layer():
    unmapped = build(QuantConv2D(4, 3), (8, 8, 1))  # real-valued input
    with pytest.raises(ValueError):
        LayerMapping(unmapped, 4, 4)


def test_mapping_requires_built_layer():
    with pytest.raises(ValueError):
        LayerMapping(QuantDense(4, input_quantizer="ste_sign"), 4, 4)


def test_op_accounting_dense():
    layer = dense_layer(units=6, features=20)
    mapping = LayerMapping(layer, 8, 3)
    assert mapping.parallel_ops == 24
    assert mapping.total_ops == 20 * 6
    report = mapping.describe()
    assert report["xnor_ops_per_image"] == 120
    assert report["crossbar"] == (8, 3)


def test_op_accounting_conv():
    layer = conv_layer()
    mapping = LayerMapping(layer, 40, 10)
    # 8x8 same-padded output, 8 filters, K = 3*3*4
    assert mapping.total_ops == 64 * 8 * 36
    assert mapping.cell_reuse == pytest.approx(64 * 8 * 36 / 400)


def test_weight_plane_residue_rule():
    layer = dense_layer(units=6, features=20)
    mapping = LayerMapping(layer, 8, 3)
    mask = np.zeros((8, 3), dtype=bool)
    mask[2, 1] = True
    plane = mapping.weight_plane(mask)
    assert plane.shape == (20, 6)
    want = np.zeros((20, 6), dtype=bool)
    for t in range(20):
        for f in range(6):
            want[t, f] = (t % 8 == 2) and (f % 3 == 1)
    np.testing.assert_array_equal(plane, want)


def test_weight_stuck_planes_bipolar_values():
    layer = dense_layer()
    mapping = LayerMapping(layer, 8, 3)
    mask = np.ones((8, 3), dtype=bool)
    values = np.zeros((8, 3), dtype=np.uint8)
    values[0, 0] = 1
    kmask, kvals = mapping.weight_stuck_planes(mask, values)
    assert kmask.all()
    assert set(np.unique(kvals)) <= {-1.0, 1.0}
    assert kvals[0, 0] == 1.0
    assert kvals[1, 1] == -1.0


def test_output_selector_static():
    layer = dense_layer(units=6, features=20)
    mapping = LayerMapping(layer, 2, 2)  # mask of 4 elements tiles over 6 outputs
    vector = np.array([True, False, False, False])
    selector = mapping.output_flip_selector(vector)
    np.testing.assert_array_equal(selector, [True, False, False, False, True, False])


def test_output_selector_dynamic_period():
    layer = dense_layer(units=6, features=20)
    mapping = LayerMapping(layer, 2, 2)
    vector = np.array([True, False, False, False])
    # occurrence = output_index // 4; period 2 keeps occurrences 0, 2, ...
    selector = mapping.output_flip_selector(vector, period=2)
    np.testing.assert_array_equal(selector, [True, False, False, False, False, False])
    # with a time offset of 1, the first occurrence is odd -> suppressed
    shifted = mapping.output_flip_selector(vector, period=2, time_offset=1)
    np.testing.assert_array_equal(shifted, [False, False, False, False, True, False])


def test_product_cells_enumeration():
    layer = dense_layer()
    mapping = LayerMapping(layer, 4, 4)
    mask = np.zeros((4, 4), dtype=bool)
    mask[1, 2] = mask[3, 0] = True
    assert set(mapping.product_cells(mask)) == {(1, 2), (3, 0)}
