"""End-to-end tests for the campaign service.

Three layers of proof, each stronger than the last:

* **parity** (in-process server): a campaign submitted over the service
  streams *bit-for-bit* the same event sequence a direct
  :class:`~repro.api.handle.RunHandle` run emits — same types, same
  fields, same order — and its fetched report equals the direct
  report's wire form exactly.
* **durability** (subprocess server): a ``--durable`` job survives
  ``SIGKILL`` mid-campaign; the restarted server re-enqueues it from
  the job store, resumes from its journal, and completes.  Claim
  tokens (:class:`repro.testing.chaos.ChaosSpec`, one token per grid
  cell across both server lives) prove no finished cell was ever
  re-evaluated, and the final report is canonically identical to a
  direct run of the same request.
* **lifecycle**: queue backpressure (503), per-client budget refusal
  (429), cancellation, and failed-job reporting over the same wire.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import service_support  # noqa: F401  (registers svc-tiny)
from repro import api
from repro.api.events import (CellDone, JobStateChanged, RunFinished,
                              TelemetrySnapshot)
from repro.api.request import RunRequest
from repro.service import (RequestRefused, ServiceClient, ServiceError,
                           start_in_thread, wire)
from repro.service.jobs import JobState

REPO = Path(__file__).resolve().parents[1]

#: the sweep the e2e jobs run: 4 rates x 3 repeats = 12 cells
PARAMS = {"rates": [0.0, 0.1, 0.2, 0.3], "repeats": 3}
TOTAL_CELLS = 12


# -- parity: service run == direct run, bit for bit ------------------------

def _without_telemetry(report_dict):
    """A report's wire form minus ``meta["telemetry"]`` — span timings
    are wall-clock and legitimately differ between two runs; everything
    else must stay bit-identical."""
    payload = dict(report_dict)
    meta = dict(payload.get("meta", {}))
    meta.pop("telemetry", None)
    payload["meta"] = meta
    return payload


def test_service_stream_matches_direct_run_bit_for_bit(tmp_path):
    request = RunRequest("svc-tiny", params=PARAMS)

    direct_events = []
    direct_handle = api.submit(request)
    direct_handle.subscribe(direct_events.append)
    direct_report = direct_handle.run()

    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        record = client.submit(request)
        streamed, final = [], None
        for kind, item in client.stream(record.job_id, timeout=120):
            if kind == "end":
                final = item
            else:
                streamed.append(item)
        result = client.result(record.job_id)

    assert final.state is JobState.DONE
    # the service interleaves its lifecycle events; everything else is
    # the run's own stream and must match the direct run exactly
    lifecycle = [e for e in streamed if isinstance(e, JobStateChanged)]
    assert [e.state for e in lifecycle] == ["queued", "running", "done"]
    run_events = [e for e in streamed if not isinstance(e, JobStateChanged)]
    # the telemetry snapshot carries wall-clock span timings, so only
    # its shape is comparable across two runs; the rest of the stream
    # (and each RunFinished report minus telemetry) is bit-identical
    snapshots = [e for e in run_events if isinstance(e, TelemetrySnapshot)]
    direct_snapshots = [e for e in direct_events
                        if isinstance(e, TelemetrySnapshot)]
    assert len(snapshots) == len(direct_snapshots) == 1
    assert sorted(snapshots[0].phases) == sorted(direct_snapshots[0].phases)
    assert snapshots[0].counters == direct_snapshots[0].counters

    def comparable(events):
        return [_without_telemetry(e.report.to_dict())
                if isinstance(e, RunFinished) else e
                for e in events if not isinstance(e, TelemetrySnapshot)]

    assert comparable(run_events) == comparable(direct_events)
    assert _without_telemetry(result) \
        == _without_telemetry(direct_report.to_dict())
    # and the RunFinished frame carried the identical report inline
    finished = [e for e in run_events if isinstance(e, RunFinished)]
    assert len(finished) == 1
    assert _without_telemetry(finished[0].report.to_dict()) \
        == _without_telemetry(direct_report.to_dict())


def test_quick_submission_over_cli_roundtrip(tmp_path, capsys):
    """The CLI pair against an in-process server: submit → watch →
    fetch, exercising the renderer's JobStateChanged branch."""
    from repro.cli import main

    with start_in_thread(tmp_path / "store", workers=1) as port:
        code = main(["submit", "svc-tiny", "--quick",
                     "--port", str(port)])
        out = capsys.readouterr()
        assert code == 0
        job_id = out.out.strip().splitlines()[-1]
        assert job_id.startswith("job-")

        code = main(["watch", job_id, "--port", str(port)])
        out = capsys.readouterr()
        assert code == 0
        assert f"job {job_id}: done" in out.out

        report_path = tmp_path / "fetched.json"
        code = main(["fetch", job_id, "--port", str(port),
                     "--out", str(report_path)])
        out = capsys.readouterr()
        assert code == 0
        assert "experiment: svc-tiny" in out.out
        payload = json.loads(report_path.read_text())
        direct = api.run("svc-tiny", quick=True)
        assert _without_telemetry(payload) \
            == _without_telemetry(direct.to_dict())


# -- SSE replay: ?since=N is an exact suffix cursor ------------------------

def test_sse_since_replays_in_order_without_duplicates(tmp_path):
    """``?since=N`` must replay exactly the frames past N, in original
    sequence order, never duplicating — with the telemetry frame
    interleaved at its recorded position like any other event."""
    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        record = client.submit(RunRequest("svc-tiny", params=PARAMS))
        full = []
        for kind, item in client.stream(record.job_id, timeout=120):
            if kind == "end":
                assert item.state is JobState.DONE
            else:
                full.append(item)
        # the stream carries exactly one telemetry frame, after the
        # last CellDone and before RunFinished
        kinds = [type(e).__name__ for e in full]
        assert kinds.count("TelemetrySnapshot") == 1
        assert kinds.index("TelemetrySnapshot") \
            > max(i for i, k in enumerate(kinds) if k == "CellDone")
        assert kinds.index("TelemetrySnapshot") \
            < kinds.index("RunFinished")
        # every cursor yields the exact suffix — order preserved, no
        # frame repeated, no frame skipped
        for cursor in (0, 1, len(full) // 2, len(full) - 1, len(full)):
            replayed = [item for kind, item
                        in client.stream(record.job_id, since=cursor,
                                         timeout=60)
                        if kind != "end"]
            assert replayed == full[cursor:]


# -- durability: SIGKILL mid-campaign, restart, resume ---------------------

class ServerProcess:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, store: Path, port_file: Path, claim_dir: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src"), str(REPO / "tests")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        env["REPRO_SVC_CLAIM"] = str(claim_dir)
        env["REPRO_N_JOBS"] = "1"
        port_file.unlink(missing_ok=True)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), "--store", str(store),
             "--workers", "1", "--preload", "service_support"],
            env=env, cwd=str(REPO), stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT)
        # a live subprocess can only be awaited on the wall clock
        deadline = time.monotonic() + 60  # repro: allow[no-wall-clock]
        while not port_file.exists():
            if self.process.poll() is not None:
                raise RuntimeError("server died during startup")
            if time.monotonic() > deadline:  # repro: allow[no-wall-clock]
                self.process.kill()
                raise RuntimeError("server did not write its port file")
            time.sleep(0.05)
        self.port = int(port_file.read_text().strip())

    def sigkill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)


def test_sigkill_midcampaign_restart_resumes_from_journal(tmp_path):
    store = tmp_path / "store"
    port_file = tmp_path / "port"
    claim_dir = tmp_path / "claims"
    claim_dir.mkdir()
    params = {**PARAMS, "delay": 0.25}

    server = ServerProcess(store, port_file, claim_dir)
    try:
        client = ServiceClient(port=server.port)
        record = client.submit(RunRequest("svc-tiny", params=params),
                               durable=True)
        assert record.durable

        # first life: let a few cells land, then SIGKILL mid-campaign
        first_life_cells = 0
        with pytest.raises(ServiceError):
            for kind, item in client.stream(record.job_id, timeout=120):
                if kind == "event" and isinstance(item, CellDone):
                    first_life_cells += 1
                    if first_life_cells >= 3:
                        server.sigkill()
        assert 3 <= first_life_cells < TOTAL_CELLS
        journal = store / "journals" / f"{record.job_id}.jsonl"
        assert journal.exists() and journal.stat().st_size > 0

        # second life: same store — the job must come back, resume,
        # and finish without re-evaluating any journaled cell (the
        # claim tokens turn a re-run into a FAILED job)
        server = ServerProcess(store, port_file, claim_dir)
        client = ServiceClient(port=server.port)
        second_life_events = []
        final = client.watch(record.job_id,
                             on_event=second_life_events.append)
        assert final.state is JobState.DONE, final.error
        assert final.resumes >= 1

        result = client.result(record.job_id)
        resumed = result["meta"]["resumed_cells"]
        assert resumed >= 3  # every journaled first-life cell came back
        fresh = [e for e in second_life_events
                 if isinstance(e, CellDone)]
        assert len(fresh) == TOTAL_CELLS - resumed
        fresh_cells = {(e.point, e.repeat) for e in fresh}
        assert len(fresh_cells) == len(fresh)  # no cell emitted twice
        assert fresh_cells <= {(p, r) for p in range(4) for r in range(3)}
        # SSE replay across the restart: the second life's buffer is a
        # fresh sequence, and ?since=N is still an exact suffix cursor
        # over it — original order, no duplicates, telemetry included
        second_life = [item for kind, item
                       in client.stream(record.job_id, timeout=60)
                       if kind != "end"]
        kinds = [type(e).__name__ for e in second_life]
        assert kinds.count("TelemetrySnapshot") == 1
        mid = len(second_life) // 2
        replayed = [item for kind, item
                    in client.stream(record.job_id, since=mid, timeout=60)
                    if kind != "end"]
        assert replayed == second_life[mid:]
        # after completion the journal holds the full grid exactly once
        assert sorted(_journaled_cells(journal)) \
            == sorted((p, r) for p in range(4) for r in range(3))
    finally:
        server.terminate()

    # one claim token per cell across BOTH lives — nothing ran twice
    claimed = sorted(p.name for p in claim_dir.glob("cell-*.claimed"))
    assert len(claimed) == TOTAL_CELLS

    # bit-identity: the service's post-kill-resume report equals a
    # direct in-process run of the same request (modulo journal/cache
    # bookkeeping, which canonical_result strips)
    direct = api.run("svc-tiny", params=params)
    assert wire.canonical_result(result) \
        == wire.canonical_result(direct.to_dict())


def _journaled_cells(journal: Path):
    cells = []
    for line in journal.read_text().splitlines()[1:]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail
        if "point" in payload:
            cells.append((payload["point"], payload["repeat"]))
    return cells


# -- lifecycle: backpressure, budgets, cancellation, failures --------------

def test_queue_backpressure_and_budget(tmp_path):
    request = RunRequest("svc-tiny", params={**PARAMS, "delay": 0.2})
    with start_in_thread(tmp_path / "store", workers=1, queue_size=1,
                         client_budget_bytes=600 << 20) as port:
        client = ServiceClient(port=port)
        first = client.submit(request)
        # budget: 600 MiB admits two default-charged jobs (256 MiB
        # each), refuses the third with 429
        second = client.submit(request)
        with pytest.raises(RequestRefused) as refusal:
            client.submit(request)
        assert refusal.value.status == 429
        # a small-cache job still fits under the budget, but the
        # 1-slot queue is now full -> 503 backpressure (a server-side
        # "retry later", not a client validation error)
        small = RunRequest("svc-tiny", params=PARAMS,
                           cache_bytes=1 << 20)
        with pytest.raises(ServiceError) as busy:
            client.submit(small)
        assert busy.value.status == 503
        for record in (first, second):
            assert client.watch(record.job_id).state is JobState.DONE


def test_cancel_queued_and_running_jobs(tmp_path):
    slow = RunRequest("svc-tiny", params={**PARAMS, "delay": 0.3})
    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        running = client.submit(slow)
        queued = client.submit(slow)

        cancelled = client.cancel(queued.job_id)
        assert cancelled.state is JobState.CANCELLED

        # wait until the first job actually runs, then cancel it
        deadline = time.monotonic() + 60  # repro: allow[no-wall-clock]
        while client.job(running.job_id).state is JobState.QUEUED:
            assert time.monotonic() < deadline  # repro: allow[no-wall-clock]
            time.sleep(0.05)
        client.cancel(running.job_id)
        final = client.watch(running.job_id)
        assert final.state is JobState.CANCELLED
        with pytest.raises(RequestRefused) as refusal:
            client.result(running.job_id)
        assert refusal.value.status == 409


def test_failed_job_reports_its_error(tmp_path):
    # an out-of-range injection rate passes request validation (params
    # content is the experiment's concern) but fails inside the run
    bad = RunRequest("svc-tiny", params={**PARAMS, "rates": [2.0]})
    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        record = client.submit(bad)
        final = client.watch(record.job_id)
        assert final.state is JobState.FAILED
        assert "rate must be in [0, 1]" in final.error


def test_unknown_job_is_404(tmp_path):
    with start_in_thread(tmp_path / "store", workers=1) as port:
        client = ServiceClient(port=port)
        with pytest.raises(RequestRefused) as refusal:
            client.job("job-nope")
        assert refusal.value.status == 404
