"""Tests for the crossbar periphery models (sense amp, write-verify)."""

import numpy as np
import pytest

from repro.lim import CellArray, DeviceParams
from repro.lim.periphery import SenseAmplifier, WriteVerifyProgrammer


def healthy_cells(n=64, variability=0.0, seed=0):
    cells = CellArray((n,), DeviceParams(variability=variability), seed=seed)
    bits = (np.arange(n) % 2).astype(np.uint8)
    cells.write(bits)
    return cells, bits


def test_ideal_sense_reads_correctly():
    cells, bits = healthy_cells()
    sense = SenseAmplifier(offset_sigma=0.0, noise_sigma=0.0)
    np.testing.assert_array_equal(sense.read(cells), bits)


def test_noisy_sense_still_correct_with_wide_margin():
    """A two-decade HRS/LRS window swallows realistic SA non-idealities."""
    cells, bits = healthy_cells(variability=0.05)
    sense = SenseAmplifier(offset_sigma=0.05, noise_sigma=0.02, seed=1)
    np.testing.assert_array_equal(sense.read(cells), bits)


def test_sense_offset_is_static_per_instance():
    a = SenseAmplifier(offset_sigma=0.1, seed=3)
    b = SenseAmplifier(offset_sigma=0.1, seed=4)
    assert a._offset != b._offset


def test_misread_probability_small_for_healthy_cells():
    cells, _ = healthy_cells()
    sense = SenseAmplifier(offset_sigma=0.0, noise_sigma=0.05)
    probs = sense.misread_probability(cells)
    assert (probs < 1e-6).all()


def test_misread_probability_rises_near_threshold():
    cells, _ = healthy_cells(n=2)
    # drag one cell's resistance to the decision threshold
    cells.resistance[0] = cells.params.r_threshold * 1.05
    sense = SenseAmplifier(offset_sigma=0.0, noise_sigma=0.05)
    probs = sense.misread_probability(cells)
    assert probs[0] > 0.1          # marginal cell misreads often
    assert probs[1] < 1e-6         # healthy cell does not


def test_write_verify_passes_healthy_cells():
    cells, bits = healthy_cells()
    programmer = WriteVerifyProgrammer(
        max_attempts=3, sense=SenseAmplifier(offset_sigma=0.0, noise_sigma=0.0))
    verified, attempts = programmer.program(cells, bits)
    assert verified.all()
    np.testing.assert_array_equal(attempts, np.ones_like(attempts))


def test_write_verify_flags_stuck_cells():
    from repro.lim import Health
    cells, bits = healthy_cells()
    cells.set_health(np.s_[0], Health.STUCK_HRS)
    want = bits.copy()
    want[0] = 1  # ask the stuck-low cell for a 1 it can never hold
    programmer = WriteVerifyProgrammer(
        max_attempts=3, sense=SenseAmplifier(offset_sigma=0.0, noise_sigma=0.0))
    verified, attempts = programmer.program(cells, want)
    assert not verified[0]
    assert attempts[0] == 3        # exhausted the retry budget
    assert verified[1:].all()


def test_write_verify_validation():
    with pytest.raises(ValueError):
        WriteVerifyProgrammer(max_attempts=0)


def test_write_verify_attempt_counts_feed_endurance():
    """Every retry is a switching event visible to the wear counters."""
    cells, bits = healthy_cells()
    before = cells.write_count.copy()
    programmer = WriteVerifyProgrammer(
        max_attempts=2, sense=SenseAmplifier(offset_sigma=0.0, noise_sigma=0.0))
    programmer.program(cells, bits)
    assert (cells.write_count > before).all()
