#!/usr/bin/env python
"""Snippet-runner and link-checker for README.md and docs/.

Keeps the documentation honest:

* every fenced ``python`` code block must at least *compile*;
* blocks annotated with ``<!-- check-docs: run -->`` on the line above
  the fence are **executed** (in a fresh namespace, with ``src/`` on the
  path and a temporary working directory) — the architecture/fault-model
  walkthroughs are living tests;
* every relative markdown link ``[text](path)`` must resolve to a file
  or directory in the repository (fragments and ``http(s)``/``mailto``
  links are skipped).

Exit status is non-zero on any failure, so CI can gate on it::

    python scripts/check_docs.py            # checks README.md + docs/*.md
    python scripts/check_docs.py FILE.md... # or an explicit file list
"""

from __future__ import annotations

import re
import sys
import tempfile
import traceback
from contextlib import chdir
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RUN_MARKER = "<!-- check-docs: run -->"

#: ``[text](target)`` — excluding images is unnecessary (same resolution)
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def iter_code_blocks(text: str):
    """Yield ``(start_line, language, marked_run, source)`` per fence."""
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = _FENCE.match(lines[index])
        if match and match.group(1):
            language = match.group(1)
            marked = index > 0 and lines[index - 1].strip() == RUN_MARKER
            body: list[str] = []
            start = index + 1
            index += 1
            while index < len(lines) and lines[index].strip() != "```":
                body.append(lines[index])
                index += 1
            yield start, language, marked, "\n".join(body) + "\n"
        index += 1


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def check_python_blocks(path: Path, text: str) -> list[str]:
    errors = []
    for start, language, marked, source in iter_code_blocks(text):
        if language != "python":
            continue
        label = f"{path}:{start}"
        try:
            code = compile(source, f"{label} (doc snippet)", "exec")
        except SyntaxError:
            errors.append(f"{label}: snippet does not compile\n"
                          + traceback.format_exc(limit=0))
            continue
        if not marked:
            continue
        # run-marked snippets execute in a scratch directory so any files
        # they create (journals, vectors) never litter the repository
        namespace = {"__name__": "__check_docs__"}
        try:
            with tempfile.TemporaryDirectory() as scratch, chdir(scratch):
                exec(code, namespace)
        except Exception:
            errors.append(f"{label}: snippet raised\n"
                          + traceback.format_exc(limit=3))
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    sys.path.insert(0, str(REPO / "src"))
    errors: list[str] = []
    checked_blocks = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        errors.extend(check_links(path, text))
        errors.extend(check_python_blocks(path, text))
        checked_blocks += sum(1 for _, language, _, _ in
                              iter_code_blocks(text)
                              if language == "python")
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    print(f"checked {len(files)} files, {checked_blocks} python blocks: "
          + ("OK" if not errors else f"{len(errors)} problem(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
