"""The job store: what survives a killed server.

One directory holds everything a server needs to pick up where a
previous life stopped::

    <store>/jobs/<job_id>.json      job record snapshots (atomic writes)
    <store>/results/<job_id>.json   finished reports, wire form
    <store>/journals/<job_id>.jsonl campaign journals of durable jobs

Records are rewritten atomically on every transition
(:func:`repro.api.report.atomic_write_text`), so a SIGKILL at any
instant leaves each job either at its previous state or its new one,
never torn.  On startup :meth:`JobStore.recover` re-enqueues every
non-terminal job: ``queued`` jobs restart from scratch, ``running``
durable jobs take the ``running → queued`` edge with ``resume=True``
against their journal — the campaign engine then replays finished cells
from the journal without re-evaluating them.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from ..api.report import atomic_write_text
from . import wire
from .jobs import TERMINAL, JobRecord, JobState

__all__ = ["JobStore"]


class JobStore:
    """Filesystem persistence for job records, results and journals."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        for sub in ("jobs", "results", "journals"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def record_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    def journal_path(self, job_id: str) -> Path:
        return self.root / "journals" / f"{job_id}.jsonl"

    # -- records --------------------------------------------------------
    def save_record(self, record: JobRecord) -> None:
        payload = wire.encode_job(record)
        atomic_write_text(self.record_path(record.job_id),
                          json.dumps(payload, indent=2) + "\n")

    def load_records(self) -> list[JobRecord]:
        """Every persisted record, in submission (``seq``) order."""
        records = []
        for path in sorted((self.root / "jobs").glob("*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            records.append(wire.decode_job(payload))
        records.sort(key=lambda record: record.seq)
        return records

    def next_seq(self) -> int:
        """The submission sequence number for a new job."""
        records = self.load_records()
        return 1 + max((record.seq for record in records), default=0)

    # -- results --------------------------------------------------------
    def save_result(self, job_id: str, report_payload: dict) -> None:
        atomic_write_text(self.result_path(job_id),
                          json.dumps(report_payload, indent=2) + "\n")

    def load_result(self, job_id: str) -> dict | None:
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # -- recovery -------------------------------------------------------
    def recover(self) -> tuple[list[JobRecord], list[JobRecord]]:
        """Split persisted records into ``(finished, to_requeue)``.

        Non-terminal records come back ready to enqueue: a ``running``
        record (the server died under it) is flipped back to ``queued``
        with its resume counter bumped; for durable jobs the runner
        will then arm ``resume=True`` against :meth:`journal_path`.
        The flipped state is persisted immediately so a crash during
        recovery itself cannot double-bump counters on the next life.
        """
        finished, to_requeue = [], []
        for record in self.load_records():
            if record.state in TERMINAL:
                finished.append(record)
                continue
            if record.state is JobState.RUNNING:
                record = replace(record, state=JobState.QUEUED,
                                 resumes=record.resumes + 1)
                self.save_record(record)
            to_requeue.append(record)
        return finished, to_requeue
