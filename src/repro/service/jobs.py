"""Job lifecycle: the typed state machine every service job follows.

A job is one submitted :class:`~repro.api.request.RunRequest` moving
through ``queued → running → done | failed | cancelled``.  Two views of
the same job exist:

* :class:`JobRecord` — the frozen snapshot that crosses the wire and
  lands in the job store.  Pure data, safe to persist and compare.
* :class:`Job` — the server's live object: the record plus the
  buffered event frames, the asyncio wakeup machinery event streams
  wait on, and the cancellation flag the worker checks.

State transitions are validated (:data:`TRANSITIONS`); the one
non-obvious edge is ``running → queued``, taken when a killed server
restarts and re-enqueues the jobs that were mid-flight — durable jobs
then resume from their journal, skipping every finished cell.
"""

from __future__ import annotations

import asyncio
import enum
import os
from dataclasses import dataclass, replace

from ..api.request import RunRequest

__all__ = ["Job", "JobCancelled", "JobRecord", "JobState", "TERMINAL",
           "TRANSITIONS", "new_job_id"]


class JobState(str, enum.Enum):
    """Lifecycle states, mirrored to clients as ``JobStateChanged``."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job never leaves
TERMINAL = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})

#: the allowed edges of the lifecycle graph.  ``RUNNING → QUEUED`` is
#: the restart-requeue edge; ``QUEUED → CANCELLED`` cancels a job that
#: never started.
TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED,
                                 JobState.CANCELLED, JobState.QUEUED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


class JobCancelled(RuntimeError):
    """Raised inside the engine thread to abort a cancelled job's
    campaign at the next cell boundary."""


def new_job_id() -> str:
    """A fresh opaque job id (random, no wall-clock involved)."""
    return "job-" + os.urandom(6).hex()


@dataclass(frozen=True)
class JobRecord:
    """One job's persistent snapshot (wire form via
    :func:`repro.service.wire.encode_job`).

    ``seq`` is the store-assigned submission order (listing order and
    the tie-breaker for restart re-enqueueing); ``resumes`` counts how
    many server lives have re-enqueued this job; ``cache_bytes`` is the
    budget figure charged against the client (the request's own
    ``cache_bytes`` or the engine default).
    """

    job_id: str
    seq: int
    client: str
    state: JobState
    durable: bool
    request: RunRequest
    error: str = ""
    resumes: int = 0
    cache_bytes: int = 0


class Job:
    """A live job on the server: record + event buffer + wakeups.

    Event frames (already wire-encoded dicts) append to :attr:`events`;
    every append rotates the wakeup event so any number of concurrent
    streams can wait without polling.  All methods run on the server's
    event loop — worker threads publish via
    ``loop.call_soon_threadsafe``.
    """

    def __init__(self, record: JobRecord):
        self.record = record
        self.events: list[dict] = []
        self.cancel_requested = False
        self._wakeup = asyncio.Event()
        #: called with the new record after every transition (the store
        #: hooks persistence in here)
        self.on_change = None

    @property
    def state(self) -> JobState:
        return self.record.state

    def transition(self, state: JobState, error: str = "") -> JobRecord:
        """Move to ``state``, validating the edge, and notify."""
        allowed = TRANSITIONS[self.record.state]
        if state not in allowed:
            raise RuntimeError(
                f"job {self.record.job_id} cannot move "
                f"{self.record.state.value} -> {state.value}")
        resumes = self.record.resumes
        if self.record.state is JobState.RUNNING and state is JobState.QUEUED:
            resumes += 1
        self.record = replace(self.record, state=state, error=error,
                              resumes=resumes)
        if self.on_change is not None:
            self.on_change(self.record)
        self._notify()
        return self.record

    def publish(self, frame: dict) -> None:
        """Append one wire-encoded event frame and wake all streams."""
        self.events.append(frame)
        self._notify()

    def _notify(self) -> None:
        wakeup, self._wakeup = self._wakeup, asyncio.Event()
        wakeup.set()

    async def next_batch(self, index: int) -> list[dict]:
        """Frames past ``index``, waiting if none yet and the job is
        still live.  Returns ``[]`` only once the job is terminal and
        fully drained."""
        while True:
            waiter = self._wakeup
            if len(self.events) > index:
                return self.events[index:]
            if self.record.state in TERMINAL:
                return []
            await waiter.wait()
