"""repro.service — the campaign service: async jobs over the registry.

The service turns the typed :mod:`repro.api` entry point into a
long-lived job server: clients submit :class:`~repro.api.request.
RunRequest`\\ s over HTTP, a bounded :class:`~repro.service.queue.
JobQueue` feeds a worker pool driving :class:`~repro.api.handle.
RunHandle`\\ s, and every run's typed event stream is mirrored to
clients as Server-Sent Events — the same frames, in the same order, as
a direct in-process run.

Durability is per job: a ``durable`` submission gets a campaign journal
inside the server's :class:`~repro.service.store.JobStore`, so a killed
server restarts, re-enqueues the interrupted job, and resumes from the
journal without re-evaluating finished cells.  Results are bit-
identical either way — the service adds scheduling and durability, not
numerics.

Pieces (stdlib only; no web framework):

* :mod:`~repro.service.wire` — the strict JSON wire schema
* :mod:`~repro.service.jobs` — the job lifecycle state machine
* :mod:`~repro.service.store` — crash-safe persistence + recovery
* :mod:`~repro.service.queue` — bounded queue, worker pool, budgets
* :mod:`~repro.service.server` — the asyncio HTTP/SSE server
* :mod:`~repro.service.client` — the blocking client the CLI uses

CLI: ``repro serve`` runs the server; ``repro submit/status/watch/
fetch/cancel`` talk to it.  See ``docs/service.md``.
"""

from __future__ import annotations

from .client import RequestRefused, ServiceClient, ServiceError
from .jobs import Job, JobCancelled, JobRecord, JobState
from .queue import BudgetExceeded, CacheBudget, JobQueue
from .server import CampaignServer, start_in_thread
from .store import JobStore
from .wire import WireError

__all__ = [
    "BudgetExceeded", "CacheBudget", "CampaignServer",
    "Job", "JobCancelled", "JobQueue", "JobRecord", "JobState", "JobStore",
    "RequestRefused", "ServiceClient", "ServiceError", "WireError",
    "start_in_thread",
]
