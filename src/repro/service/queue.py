"""The job queue: a bounded buffer feeding a worker pool of runs.

The server's event loop owns one :class:`JobQueue`: submissions land in
a **bounded** ``asyncio.Queue`` (an unbounded queue would let one
client swallow the server's memory — the ``no-unbounded-queue`` lint
rule pins this), and ``workers`` asyncio tasks pop jobs and drive each
one's :class:`~repro.api.handle.RunHandle` on a thread
(``asyncio.to_thread``), so the event loop stays responsive while
campaigns grind.

Per-client admission control is a :class:`CacheBudget`: every queued or
running job charges its engine ``cache_bytes`` figure (the request's
own cap, or the engine's default input-cache cap) against the
submitting client; a submission that would exceed the client's budget
is refused up front (HTTP 429) rather than discovered as memory
pressure later.

Events cross the thread boundary one way: the engine thread wire-
encodes each event and hands the frame to the loop via
``call_soon_threadsafe`` — the loop side alone mutates jobs.
Cancellation crosses the other way: the relay callback checks the
job's flag and raises :class:`~repro.service.jobs.JobCancelled` inside
the engine thread, aborting the campaign at the next cell boundary.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from .. import api
from ..api.events import JobStateChanged
from ..core.engine import DEFAULT_INPUT_CACHE_BYTES
from ..obs import get_registry
from ..obs.clock import SystemClock
from . import wire
from .jobs import (TERMINAL, Job, JobCancelled, JobRecord, JobState,
                   new_job_id)
from .store import JobStore

__all__ = ["BudgetExceeded", "CacheBudget", "JobQueue"]

#: default per-client budget: four default-sized input caches
DEFAULT_CLIENT_BUDGET = 4 * DEFAULT_INPUT_CACHE_BYTES


class BudgetExceeded(RuntimeError):
    """A submission would push its client past its cache budget."""


class CacheBudget:
    """Per-client accounting of the cache bytes their live jobs hold.

    Reservations are keyed by job id, so releasing is idempotent — a
    job cancelled while queued releases once no matter how many paths
    observe its terminal transition.
    """

    def __init__(self, limit_bytes: int = DEFAULT_CLIENT_BUDGET):
        self.limit_bytes = int(limit_bytes)
        self._held: dict[str, tuple[str, int]] = {}

    def used(self, client: str) -> int:
        return sum(nbytes for holder, nbytes in self._held.values()
                   if holder == client)

    def reserve(self, job_id: str, client: str, nbytes: int) -> None:
        used = self.used(client)
        if used + nbytes > self.limit_bytes:
            raise BudgetExceeded(
                f"client {client!r} holds {used} cache bytes across live "
                f"jobs; {nbytes} more would exceed the "
                f"{self.limit_bytes}-byte budget — wait for a job to "
                "finish or submit with a smaller cache_bytes")
        self._held[job_id] = (client, nbytes)

    def adopt(self, job_id: str, client: str, nbytes: int) -> None:
        """Account for a recovered job without re-checking the limit —
        a previous life already admitted it; refusing it now would strand
        a journaled campaign."""
        self._held[job_id] = (client, nbytes)

    def release(self, job_id: str) -> None:
        self._held.pop(job_id, None)


class JobQueue:
    """Bounded job buffer + worker pool over one :class:`JobStore`."""

    def __init__(self, store: JobStore, workers: int = 2,
                 queue_size: int = 16,
                 client_budget_bytes: int = DEFAULT_CLIENT_BUDGET):
        self.store = store
        self.workers = max(1, int(workers))
        self.budget = CacheBudget(client_budget_bytes)
        # bounded by design: admission control, not memory pressure
        self._queue: asyncio.Queue[Job] = asyncio.Queue(
            maxsize=max(1, int(queue_size)))
        self.jobs: dict[str, Job] = {}
        self._seq = 1
        self._tasks: list[asyncio.Task] = []
        #: the process metrics registry scraped at GET /v1/metrics
        self.metrics = get_registry()
        self._clock = SystemClock()
        self.metrics.gauge("repro_workers_total",
                           "job-queue worker tasks").set(self.workers)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Recover persisted jobs, then start the worker tasks.

        Finished jobs come back visible (status/result keep working
        across lives); non-terminal jobs re-enter the queue — durable
        ones will resume from their journal.
        """
        finished, to_requeue = self.store.recover()
        for record in finished:
            self.jobs[record.job_id] = Job(record)
        # workers first: a recovered backlog larger than the queue bound
        # must drain into them rather than deadlock the startup put()s
        self._tasks = [asyncio.create_task(self._worker(), name=f"worker-{n}")
                       for n in range(self.workers)]
        for record in to_requeue:
            job = Job(record)
            job.on_change = self.store.save_record
            self.jobs[record.job_id] = job
            self.budget.adopt(record.job_id, record.client,
                              record.cache_bytes)
            self.metrics.counter(
                "repro_jobs_resumed_total",
                "jobs re-enqueued from the store by a restarted "
                "server").inc()
            self._publish_state(job)
            await self._queue.put(job)
            self._note_depth()
        self._seq = 1 + max((job.record.seq for job in self.jobs.values()),
                            default=0)

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []

    # -- submission -----------------------------------------------------
    def submit(self, request, durable: bool, client: str) -> JobRecord:
        """Admit one validated request; raises :class:`BudgetExceeded`
        or ``asyncio.QueueFull`` (backpressure) instead of queueing.

        The caller (the server) has already run the request through
        :func:`repro.api.submit`, so nothing malformed reaches here.
        """
        job_id = new_job_id()
        cache_bytes = (request.cache_bytes if request.cache_bytes is not None
                       else DEFAULT_INPUT_CACHE_BYTES)
        record = JobRecord(job_id=job_id, seq=self._seq, client=client,
                           state=JobState.QUEUED, durable=durable,
                           request=request, cache_bytes=cache_bytes)
        self.budget.reserve(job_id, client, cache_bytes)
        job = Job(record)
        job.on_change = self.store.save_record
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.budget.release(job_id)
            raise
        self._seq += 1
        self.jobs[job_id] = job
        self.store.save_record(record)
        self.metrics.counter("repro_jobs_submitted_total",
                             "jobs admitted into the queue").inc()
        self._note_depth()
        self._publish_state(job)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; queued jobs cancel immediately, running
        jobs abort at their next cell boundary."""
        job = self.jobs[job_id]
        if job.state in TERMINAL:
            return job.record
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            job.transition(JobState.CANCELLED)
            self._publish_state(job)
            self.budget.release(job_id)
        return job.record

    # -- workers --------------------------------------------------------
    def _note_depth(self) -> None:
        self.metrics.gauge("repro_queue_depth",
                           "jobs waiting in the bounded queue").set(
                               self._queue.qsize())

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            self._note_depth()
            try:
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        if job.state in TERMINAL:  # cancelled while queued
            return
        record = job.record
        job.on_change = self.store.save_record
        busy = self.metrics.gauge("repro_workers_busy",
                                  "worker tasks driving a run right now")
        latency = self.metrics.histogram(
            "repro_job_latency_seconds",
            "wall-clock seconds from RUNNING to a terminal state")
        outcomes = self.metrics  # counters resolved per terminal branch
        started = self._clock.now()
        busy.inc()
        try:
            if job.cancel_requested:
                job.transition(JobState.CANCELLED)
                self._publish_state(job)
                return
            job.transition(JobState.RUNNING)
            self._publish_state(job)
            loop = asyncio.get_running_loop()
            payload = await asyncio.to_thread(self._execute, job, loop)
            # result hits disk before the terminal state does, so a
            # client that observes `done` always finds the report
            self.store.save_result(record.job_id, payload)
            job.transition(JobState.DONE)
            self._publish_state(job)
            outcomes.counter("repro_jobs_done_total",
                             "jobs that finished successfully").inc()
        except JobCancelled:
            job.transition(JobState.CANCELLED)
            self._publish_state(job)
            outcomes.counter("repro_jobs_cancelled_total",
                             "jobs cancelled while running").inc()
        except Exception as error:
            job.transition(JobState.FAILED,
                           error=f"{type(error).__name__}: {error}")
            self._publish_state(job)
            outcomes.counter("repro_jobs_failed_total",
                             "jobs that raised while running").inc()
        finally:
            busy.dec()
            latency.observe(self._clock.now() - started)
            self.budget.release(record.job_id)

    def _execute(self, job: Job, loop: asyncio.AbstractEventLoop) -> dict:
        """Drive one run on a worker thread; returns the report's wire
        form.  Runs off-loop — touch ``job`` only via the loop."""
        record = job.record
        request = record.request
        if record.durable:
            journal = self.store.journal_path(record.job_id)
            request = replace(request, journal=str(journal),
                              resume=record.resumes > 0)
        handle = api.submit(request)

        def relay(event) -> None:
            if job.cancel_requested:
                raise JobCancelled(record.job_id)
            frame = wire.encode_event(event)
            loop.call_soon_threadsafe(job.publish, frame)

        handle.subscribe(relay)
        report = handle.run()
        # fold the run's private registry into the process one, so the
        # scrape endpoint aggregates engine metrics (cache hit rate,
        # retries, ...) across every job this server has driven
        telemetry = report.meta.get("telemetry")
        if isinstance(telemetry, dict):
            self.metrics.fold_snapshot({
                "counters": telemetry.get("counters", {}),
                "gauges": telemetry.get("gauges", {})})
        return wire.encode_report(report)

    def _publish_state(self, job: Job) -> None:
        record = job.record
        job.publish(wire.encode_event(JobStateChanged(
            job_id=record.job_id, state=record.state.value,
            error=record.error)))
