"""The synchronous service client (``repro submit/status/watch/fetch``).

A thin typed layer over :mod:`http.client` — the server is stdlib
asyncio, the client is stdlib blocking sockets, and the wire schema
(:mod:`repro.service.wire`) is the only contract between them.

Error mapping mirrors the CLI's exit-code convention: a 4xx whose body
the server produced for a *validation* failure (bad wire payload,
unknown experiment, unknown job id) raises :class:`RequestRefused`
(a ``ValueError`` → exit 2); transport failures and 5xx raise
:class:`ServiceError` (→ exit 1).
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator

from . import wire
from .jobs import TERMINAL, JobRecord

__all__ = ["RequestRefused", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service is unreachable or answered a server-side error;
    ``status`` carries the HTTP status (None for transport failures)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class RequestRefused(ValueError):
    """The service refused the request as invalid (4xx); carries the
    HTTP status on ``.status``."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Blocking client for one campaign server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 client: str = "cli", timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.client = client
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _connection(self, timeout: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
            if timeout is None else timeout)

    def _call(self, method: str, path: str, payload: dict | None = None):
        body = None
        headers = {"X-Repro-Client": self.client}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except OSError as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: "
                f"{error}") from error
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"service answered non-JSON "
                               f"({response.status})") from error
        if response.status >= 500:
            raise ServiceError(decoded.get("error",
                                           f"HTTP {response.status}"),
                               status=response.status)
        if response.status >= 400:
            raise RequestRefused(response.status,
                                 decoded.get("error",
                                             f"HTTP {response.status}"))
        return decoded

    # -- endpoints ------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    def submit(self, request, durable: bool = False) -> JobRecord:
        """Submit one :class:`~repro.api.request.RunRequest`; returns
        the queued job's record."""
        payload = wire.encode_request(request, durable)
        return wire.decode_job(self._call("POST", "/v1/jobs", payload))

    def jobs(self) -> list[JobRecord]:
        payload = self._call("GET", "/v1/jobs")
        return [wire.decode_job(entry) for entry in payload["jobs"]]

    def job(self, job_id: str) -> JobRecord:
        return wire.decode_job(self._call("GET", f"/v1/jobs/{job_id}"))

    def result(self, job_id: str) -> dict:
        """The finished report's wire form (decode with
        :func:`repro.service.wire.decode_report`)."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> JobRecord:
        return wire.decode_job(self._call("POST",
                                          f"/v1/jobs/{job_id}/cancel"))

    # -- streaming ------------------------------------------------------
    def stream(self, job_id: str, since: int = 0,
               timeout: float | None = None) -> Iterator[tuple]:
        """Yield ``("event", RunEvent)`` frames, then ``("end",
        JobRecord)`` once the job is terminal.

        One SSE connection; raises :class:`ServiceError` if it drops
        before the ``end`` frame (see :meth:`watch` for the reconnect
        loop).
        """
        connection = self._connection(timeout=timeout)
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events?since={since}",
                headers={"X-Repro-Client": self.client})
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8"))["error"]
                except (KeyError, ValueError):
                    message = f"HTTP {response.status}"
                if response.status >= 500:
                    raise ServiceError(message)
                raise RequestRefused(response.status, message)
            name, data = None, None
            while True:
                line = response.fp.readline()
                if not line:
                    raise ServiceError(
                        f"event stream for {job_id} ended without an "
                        "end frame (server died?)")
                line = line.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    name = line[len("event: "):]
                elif line.startswith("data: "):
                    data = json.loads(line[len("data: "):])
                elif line == "" and name is not None:
                    if name == "end":
                        yield "end", wire.decode_job(data)
                        return
                    yield "event", wire.decode_event(data)
                    name, data = None, None
        finally:
            connection.close()

    def watch(self, job_id: str, on_event=None) -> JobRecord:
        """Follow ``job_id`` to a terminal state, reconnecting across
        server restarts; returns the final record.

        Within one server life the ``since`` cursor advances only over
        delivered frames, so a dropped connection replays nothing and
        skips nothing.  A server *restart* starts a fresh event buffer
        (the resumed run re-emits from its journal's frontier), so the
        cursor resets to 0 and early frames of the new life may repeat
        ones already seen — consumers pinning exact event sequences
        should read a single life's :meth:`stream`.
        """
        import time
        index = 0
        while True:
            try:
                for kind, item in self.stream(job_id, since=index):
                    if kind == "end":
                        return item
                    index += 1
                    if on_event is not None:
                        on_event(item)
            except ServiceError:
                # server gone (restart window?) — poll until it answers
                time.sleep(0.5)
                record = self._poll_job(job_id)
                if record is None:
                    continue
                if record.state in TERMINAL:
                    return record
                index = 0  # a new server life rebuilt the buffer

    def _poll_job(self, job_id: str) -> JobRecord | None:
        try:
            return self.job(job_id)
        except (ServiceError, RequestRefused):
            return None
