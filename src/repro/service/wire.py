"""The service wire schema: every payload that crosses the socket.

Four payload families travel between :mod:`repro.service.client` and
:mod:`repro.service.server`, all JSON:

* **requests** — a :class:`~repro.api.request.RunRequest` plus the
  service-level ``durable`` flag (journal-backed durability);
* **events** — the typed :mod:`repro.api.events` stream, one frame per
  event (``RunFinished`` carries its full report);
* **reports** — :class:`~repro.api.report.RunReport` in its
  ``to_dict`` schema-v1 form;
* **job records** — :class:`~repro.service.jobs.JobRecord` lifecycle
  snapshots.

Decoding is **strict** in the spirit of :mod:`repro.scenarios.spec`:
unknown fields, missing fields, and unknown event/state names raise
:class:`WireError` (a ``ValueError``, so the CLI maps it to exit
status 2 and the server to HTTP 400) — a malformed submission is
refused at the socket and can never reach the job queue.  Everything
that decodes successfully round-trips bit-exactly: floats serialize via
``repr`` (shortest round-trippable form), so a report fetched over the
wire equals the report the worker produced.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..api import events as api_events
from ..api.report import SCHEMA_VERSION, RunReport, SeriesReport
from ..api.request import RunRequest

__all__ = ["WIRE_VERSION", "WireError", "canonical_result",
           "decode_event", "decode_job", "decode_report", "decode_request",
           "encode_event", "encode_job", "encode_report", "encode_request"]

#: bump when any wire payload changes incompatibly
WIRE_VERSION = 1


class WireError(ValueError):
    """A payload violating the wire schema (validation-class: the CLI
    exits 2, the server answers HTTP 400)."""


#: every event type that may appear on the stream, by wire name
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (api_events.RunStarted, api_events.CellDone,
                api_events.CheckpointDone, api_events.RunWarning,
                api_events.JobRetried, api_events.JobQuarantined,
                api_events.WorkerLost, api_events.ExecutorDegraded,
                api_events.JobStateChanged, api_events.TelemetrySnapshot,
                api_events.RunFinished)
}

#: RunRequest fields a wire submission may carry.  ``journal``/``resume``
#: are deliberately absent: journals live on the *server's* filesystem
#: and are owned by the job store (the ``durable`` flag requests one).
REQUEST_FIELDS = ("experiment", "params", "executor", "n_jobs", "backend",
                  "cache_bytes", "quick", "retries", "job_timeout",
                  "degrade")

_REPORT_FIELDS = ("schema_version", "experiment", "params", "engine",
                  "baseline", "series", "tables", "meta", "artifacts")
_SERIES_FIELDS = ("label", "xs", "mean", "std", "baseline")


def _require_mapping(payload: Any, what: str) -> dict:
    if not isinstance(payload, dict):
        raise WireError(f"{what} must be a JSON object, got "
                        f"{type(payload).__name__}")
    return payload


def _refuse_unknown(payload: dict, allowed: tuple[str, ...],
                    what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise WireError(f"{what} has unknown field(s) {unknown}; "
                        f"allowed: {sorted(allowed)}")


# -- requests --------------------------------------------------------------

def encode_request(request: RunRequest, durable: bool = False) -> dict:
    """The submission body for one request (see :func:`decode_request`)."""
    return {
        "experiment": request.experiment,
        "params": dict(request.params),
        "executor": request.executor,
        "n_jobs": request.n_jobs,
        "backend": request.backend,
        "cache_bytes": request.cache_bytes,
        "quick": request.quick,
        "retries": request.retries,
        "job_timeout": request.job_timeout,
        "degrade": request.degrade,
        "durable": durable,
    }


def decode_request(payload: Any) -> tuple[RunRequest, bool]:
    """Decode one submission into ``(RunRequest, durable)``.

    Strict: unknown fields (including any attempt to name a server-side
    ``journal`` path) raise :class:`WireError`; field values are then
    validated by :class:`RunRequest` itself (``ApiError``, equally a
    ``ValueError``).  The returned request always has
    ``journal=None`` — the server's job store assigns journals.
    """
    payload = dict(_require_mapping(payload, "request"))
    _refuse_unknown(payload, (*REQUEST_FIELDS, "durable"), "request")
    durable = payload.pop("durable", False)
    if not isinstance(durable, bool):
        raise WireError(f"request field 'durable' must be a bool, got "
                        f"{durable!r}")
    if "experiment" not in payload:
        raise WireError("request is missing the 'experiment' field")
    return RunRequest(**payload), durable


# -- events ----------------------------------------------------------------

def encode_event(event: api_events.RunEvent) -> dict:
    """One event as its wire frame ``{"event": <type>, ...fields}``."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise WireError(f"cannot encode unregistered event type {name}")
    if isinstance(event, api_events.RunFinished):
        return {"event": name, "report": encode_report(event.report)}
    return {"event": name, **dataclasses.asdict(event)}


def decode_event(payload: Any) -> api_events.RunEvent:
    """Decode one wire frame back into its typed event.

    Strict: unknown event names, unknown fields, and missing fields all
    raise :class:`WireError` — the stream either decodes exactly or not
    at all.
    """
    payload = dict(_require_mapping(payload, "event"))
    name = payload.pop("event", None)
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown event type {name!r}; "
                        f"known: {sorted(EVENT_TYPES)}")
    if cls is api_events.RunFinished:
        _refuse_unknown(payload, ("report",), "RunFinished event")
        if "report" not in payload:
            raise WireError("RunFinished event is missing its report")
        return api_events.RunFinished(report=decode_report(payload["report"]))
    declared = {f.name: f for f in dataclasses.fields(cls)}
    _refuse_unknown(payload, tuple(declared), f"{name} event")
    missing = sorted(name_ for name_, f in declared.items()
                     if name_ not in payload
                     and f.default is dataclasses.MISSING
                     and f.default_factory is dataclasses.MISSING)
    if missing:
        raise WireError(f"{name} event is missing field(s) {missing}")
    return cls(**payload)


# -- reports ---------------------------------------------------------------

def encode_report(report: RunReport) -> dict:
    """A report's wire form (its ``to_dict`` schema; ``raw`` excluded)."""
    return report.to_dict()


def decode_report(payload: Any) -> RunReport:
    """Rebuild a :class:`RunReport` from its wire form (``raw=None``)."""
    payload = _require_mapping(payload, "report")
    _refuse_unknown(payload, _REPORT_FIELDS, "report")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise WireError(f"report schema_version {version!r} is not the "
                        f"supported {SCHEMA_VERSION}")
    series = []
    for row in payload.get("series", ()):
        row = _require_mapping(row, "report series entry")
        _refuse_unknown(row, _SERIES_FIELDS, "report series entry")
        try:
            series.append(SeriesReport(
                label=row["label"], xs=list(row["xs"]),
                mean=list(row["mean"]), std=list(row["std"]),
                baseline=row.get("baseline")))
        except KeyError as error:
            raise WireError(f"report series entry is missing field "
                            f"{error.args[0]!r}") from error
    try:
        return RunReport(
            experiment=payload["experiment"],
            params=dict(payload["params"]),
            engine=dict(payload["engine"]),
            series=series,
            tables=dict(payload["tables"]),
            baseline=payload["baseline"],
            meta=dict(payload["meta"]),
            artifacts=dict(payload["artifacts"]))
    except KeyError as error:
        raise WireError(f"report is missing field "
                        f"{error.args[0]!r}") from error


def canonical_result(payload: dict) -> dict:
    """The location-independent core of a report's wire form.

    A service run and a direct :mod:`repro.api` run of the same
    :class:`RunRequest` produce bit-identical *results* — series,
    tables, baseline, params — but necessarily differ in where their
    journal lives and how many cells a resumed run replayed.  This
    strips exactly that bookkeeping (``artifacts``, the journal/resume
    engine options, and the journal/resume/event-count meta keys) so
    equality of ``canonical_result(a) == canonical_result(b)`` asserts
    the bit-identity contract and nothing weaker.
    """
    payload = dict(_require_mapping(payload, "report"))
    payload.pop("artifacts", None)
    engine = dict(payload.get("engine", {}))
    for key in ("journal", "resume"):
        engine.pop(key, None)
    payload["engine"] = engine
    meta = dict(payload.get("meta", {}))
    # events/resilience/input_cache/prefix_plane/telemetry record *how*
    # the cells were scheduled, cached, and timed, which legitimately
    # differs between a resumed run (fewer fresh evaluations) and a
    # direct one
    for key in ("journal", "resumed_cells", "events", "resilience",
                "input_cache", "prefix_plane", "telemetry"):
        meta.pop(key, None)
    payload["meta"] = meta
    return payload


# -- job records -----------------------------------------------------------

def encode_job(record) -> dict:
    """A :class:`~repro.service.jobs.JobRecord` as its wire form."""
    return {
        "job_id": record.job_id,
        "seq": record.seq,
        "client": record.client,
        "state": record.state.value,
        "durable": record.durable,
        "error": record.error,
        "resumes": record.resumes,
        "cache_bytes": record.cache_bytes,
        "request": encode_request(record.request, record.durable),
    }


def decode_job(payload: Any):
    """Rebuild a :class:`~repro.service.jobs.JobRecord` (strict)."""
    from .jobs import JobRecord, JobState
    payload = _require_mapping(payload, "job record")
    fields = ("job_id", "seq", "client", "state", "durable", "error",
              "resumes", "cache_bytes", "request")
    _refuse_unknown(payload, fields, "job record")
    missing = sorted(set(fields) - set(payload))
    if missing:
        raise WireError(f"job record is missing field(s) {missing}")
    try:
        state = JobState(payload["state"])
    except ValueError as error:
        raise WireError(f"unknown job state {payload['state']!r}; "
                        f"known: {[s.value for s in JobState]}") from error
    request, durable = decode_request(payload["request"])
    if durable != payload["durable"]:
        raise WireError("job record durable flag disagrees with its "
                        "request payload")
    return JobRecord(job_id=payload["job_id"], seq=payload["seq"],
                     client=payload["client"], state=state,
                     durable=payload["durable"], error=payload["error"],
                     resumes=payload["resumes"],
                     cache_bytes=payload["cache_bytes"], request=request)
