"""The campaign service: an asyncio HTTP job server over the registry.

Pure stdlib — the server speaks just enough HTTP/1.1 (request line,
headers, ``Content-Length`` bodies, connection-close responses) for the
:mod:`repro.service.client` and ``curl`` to talk to it; no third-party
framework is imported, so ``repro serve`` runs anywhere the package
does.

Endpoints (all JSON; error bodies are ``{"error": msg}``):

====== ============================= =====================================
GET    ``/v1/health``                liveness + job counts
GET    ``/v1/metrics``               Prometheus text exposition (not JSON)
POST   ``/v1/jobs``                  submit (wire request body) → record
GET    ``/v1/jobs``                  all job records, submission order
GET    ``/v1/jobs/<id>``             one job record
GET    ``/v1/jobs/<id>/events``      SSE event stream (``?since=N``)
GET    ``/v1/jobs/<id>/result``      the finished report (409 until done)
POST   ``/v1/jobs/<id>/cancel``      request cancellation → record
====== ============================= =====================================

Submissions are validated **before** queueing: the body must decode
against the strict wire schema *and* pass :func:`repro.api.submit`
against the registry — a malformed submission is answered 400 and never
constructs a job.  Budget refusals are 429, a full queue is 503
(backpressure: retry later), both before any state exists.

The event stream is Server-Sent Events: one ``event: <Type>`` /
``data: <json>`` frame per run event (exactly the frames the worker
relayed, so a client replays the run bit-for-bit), terminated by an
``event: end`` frame carrying the job's final record once the job is
terminal and the buffer is drained.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import threading
from dataclasses import replace
from pathlib import Path

from .. import api
from ..api.report import atomic_write_text
from ..obs.export import render_prometheus
from . import wire
from .queue import DEFAULT_CLIENT_BUDGET, BudgetExceeded, JobQueue
from .store import JobStore

__all__ = ["CampaignServer", "add_serve_arguments", "main",
           "serve_from_args", "start_in_thread"]

#: request caps: nothing legitimate comes close
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            503: "Service Unavailable"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class CampaignServer:
    """One server instance: a :class:`JobQueue` behind a TCP listener."""

    def __init__(self, store: Path | str, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2, queue_size: int = 16,
                 client_budget_bytes: int = DEFAULT_CLIENT_BUDGET):
        self.store = JobStore(store)
        self.queue = JobQueue(self.store, workers=workers,
                              queue_size=queue_size,
                              client_budget_bytes=client_budget_bytes)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- http plumbing --------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, headers, body = await _read_request(
                    reader)
            except _HttpError as error:
                await _send_json(writer, error.status,
                                 {"error": error.message})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            try:
                await self._dispatch(writer, method, path, query, headers,
                                     body)
            except _HttpError as error:
                await _send_json(writer, error.status,
                                 {"error": error.message})
            except ValueError as error:
                # wire/api validation: the client's payload is at fault
                await _send_json(writer, 400, {"error": str(error)})
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, writer, method: str, path: str,
                        query: dict, headers: dict, body: bytes) -> None:
        parts = [part for part in path.split("/") if part]
        if parts == ["v1", "health"] and method == "GET":
            await _send_json(writer, 200, self._health())
            return
        if parts == ["v1", "metrics"] and method == "GET":
            await _send_text(writer, 200,
                             render_prometheus(self.queue.metrics))
            return
        if parts == ["v1", "jobs"]:
            if method == "POST":
                await self._submit(writer, headers, body)
                return
            if method == "GET":
                records = sorted(self.queue.jobs.values(),
                                 key=lambda job: job.record.seq)
                await _send_json(writer, 200, {
                    "jobs": [wire.encode_job(job.record)
                             for job in records]})
                return
            raise _HttpError(405, f"method {method} not allowed here")
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.queue.jobs.get(parts[2])
            if job is None:
                raise _HttpError(404, f"no job {parts[2]!r}")
            action = parts[3] if len(parts) > 3 else None
            if action is None and method == "GET":
                await _send_json(writer, 200, wire.encode_job(job.record))
                return
            if action == "events" and method == "GET":
                await self._stream_events(writer, job, query)
                return
            if action == "result" and method == "GET":
                payload = self.store.load_result(job.record.job_id)
                if payload is None:
                    raise _HttpError(
                        409, f"job {job.record.job_id} is "
                        f"{job.record.state.value}; no result yet")
                await _send_json(writer, 200, payload)
                return
            if action == "cancel" and method == "POST":
                record = self.queue.cancel(job.record.job_id)
                await _send_json(writer, 200, wire.encode_job(record))
                return
            raise _HttpError(405 if action in (None, "events", "result",
                                               "cancel") else 404,
                             f"cannot {method} {path}")
        raise _HttpError(404, f"no route {path!r}")

    # -- endpoints ------------------------------------------------------
    def _health(self) -> dict:
        states: dict[str, int] = {}
        for job in self.queue.jobs.values():
            key = job.record.state.value
            states[key] = states.get(key, 0) + 1
        return {"ok": True, "wire_version": wire.WIRE_VERSION,
                "jobs": states}

    async def _submit(self, writer, headers: dict, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"body is not JSON: {error}") from error
        # strict wire decode, then full registry validation — nothing
        # malformed ever constructs a job, let alone queues one
        request, durable = wire.decode_request(payload)
        probe = request
        if durable:
            # validate against the journal the store will assign, so an
            # experiment without journal support is refused here
            probe = replace(request,
                            journal=str(self.store.journal_path("probe")),
                            resume=True)
        api.submit(probe)
        client = headers.get("x-repro-client", "anonymous")
        try:
            record = self.queue.submit(request, durable, client)
        except BudgetExceeded as error:
            raise _HttpError(429, str(error)) from error
        except asyncio.QueueFull:
            raise _HttpError(503, "job queue is full; retry later") from None
        await _send_json(writer, 200, wire.encode_job(record))

    async def _stream_events(self, writer, job, query: dict) -> None:
        try:
            index = int(query.get("since", "0"))
        except ValueError:
            raise _HttpError(400, "since must be an integer") from None
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        lag = self.queue.metrics.histogram(
            "repro_sse_lag_frames",
            "frames a streaming client was behind per delivered batch")
        while True:
            frames = await job.next_batch(index)
            if not frames:
                break
            # a batch of N means the client was N frames behind the run
            lag.observe(len(frames))
            for frame in frames:
                name = frame.get("event", "message")
                data = json.dumps(frame, separators=(",", ":"))
                writer.write(f"event: {name}\ndata: {data}\n\n"
                             .encode("utf-8"))
            index += len(frames)
            await writer.drain()
        final = json.dumps(wire.encode_job(job.record),
                           separators=(",", ":"))
        writer.write(f"event: end\ndata: {final}\n\n".encode("utf-8"))
        await writer.drain()


# -- raw http ---------------------------------------------------------------

async def _read_request(reader: asyncio.StreamReader):
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, f"malformed request line {lines[0]!r}") \
            from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    path, _, raw_query = target.partition("?")
    query: dict[str, str] = {}
    for pair in raw_query.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte cap")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, query, headers, body


async def _send_json(writer: asyncio.StreamWriter, status: int,
                     payload: dict) -> None:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def _send_text(writer: asyncio.StreamWriter, status: int,
                     text: str) -> None:
    body = text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# -- entry points -----------------------------------------------------------

async def _amain(server: CampaignServer, port_file: Path | None,
                 ready: threading.Event | None = None) -> None:
    await server.start()
    if port_file is not None:
        atomic_write_text(port_file, f"{server.port}\n")
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.stop()


@contextlib.contextmanager
def start_in_thread(store: Path | str, **options):
    """Run a server on a daemon thread; yields the bound port.

    The in-process harness the docs snippet and the tests use::

        with start_in_thread(tmp / "store", workers=1) as port:
            client = ServiceClient(port=port)
            ...
    """
    server = CampaignServer(store, **options)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    task_box: list[asyncio.Task] = []

    def drive() -> None:
        asyncio.set_event_loop(loop)
        task = loop.create_task(_amain(server, None, ready))
        task_box.append(task)
        with contextlib.suppress(asyncio.CancelledError):
            loop.run_until_complete(task)
        loop.close()

    thread = threading.Thread(target=drive, name="repro-service",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("service failed to start within 30s")
    try:
        yield server.port
    finally:
        with contextlib.suppress(RuntimeError):  # loop may already be done
            loop.call_soon_threadsafe(task_box[0].cancel)
        thread.join(timeout=30)


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro serve`` options (shared with the standalone parser)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--store", default="service-store",
                        help="durability directory (records, results, "
                        "journals)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent campaign runs")
    parser.add_argument("--queue-size", type=int, default=16,
                        help="bounded submission queue length")
    parser.add_argument("--client-budget-mib", type=int,
                        default=DEFAULT_CLIENT_BUDGET >> 20,
                        help="per-client cache-bytes budget in MiB")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port here once listening "
                        "(for --port 0 harnesses)")
    parser.add_argument("--preload", action="append", default=[],
                        metavar="MODULE",
                        help="import MODULE before serving (registers "
                        "extra experiments); repeatable")


def serve_from_args(args) -> int:
    """Run the service in the foreground from parsed serve options."""
    import importlib
    for module in args.preload:
        importlib.import_module(module)
    server = CampaignServer(args.store, host=args.host, port=args.port,
                            workers=args.workers,
                            queue_size=args.queue_size,
                            client_budget_bytes=args.client_budget_mib << 20)
    port_file = Path(args.port_file) if args.port_file else None
    try:
        asyncio.run(_amain(server, port_file))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv=None) -> int:
    """``repro serve`` — run the campaign service in the foreground."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the experiment registry as an async job API.")
    add_serve_arguments(parser)
    return serve_from_args(parser.parse_args(argv))
