"""``repro.obs`` — tracing, metrics, and profiling for the whole stack.

One :class:`Observability` object bundles the three telemetry legs:

* a :class:`~repro.obs.clock.Clock` (monotonic; swap in a
  :class:`~repro.obs.clock.FakeClock` for deterministic traces),
* a :class:`~repro.obs.spans.Tracer` building the hierarchical span
  tree (``campaign → plan → dispatch → evaluate → reduce`` in the
  engine, ``service → job → run`` in the service),
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  histograms.

Instrumentation is **opt-out at zero cost**: every instrumented code
path accepts ``obs=None`` and skips all bookkeeping when no
observability is active.  It is also **ambient**: the API layer
activates an :class:`Observability` around each experiment run
(:func:`activated` / :func:`current`), and :class:`FaultCampaign`
falls back to the ambient instance when none is passed explicitly —
so every registry experiment is traced without threading an ``obs``
argument through a dozen driver signatures.

Determinism contract: telemetry *describes* a run and never feeds
computation.  Results are bit-identical with ``obs=None``, a real
clock, or a fake one — the FakeClock tests pin this.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from typing import ContextManager, Optional

from .clock import Clock, FakeClock, SystemClock
from .export import render_prometheus
from .metrics import MetricsRegistry, get_registry, reset_registry
from .spans import SpanRecord, Tracer

__all__ = ["Clock", "FakeClock", "MetricsRegistry", "Observability",
           "SpanRecord", "SystemClock", "Tracer", "activated",
           "current", "get_registry", "render_prometheus",
           "reset_registry"]


class Observability:
    """Clock + tracer + metrics for one observed run."""

    def __init__(self, clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.tracer = Tracer(self.clock)
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())

    def span(self, name: str, **attrs: object) -> ContextManager[None]:
        return self.tracer.span(name, **attrs)

    def telemetry(self) -> dict[str, dict[str, float]]:
        """The run summary that lands in ``RunReport.meta["telemetry"]``
        (and on the wire as ``TelemetrySnapshot``)."""
        snapshot = self.metrics.snapshot()
        return {"phases": self.tracer.phase_totals(),
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"]}


_ACTIVE: ContextVar[Optional[Observability]] = ContextVar(
    "repro_obs_active", default=None)


def current() -> Optional[Observability]:
    """The ambient :class:`Observability`, or ``None`` outside any
    :func:`activated` block."""
    return _ACTIVE.get()


@contextmanager
def activated(obs: Optional[Observability]) -> Iterator[None]:
    """Make ``obs`` the ambient observability for the enclosed block
    (``None`` deactivates — useful to shield uninstrumented baselines)."""
    token = _ACTIVE.set(obs)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
