"""Process-local metrics: counters, gauges, histograms, one registry.

The registry replaces the scattered ad-hoc counter plumbing
(``SweepResult.meta["resilience"]``, cache-stat dicts, bench-script
tallies) as the canonical telemetry store.  The legacy ``meta`` dict
shapes remain as a compatibility view — the engine folds its per-run
registry into them so existing consumers keep working unchanged.

Two registries matter in practice:

* a **per-run** registry inside each
  :class:`~repro.obs.Observability`, summarised into
  ``RunReport.meta["telemetry"]``;
* the **process** registry (:func:`get_registry`) the service scrapes
  at ``GET /v1/metrics`` — job-queue gauges and lifecycle counters
  land there directly, and each finished run's telemetry is folded in
  so campaign-level counters (cache hits, retries) survive their run.

Everything is ``threading.Lock``-guarded: the engine thread, service
worker threads, and the asyncio event loop all touch the process
registry.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Union

__all__ = ["Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
           "MetricsRegistry", "get_registry", "reset_registry"]

#: latency buckets (seconds) — spans sub-ms cache hits to multi-minute
#: campaign jobs
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

LabelKey = tuple[tuple[str, str], ...]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("histogram buckets must be sorted and "
                             "non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, labelled family of metrics with a thread-safe lookup.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the metric's type and help text, later calls return the
    same instance (a type clash raises).  Labels follow the Prometheus
    model — each distinct label set is its own time series under the
    family name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelKey], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # -- registration ----------------------------------------------------
    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        metric = self._get(name, "counter", help, labels, None)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        metric = self._get(name, "gauge", help, labels, None)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        metric = self._get(name, "histogram", help, labels, buckets)
        assert isinstance(metric, Histogram)
        return metric

    def _get(self, name: str, kind: str, help: str, labels: dict[str, str],
             buckets: Optional[tuple[float, ...]]) -> Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(f"metric {name!r} already registered "
                                 f"as a {known}, not a {kind}")
            metric = self._series.get(key)
            if metric is None:
                if kind == "counter":
                    metric = Counter()
                elif kind == "gauge":
                    metric = Gauge()
                else:
                    metric = Histogram(buckets if buckets is not None
                                       else DEFAULT_BUCKETS)
                self._series[key] = metric
                self._kinds[name] = kind
                if help and name not in self._help:
                    self._help[name] = help
            return metric

    # -- read side -------------------------------------------------------
    def collect(self) -> list[tuple[str, LabelKey, Metric]]:
        """Every series, sorted by (name, labels) for stable output."""
        with self._lock:
            return sorted(((name, labels, metric) for (name, labels), metric
                           in self._series.items()),
                          key=lambda item: (item[0], item[1]))

    def help_for(self, name: str) -> str:
        with self._lock:
            return self._help.get(name, "")

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A JSON-safe summary: ``{"counters": {...}, "gauges": {...}}``.

        Histograms are summarised as ``<name>_sum``/``<name>_count``
        gauge pairs; labelled series render as ``name{k=v,...}`` keys.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        for name, labels, metric in self.collect():
            series = _series_key(name, labels)
            if isinstance(metric, Counter):
                counters[series] = metric.value
            elif isinstance(metric, Gauge):
                gauges[series] = metric.value
            else:
                gauges[f"{series}_sum"] = metric.total
                gauges[f"{series}_count"] = float(metric.count)
        return {"counters": counters, "gauges": gauges}

    def fold_snapshot(self, snapshot: dict[str, dict[str, float]]) -> None:
        """Merge a :meth:`snapshot` from another registry into this one:
        counters add, gauges overwrite (last writer wins)."""
        for series, value in snapshot.get("counters", {}).items():
            name, labels = _parse_series_key(series)
            self.counter(name, **labels).inc(value)
        for series, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_series_key(series)
            self.gauge(name, **labels).set(value)

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self._kinds.clear()
            self._help.clear()


def _series_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _parse_series_key(series: str) -> tuple[str, dict[str, str]]:
    if not series.endswith("}") or "{" not in series:
        return series, {}
    name, _, inner = series.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return name, labels


#: the process registry the service exposes at ``GET /v1/metrics``
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one per interpreter)."""
    return _GLOBAL


def reset_registry() -> None:
    """Empty the process registry in place (test isolation seam —
    existing references stay valid)."""
    _GLOBAL.clear()
