"""Prometheus text exposition (format 0.0.4), stdlib only.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` into the plain
``text/plain; version=0.0.4`` format every Prometheus-compatible
scraper understands: ``# HELP``/``# TYPE`` headers per family, one
``name{labels} value`` line per series, and the
``_bucket``/``_sum``/``_count`` triplet for histograms.  The service
serves this at ``GET /v1/metrics``.
"""

from __future__ import annotations

import math

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus"]


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(pairs: tuple[tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    seen_header: set[str] = set()
    for name, labels, metric in registry.collect():
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name}{_labels(labels)} "
                         f"{_number(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                bucket = labels + (("le", _number(bound)),)
                lines.append(f"{name}_bucket{_labels(bucket)} "
                             f"{cumulative}")
            bucket = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_labels(bucket)} {metric.count}")
            lines.append(f"{name}_sum{_labels(labels)} "
                         f"{_number(metric.total)}")
            lines.append(f"{name}_count{_labels(labels)} {metric.count}")
    return "\n".join(lines) + "\n"
