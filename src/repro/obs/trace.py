"""``repro trace``: read trace spans back out of a campaign journal.

Campaign journals interleave ``{"kind": "trace"}`` audit lines with
their result cells (see :mod:`repro.core.journal`).  This module loads
them back into :class:`~repro.obs.spans.SpanRecord` objects and renders
the span tree as a text timeline with per-phase totals — the CLI
subcommand is a thin wrapper over :func:`load_trace` +
:func:`render_timeline`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .spans import SpanRecord

__all__ = ["load_trace", "render_timeline", "span_payload"]

#: children beyond this count collapse into one aggregate line per name
_FOLD_THRESHOLD = 4
_BAR_WIDTH = 24


def span_payload(record: SpanRecord) -> dict[str, object]:
    """The journal line body for one span (sans the ``kind`` tag)."""
    return {"span": record.name, "id": record.span_id,
            "parent": record.parent_id, "start": record.start,
            "duration": record.duration, "attrs": dict(record.attrs)}


def _span_from_payload(payload: dict[str, object]) -> SpanRecord:
    parent = payload.get("parent")
    attrs = payload.get("attrs")
    return SpanRecord(
        name=str(payload.get("span", "")),
        span_id=int(payload.get("id", 0)),  # type: ignore[call-overload]
        parent_id=None if parent is None else int(parent),  # type: ignore[call-overload]
        start=float(payload.get("start", 0.0)),  # type: ignore[arg-type]
        duration=float(payload.get("duration", 0.0)),  # type: ignore[arg-type]
        attrs=dict(attrs) if isinstance(attrs, dict) else {})


def load_trace(path: Union[str, Path]) -> list[SpanRecord]:
    """Trace spans from a journal, in the order they were written.

    Raises ``ValueError`` when ``path`` is not a campaign journal
    (first line must be the JSON header object).  A torn trailing line
    — the SIGKILL signature — is tolerated, exactly as the resume
    reader tolerates it.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise ValueError(f"cannot read journal {path}: {error}") from error
    if not lines:
        raise ValueError(f"{path} is empty — not a campaign journal")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict):
        raise ValueError(f"{path} is not a campaign journal "
                         "(no JSON header line)")
    spans: list[SpanRecord] = []
    for position, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines):
                break  # torn tail from a killed writer
            raise ValueError(f"{path}:{position}: undecodable journal "
                             "line") from None
        if isinstance(payload, dict) and payload.get("kind") == "trace":
            spans.append(_span_from_payload(payload))
    return spans


def _bar(record: SpanRecord, origin: float, total: float) -> str:
    if total <= 0:
        return " " * _BAR_WIDTH
    lead = int(_BAR_WIDTH * (record.start - origin) / total)
    width = max(1, round(_BAR_WIDTH * record.duration / total))
    lead = min(lead, _BAR_WIDTH - 1)
    width = min(width, _BAR_WIDTH - lead)
    return " " * lead + "#" * width + " " * (_BAR_WIDTH - lead - width)


def _attr_text(attrs: dict[str, object]) -> str:
    if not attrs:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in attrs.items())
    return f"  [{inner}]"


def render_timeline(spans: list[SpanRecord]) -> str:
    """The span tree as an indented timeline plus per-phase totals.

    Sibling runs of more than a handful of same-named spans (per-cell
    ``evaluate`` spans, mostly) fold into one aggregate line so the
    output stays readable on full-protocol journals.
    """
    if not spans:
        return "no trace spans recorded\n"
    by_parent: dict[Union[int, None], list[SpanRecord]] = {}
    for record in sorted(spans, key=lambda r: r.span_id):
        by_parent.setdefault(record.parent_id, []).append(record)
    roots = by_parent.get(None, [])
    if not roots:  # orphaned subtree (parent span closed post-journal)
        known = {record.span_id for record in spans}
        roots = [record for record in spans
                 if record.parent_id not in known]
    origin = min(record.start for record in spans)
    horizon = max(record.start + record.duration for record in spans)
    total = horizon - origin

    lines = [f"trace: {len(spans)} spans over {total:.3f}s"]

    def walk(record: SpanRecord, depth: int) -> None:
        label = "  " * depth + record.name
        lines.append(f"{label:<28s} {record.duration:>9.3f}s  "
                     f"|{_bar(record, origin, total)}|"
                     f"{_attr_text(record.attrs)}")
        children = by_parent.get(record.span_id, [])
        groups: dict[str, list[SpanRecord]] = {}
        for child in children:
            groups.setdefault(child.name, []).append(child)
        for name, group in groups.items():
            if len(group) > _FOLD_THRESHOLD:
                label = "  " * (depth + 1) + f"{name} x{len(group)}"
                seconds = sum(child.duration for child in group)
                lines.append(f"{label:<28s} {seconds:>9.3f}s  "
                             f"|{' ' * _BAR_WIDTH}|  [folded]")
            else:
                for child in group:
                    walk(child, depth + 1)

    for root in roots:
        walk(root, 0)

    totals = sorted(
        ((name, sum(r.duration for r in group), len(group))
         for name, group in _by_name(spans).items()),
        key=lambda item: -item[1])
    lines.append("")
    lines.append("per-phase totals:")
    for name, seconds, count in totals:
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"  {name:<12s} {seconds:>9.3f}s  {share:5.1f}%  "
                     f"({count} span{'s' if count != 1 else ''})")
    return "\n".join(lines) + "\n"


def _by_name(spans: list[SpanRecord]) -> dict[str, list[SpanRecord]]:
    groups: dict[str, list[SpanRecord]] = {}
    for record in spans:
        groups.setdefault(record.name, []).append(record)
    return groups
