"""The clock authority for every telemetry timestamp in the repo.

Two invariants make instrumentation safe in a bit-identity codebase:

* **No wall clock.**  ``time.time`` / ``datetime.now`` are banned
  everywhere by the ``no-wall-clock`` lint rule; ``time.monotonic`` is
  legal only here and in the resilience supervisor.  Every span or
  latency measurement goes through a :class:`Clock` so the *one*
  ``time.monotonic`` call site below is the single thing the lint rule
  has to trust.
* **Determinism on demand.**  :class:`FakeClock` is a drop-in
  replacement whose readings are a pure function of how often it was
  read, so an instrumented run under a ``FakeClock`` produces
  byte-identical trace records on every execution — the property the
  FakeClock determinism tests pin.

Timing never feeds computation: clocks exist to *describe* a run
(spans, histograms), and results must be identical whether the clock is
real, fake, or absent.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "FakeClock", "SystemClock"]


class Clock:
    """A monotonic time source: ``now()`` in (fractional) seconds.

    The zero point is arbitrary; only differences are meaningful.
    """

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The real monotonic clock.

    This is the sole place outside ``core/resilience.py`` where
    ``time.monotonic`` is legal (``no-wall-clock`` lint rule).
    """

    def now(self) -> float:
        return time.monotonic()


class FakeClock(Clock):
    """A deterministic clock for tests and replayable traces.

    Every ``now()`` returns the current reading, then advances it by
    ``tick`` — so span durations become a pure function of how many
    clock reads happened between start and end, independent of the
    machine.  Use :meth:`advance` to model explicit passage of time.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward without consuming a tick."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
