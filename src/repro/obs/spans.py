"""Hierarchical trace spans: typed frozen records plus the tracer.

The span model mirrors the two call trees in the repo:

* engine: ``campaign → plan → dispatch → evaluate → reduce``
* service: ``service → job → run`` (the ``run`` span encloses the
  engine tree of the job's campaign)

A :class:`SpanRecord` is pure frozen data (the frozen-records lint gate
covers this module); the :class:`Tracer` assigns ids from a plain
counter and tracks nesting with an explicit stack, so span identity is
deterministic — under a :class:`~repro.obs.clock.FakeClock` the whole
trace is byte-reproducible.

Records can be teed into a ``sink`` as they close; the campaign engine
points the sink at :meth:`repro.core.journal.CampaignJournal.trace`
while a journal is open, which is how ``{"kind": "trace"}`` audit lines
end up interleaved with the journal's result cells.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from .clock import Clock, SystemClock

__all__ = ["SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval in a trace tree.

    ``span_id``/``parent_id`` encode the hierarchy (``parent_id`` is
    ``None`` for roots); ``start`` and ``duration`` are clock seconds
    (arbitrary zero point — only differences matter); ``attrs`` carries
    small JSON-safe annotations (cell coordinates, executor name, …).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float
    attrs: dict[str, object] = field(default_factory=dict)


class Tracer:
    """Builds the span tree and retains every closed record.

    One tracer per observed run.  Spans nest via :meth:`span` (a
    context manager); the innermost open span on the calling thread's
    stack becomes the parent of the next one opened.  Closed records
    append to :attr:`spans` and are forwarded to :attr:`sink` when one
    is attached (see :meth:`sink_to`).
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.spans: list[SpanRecord] = []
        #: called with each record as its span closes (journal tee)
        self.sink: Optional[Callable[[SpanRecord], None]] = None
        self._stack: list[int] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Open a span named ``name``; it closes (and is recorded) when
        the ``with`` block exits, exception or not."""
        with self._lock:
            span_id = next(self._ids)
            parent_id = self._stack[-1] if self._stack else None
            self._stack.append(span_id)
        start = self.clock.now()
        try:
            yield
        finally:
            duration = self.clock.now() - start
            record = SpanRecord(name=name, span_id=span_id,
                                parent_id=parent_id, start=start,
                                duration=duration, attrs=dict(attrs))
            with self._lock:
                if self._stack and self._stack[-1] == span_id:
                    self._stack.pop()
                self.spans.append(record)
                sink = self.sink
            if sink is not None:
                sink(record)

    @contextmanager
    def sink_to(self,
                sink: Callable[[SpanRecord], None]) -> Iterator[None]:
        """Tee records closing inside the block into ``sink`` (chained
        in front of any sink already attached)."""
        with self._lock:
            prior = self.sink

            def _tee(record: SpanRecord) -> None:
                sink(record)
                if prior is not None:
                    prior(record)

            self.sink = _tee
        try:
            yield
        finally:
            with self._lock:
                self.sink = prior

    def phase_totals(self) -> dict[str, float]:
        """Total seconds spent per span name, over all closed spans."""
        totals: dict[str, float] = {}
        with self._lock:
            for record in self.spans:
                totals[record.name] = (totals.get(record.name, 0.0)
                                       + record.duration)
        return totals
