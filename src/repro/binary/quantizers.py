"""Quantizers for binarized networks (the Larq-equivalent set).

A quantizer exposes ``quantize(x)`` for the forward pass and
``grad(latent, upstream)`` implementing its straight-through estimator for
the backward pass.  Three families cover every architecture in the paper's
Table II:

* :class:`SteSign` — plain binarization, used by the strictly binarized
  models (BinaryDenseNet*, BinaryResNetE18, BinaryAlexNet, MeliusNet22);
* :class:`ApproxSign` — Bi-Real Net's polynomial STE;
* :class:`MagnitudeAwareSign` — XNOR-Net's per-channel gain, the reason the
  paper notes XNOR-Net "weights are multiplied by an individual gain".
"""

from __future__ import annotations

import numpy as np

__all__ = ["Quantizer", "SteSign", "ApproxSign", "MagnitudeAwareSign", "get"]


def _sign(x: np.ndarray) -> np.ndarray:
    """Bipolar sign with sign(0) = +1 (Larq convention)."""
    return np.where(x >= 0, 1.0, -1.0).astype(np.float32)


class Quantizer:
    """Base quantizer interface."""

    #: True when quantize() produces values in {-1, +1} exactly — i.e. the
    #: layer's arithmetic is expressible as XNOR/popcount on a crossbar.
    strictly_binary = True

    def quantize(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def grad(self, latent: np.ndarray, upstream: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self):
        return type(self).__name__


class SteSign(Quantizer):
    """sign(x) forward, hard-tanh straight-through estimator backward."""

    def __init__(self, clip_value: float = 1.0):
        self.clip_value = clip_value

    def quantize(self, x):
        return _sign(x)

    def grad(self, latent, upstream):
        return upstream * (np.abs(latent) <= self.clip_value)


class ApproxSign(Quantizer):
    """Bi-Real Net's ApproxSign: sign forward, piecewise-polynomial STE.

    d/dx ≈ 2 + 2x on [-1, 0) and 2 - 2x on [0, 1), zero elsewhere.
    """

    def quantize(self, x):
        return _sign(x)

    def grad(self, latent, upstream):
        inside = np.abs(latent) < 1.0
        slope = (2.0 - 2.0 * np.abs(latent)) * inside
        return upstream * slope


class MagnitudeAwareSign(Quantizer):
    """XNOR-Net weight quantizer: sign(w) scaled by a per-channel gain.

    The gain is the mean absolute latent weight over every axis except the
    last (output-channel) axis.  The output is *not* strictly binary, which
    is why the paper notes FLIM must "slightly adjust the bit-flip mask" for
    XNOR-Net — the crossbar computes the sign part, the gain lives in CMOS.
    """

    strictly_binary = False

    def quantize(self, x):
        axes = tuple(range(x.ndim - 1))
        alpha = np.abs(x).mean(axis=axes, keepdims=True)
        self._last_alpha = alpha
        return _sign(x) * alpha.astype(np.float32)

    def grad(self, latent, upstream):
        # The gain is treated as a constant during backprop (Larq behaviour);
        # the binarization itself uses the hard-tanh STE.
        axes = tuple(range(latent.ndim - 1))
        alpha = np.abs(latent).mean(axis=axes, keepdims=True)
        return upstream * alpha * (np.abs(latent) <= 1.0)

    def split(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(binary_part, gain)`` with ``quantize(x) == binary * gain``.

        The fault injector corrupts only the binary part (it is what lives
        on the crossbar) and re-applies the CMOS gain afterwards.
        """
        axes = tuple(range(x.ndim - 1))
        alpha = np.abs(x).mean(axis=axes, keepdims=True).astype(np.float32)
        return _sign(x), alpha


_REGISTRY = {
    "ste_sign": SteSign,
    "approx_sign": ApproxSign,
    "magnitude_aware_sign": MagnitudeAwareSign,
}


def get(name_or_quantizer) -> Quantizer | None:
    """Resolve a quantizer by name; pass instances and None through."""
    if name_or_quantizer is None or isinstance(name_or_quantizer, Quantizer):
        return name_or_quantizer
    try:
        return _REGISTRY[name_or_quantizer]()
    except KeyError:
        raise ValueError(
            f"unknown quantizer {name_or_quantizer!r}; known: {sorted(_REGISTRY)}"
        ) from None
