"""Quantized layers — the Larq-equivalent QuantConv2D / QuantDense.

These are the layers the paper maps onto memristive crossbars.  Each layer

* binarizes inputs and/or kernels through pluggable quantizers,
* computes the fault-free feature map,
* then runs the attached *fault hooks* — exactly the injection point the
  paper patched into Larq ("the original convolution method has been
  overwritten ... the fault masks are applied by performing another XNOR
  operation", §III).

Two hooks exist, matching the two physical fault granularities described in
DESIGN.md §3:

``kernel_fault_hook(binary_kernel, layer) -> binary_kernel``
    Applied to the binarized kernel before the GEMM.  Stuck-at faults on
    weight cells live here: the corruption persists for every XNOR that
    reuses the cell.

``output_fault_hook(feature_map, layer) -> feature_map``
    Applied to the computed feature map.  Transient bit-flips, dynamic
    faults and structural row/column faults live here.

``product_fault_hook(out_flat, cols, qw, layer) -> out_flat``
    Device-true reference path: receives the flat GEMM result together
    with the bipolar im2col matrix and kernel so individual XNOR products
    can be corrupted.  Slower (forces the explicit GEMM formulation);
    used for verification and ablation.

Execution backends
------------------
Every quantized layer carries an ``execution_backend`` attribute:

``"float"`` (default)
    im2col + float32 GEMM.  Exact: every partial sum of ±1 terms is a
    small integer, so float32 accumulation never rounds.

``"packed"``
    The inference fast path: operands are bit-packed 64-per-uint64 word
    and the GEMM runs as XNOR + popcount
    (:func:`repro.binary.bitops.packed_matmul_words`), the arithmetic the
    LIM crossbar natively performs.  Weights are packed once per fault
    plan and cached; activations are packed per batch.  The packed path is
    bit-identical to the float path and composes with the kernel and
    output fault hooks (weight stuck-at masks are applied to the binary
    kernel *before* packing).  Layers fall back to the float path
    automatically whenever packed semantics cannot express the
    computation: during training, when a product-level hook is attached,
    when a quantizer is not strictly binary (XNOR-Net's magnitude-aware
    gain), or for ``same``-padded convolutions (zero padding has no
    bipolar encoding).

Inference input caching: when a layer sees a *read-only* input array
(``x.flags.writeable == False``) at inference time, it memoizes the
derived im2col / packed representation keyed on array identity.  The
campaign engine exploits this by replaying the same read-only activation
batches across repetitions — the expensive patch extraction and packing
then happen once per campaign instead of once per repetition.  Writeable
arrays are never cached, so ordinary training/prediction is unaffected.

The memo store is an :class:`InputRepCache` per layer: an LRU cache with
per-owner budgets.  Ad-hoc (ownerless) use keeps the legacy bound of
:data:`_INPUT_CACHE_SLOTS` entries; a campaign evaluator registers itself
as an owner and sizes its budget to the campaign's batch count under a
configurable byte cap, so a suffix split with dozens of test batches no
longer cycles a fixed FIFO at a 0% hit rate — and two campaigns sharing
one model cannot evict each other's entries.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..nn import initializers, ops
from ..nn.layers import Layer
from . import bitops, quantizers

__all__ = ["InputRepCache", "QuantLayer", "QuantConv2D", "QuantDense"]

#: memoized read-only input representations per layer for *uncoordinated*
#: use (no owner registered); campaigns size their own budget via
#: :meth:`InputRepCache.configure`
_INPUT_CACHE_SLOTS = 8


def _rep_nbytes(value) -> int:
    """Byte footprint of a cached representation (arrays, or tuples of
    arrays and shape metadata)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_rep_nbytes(item) for item in value)
    return 0


class InputRepCache:
    """Per-layer LRU cache of derived inference-input representations.

    Entries are keyed on ``(tag, input-array identity)`` and grouped by
    *owner* — typically a campaign evaluator's token (a ``weakref.ref``),
    or ``None`` for ad-hoc use.  Each owner has its own slot/byte budget
    and its own LRU eviction order, so concurrent campaigns sharing one
    model never evict each other's entries.  Lookups match entries from
    any owner (array identity cannot collide across datasets), but hits
    and misses are charged to the owner doing the lookup.

    Only read-only arrays (``x.flags.writeable == False``) are ever
    stored or counted: a writeable array may mutate after memoization,
    so it is silently ignored — exactly the legacy FIFO contract.
    """

    def __init__(self):
        #: LRU order, oldest first: (owner, tag, x, value, nbytes)
        self._entries: list[tuple] = []
        #: owner -> (max entries, max bytes | None)
        self._budgets: dict = {}
        #: owner -> [hits, misses]
        self._stats: dict = {}

    # -- bookkeeping -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[tuple]:
        """Snapshot of the raw entry tuples, oldest first (testing aid)."""
        return list(self._entries)

    def configure(self, owner, slots: int,
                  max_bytes: int | None = None) -> None:
        """Set ``owner``'s budget: at most ``slots`` entries and (when not
        ``None``) at most ``max_bytes`` bytes of cached representations."""
        self._budgets[owner] = (slots, max_bytes)
        self._stats.setdefault(owner, [0, 0])

    def stats(self, owner=None) -> dict:
        """Hit/miss counters and current footprint for one owner."""
        self._purge_dead_owners()
        hits, misses = self._stats.get(owner, (0, 0))
        mine = [entry for entry in self._entries if entry[0] is owner]
        total = hits + misses
        return {"hits": hits, "misses": misses, "entries": len(mine),
                "bytes": sum(entry[4] for entry in mine),
                "hit_rate": hits / total if total else 0.0}

    # -- lookup/insert ---------------------------------------------------
    def get(self, tag: str, x: np.ndarray, owner=None):
        """Cached representation for ``(tag, x)`` or ``None``; charges the
        hit or miss to ``owner`` and refreshes the entry's LRU position."""
        # purge before the writeable early-return so a dropped campaign's
        # pinned entries are released by ordinary (uncached) inference too
        self._purge_dead_owners()
        if x.flags.writeable:
            return None  # never cached, so not a miss either
        for index, entry in enumerate(self._entries):
            if entry[1] == tag and entry[2] is x:
                self._entries.append(self._entries.pop(index))
                self._stats.setdefault(owner, [0, 0])[0] += 1
                return entry[3]
        self._stats.setdefault(owner, [0, 0])[1] += 1
        return None

    def peek(self, tag: str, x: np.ndarray):
        """:meth:`get` without LRU or statistics side effects (used by the
        campaign engine's plane publisher)."""
        for entry in self._entries:
            if entry[1] == tag and entry[2] is x:
                return entry[3]
        return None

    def put(self, tag: str, x: np.ndarray, value, owner=None) -> None:
        """Memoize ``value`` for ``(tag, x)`` under ``owner``'s budget."""
        if x.flags.writeable:
            return  # only immutable-by-contract arrays are safe to memoize
        self._purge_dead_owners()
        self._entries.append((owner, tag, x, value, _rep_nbytes(value)))
        self._evict(owner)

    # -- eviction --------------------------------------------------------
    def drop_owner(self, owner) -> None:
        """Release one owner's entries, budget, and counters — other
        owners' cached representations are untouched (a campaign closing
        must not thrash its neighbours)."""
        self._entries = [e for e in self._entries if e[0] is not owner]
        self._budgets.pop(owner, None)
        self._stats.pop(owner, None)

    def _purge_dead_owners(self) -> None:
        """Drop entries/budgets of garbage-collected evaluator tokens."""
        def dead(owner) -> bool:
            return isinstance(owner, weakref.ref) and owner() is None

        if any(dead(entry[0]) for entry in self._entries):
            self._entries = [e for e in self._entries if not dead(e[0])]
        for owner in [o for o in self._budgets if dead(o)]:
            self._budgets.pop(owner, None)
            self._stats.pop(owner, None)

    def _evict(self, owner) -> None:
        """LRU-evict ``owner``'s entries until within its budget."""
        slots, max_bytes = self._budgets.get(owner,
                                             (_INPUT_CACHE_SLOTS, None))
        while True:
            mine = [entry for entry in self._entries if entry[0] is owner]
            if len(mine) <= slots and (
                    max_bytes is None
                    or sum(entry[4] for entry in mine) <= max_bytes):
                return
            self._entries.remove(mine[0])


class QuantLayer(Layer):
    """Shared machinery of quantized layers: quantizers + fault hooks."""

    def __init__(self, input_quantizer=None, kernel_quantizer="ste_sign",
                 name: str | None = None):
        super().__init__(name)
        self.input_quantizer = quantizers.get(input_quantizer)
        self.kernel_quantizer = quantizers.get(kernel_quantizer)
        self.kernel_fault_hook = None
        self.output_fault_hook = None
        self.product_fault_hook = None
        self.execution_backend = "float"
        self._built_input_shape: tuple[int, ...] | None = None
        #: (kernel_fault_hook token, packed words | None, reduction length)
        self._packed_kernel_cache: tuple | None = None
        #: LRU store of derived input representations (im2col / packing)
        self._input_cache = InputRepCache()
        #: budget owner charged for cache traffic (set per evaluation by
        #: the campaign evaluator's scope; ``None`` = ad-hoc default)
        self._cache_owner = None

    # -- fault-injection plumbing ---------------------------------------
    def clear_fault_hooks(self) -> None:
        self.kernel_fault_hook = None
        self.output_fault_hook = None
        self.product_fault_hook = None

    def _invalidate_caches(self) -> None:
        """Drop derived-weight caches (call after in-place weight updates)."""
        self._packed_kernel_cache = None

    def _apply_kernel_hook(self, qkernel: np.ndarray) -> np.ndarray:
        if self.kernel_fault_hook is None:
            return qkernel
        return self.kernel_fault_hook(qkernel, self)

    def _apply_output_hook(self, out: np.ndarray) -> np.ndarray:
        if self.output_fault_hook is None:
            return out
        return self.output_fault_hook(out, self)

    def _quantize_kernel(self) -> np.ndarray:
        kernel = self.params["kernel"]
        if self.kernel_quantizer is None:
            return self._apply_kernel_hook(kernel)
        if isinstance(self.kernel_quantizer, quantizers.MagnitudeAwareSign):
            # Only the sign part lives on the crossbar; faults corrupt it,
            # the CMOS gain is re-applied afterwards.
            binary, gain = self.kernel_quantizer.split(kernel)
            return self._apply_kernel_hook(binary) * gain
        return self._apply_kernel_hook(self.kernel_quantizer.quantize(kernel))

    # -- packed fast path -------------------------------------------------
    def _packed_eligible(self) -> bool:
        """Whether the packed XNOR/popcount backend can run this layer."""
        return (self.execution_backend == "packed"
                and self.product_fault_hook is None
                and getattr(self.input_quantizer, "strictly_binary", False)
                and getattr(self.kernel_quantizer, "strictly_binary", False))

    def _packed_kernel_words(self) -> tuple[np.ndarray | None, int]:
        """Packed (transposed) binary kernel, cached per fault-hook state.

        The cache token is the kernel-hook object itself: attaching or
        detaching a fault plan swaps the hook and thereby forces a repack,
        while repeated inference under one plan packs exactly once.
        Returns ``(None, 0)`` when the hooked kernel is not bipolar.
        """
        token = self.kernel_fault_hook
        cache = self._packed_kernel_cache
        if cache is not None and cache[0] is token:
            return cache[1], cache[2]
        qkernel = self._quantize_kernel()
        flat = qkernel.reshape(-1, qkernel.shape[-1])
        try:
            words, length = bitops.pack_bipolar(np.ascontiguousarray(flat.T))
        except ValueError:
            words, length = None, 0
        self._packed_kernel_cache = (token, words, length)
        return words, length

    def _input_cache_get(self, tag: str, x: np.ndarray):
        return self._input_cache.get(tag, x, owner=self._cache_owner)

    def _input_cache_put(self, tag: str, x: np.ndarray, value) -> None:
        self._input_cache.put(tag, x, value, owner=self._cache_owner)

    # -- LIM geometry ----------------------------------------------------
    @property
    def is_mapped(self) -> bool:
        """Whether this layer's arithmetic runs on the crossbar.

        Following the paper (and X-Fault's conservative approach), a layer
        is mapped only when both operands are binary so every
        multiply-accumulate term is a genuine XNOR; anything non-binary
        (e.g. a first conv fed with grey-scale pixels) stays in CMOS.
        """
        return self.kernel_quantizer is not None and self.input_quantizer is not None

    def reduction_length(self) -> int:
        """Number of XNOR products accumulated per output element (K)."""
        raise NotImplementedError

    def outputs_per_image(self) -> int:
        """Number of output elements per input image (O)."""
        raise NotImplementedError

    @property
    def output_channels(self) -> int:
        """Output-channel count (F) — the crossbar's column dimension."""
        raise NotImplementedError

    def positions_per_image(self) -> int:
        """Streamed input positions per image (P = O / F)."""
        return self.outputs_per_image() // self.output_channels

    def xnor_ops_per_image(self) -> int:
        """Total XNOR operations per image: N = O * K."""
        return self.outputs_per_image() * self.reduction_length()

    # -- Table II bookkeeping ---------------------------------------------
    def binary_param_count(self) -> int:
        return int(self.params["kernel"].size) if self.kernel_quantizer else 0

    def full_precision_param_count(self) -> int:
        total = sum(int(p.size) for p in self.params.values())
        return total - self.binary_param_count()


class QuantConv2D(QuantLayer):
    """Binarized 2-D convolution (NHWC, kernel ``(kh, kw, c_in, c_out)``)."""

    def __init__(self, filters: int, kernel_size: int, stride: int = 1,
                 padding: str = "valid", use_bias: bool = False,
                 input_quantizer=None, kernel_quantizer="ste_sign",
                 kernel_initializer="glorot_uniform", name: str | None = None):
        super().__init__(input_quantizer, kernel_quantizer, name)
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        self.kernel_initializer = initializers.get(kernel_initializer)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        _, _, c_in = input_shape
        shape = (self.kernel_size, self.kernel_size, c_in, self.filters)
        self.params["kernel"] = self.kernel_initializer(shape, rng)
        self.grads["kernel"] = np.zeros_like(self.params["kernel"])
        if self.use_bias:
            self.params["bias"] = np.zeros(self.filters, dtype=np.float32)
            self.grads["bias"] = np.zeros_like(self.params["bias"])
        self._built_input_shape = tuple(input_shape)
        super(QuantLayer, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        h, w, _ = input_shape
        k, s = self.kernel_size, self.stride
        if self.padding == "same":
            oh, ow = -(-h // s), -(-w // s)
        else:
            oh = ops.conv_output_size(h, k, s, 0)
            ow = ops.conv_output_size(w, k, s, 0)
        return (oh, ow, self.filters)

    def reduction_length(self):
        _, _, c_in = self._built_input_shape
        return self.kernel_size * self.kernel_size * c_in

    def outputs_per_image(self):
        oh, ow, c_out = self.compute_output_shape(self._built_input_shape)
        return oh * ow * c_out

    @property
    def output_channels(self):
        return self.filters

    def _forward_packed(self, x) -> np.ndarray | None:
        """Packed XNOR/popcount convolution; ``None`` -> float fallback.

        ``same`` padding injects zeros into the im2col matrix, which have
        no bipolar encoding — only ``valid`` convolutions run packed.
        """
        if self.padding != "valid":
            return None
        kwords, length = self._packed_kernel_words()
        if kwords is None:
            return None
        cached = self._input_cache_get("packed", x)
        if cached is None:
            # sign-threshold first: im2col then gathers uint8, not float32,
            # and packing happens directly from the {0,1} bit planes
            bits = (x >= 0).astype(np.uint8)
            cols_bits, (oh, ow) = ops.im2col(
                bits, self.kernel_size, self.kernel_size, self.stride,
                self.padding)
            cached = (bitops.pack_bits(cols_bits), (oh, ow))
            self._input_cache_put("packed", x, cached)
        xwords, (oh, ow) = cached
        flat = bitops.packed_matmul_words(xwords, kwords, length)
        return flat.astype(np.float32).reshape(x.shape[0], oh, ow, self.filters)

    def forward(self, x, training=False):
        if not training and self._packed_eligible():
            out = self._forward_packed(x)
            if out is not None:
                out = self._apply_output_hook(out)
                if self.use_bias:
                    out = out + self.params["bias"]
                return out
        qkernel = self._quantize_kernel()
        cached = None if training else self._input_cache_get("cols", x)
        if cached is None:
            qx = self.input_quantizer.quantize(x) if self.input_quantizer else x
            cached = ops.im2col(qx, self.kernel_size, self.kernel_size,
                                self.stride, self.padding)
            if not training:
                self._input_cache_put("cols", x, cached)
        else:
            qx = None
        cols, (oh, ow) = cached
        qw = qkernel.reshape(-1, self.filters)
        flat = cols @ qw
        if self.product_fault_hook is not None:
            flat = self.product_fault_hook(flat, cols, qw, self)
        out = flat.reshape(x.shape[0], oh, ow, self.filters)
        out = self._apply_output_hook(out)
        if self.use_bias:
            out = out + self.params["bias"]
        if training:
            self._cache = (x, qx, qkernel)
        return out

    def backward(self, dout):
        x, qx, qkernel = self._cache
        self._invalidate_caches()  # weights change right after this pass
        if self.use_bias:
            self.grads["bias"][...] = dout.sum(axis=(0, 1, 2))
        dqx, dqkernel = ops.conv2d_backward(
            dout, qx, qkernel, self.stride, self.padding)
        if self.kernel_quantizer is not None:
            self.grads["kernel"][...] = self.kernel_quantizer.grad(
                self.params["kernel"], dqkernel)
        else:
            self.grads["kernel"][...] = dqkernel
        if self.input_quantizer is not None:
            return self.input_quantizer.grad(x, dqx)
        return dqx


class QuantDense(QuantLayer):
    """Binarized fully connected layer."""

    def __init__(self, units: int, use_bias: bool = False,
                 input_quantizer=None, kernel_quantizer="ste_sign",
                 kernel_initializer="glorot_uniform", name: str | None = None):
        super().__init__(input_quantizer, kernel_quantizer, name)
        self.units = units
        self.use_bias = use_bias
        self.kernel_initializer = initializers.get(kernel_initializer)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        (features,) = input_shape
        self.params["kernel"] = self.kernel_initializer((features, self.units), rng)
        self.grads["kernel"] = np.zeros_like(self.params["kernel"])
        if self.use_bias:
            self.params["bias"] = np.zeros(self.units, dtype=np.float32)
            self.grads["bias"] = np.zeros_like(self.params["bias"])
        self._built_input_shape = tuple(input_shape)
        super(QuantLayer, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        return (self.units,)

    def reduction_length(self):
        return self._built_input_shape[0]

    def outputs_per_image(self):
        return self.units

    @property
    def output_channels(self):
        return self.units

    def _forward_packed(self, x) -> np.ndarray | None:
        """Packed XNOR/popcount matmul; ``None`` -> float fallback."""
        kwords, length = self._packed_kernel_words()
        if kwords is None:
            return None
        xwords = self._input_cache_get("packed", x)
        if xwords is None:
            xwords, _ = bitops.pack_sign(x)
            self._input_cache_put("packed", x, xwords)
        flat = bitops.packed_matmul_words(xwords, kwords, length)
        return flat.astype(np.float32)

    def forward(self, x, training=False):
        if not training and self._packed_eligible():
            out = self._forward_packed(x)
            if out is not None:
                out = self._apply_output_hook(out)
                if self.use_bias:
                    out = out + self.params["bias"]
                return out
        qx = self.input_quantizer.quantize(x) if self.input_quantizer else x
        qkernel = self._quantize_kernel()
        out = qx @ qkernel
        if self.product_fault_hook is not None:
            out = self.product_fault_hook(out, qx, qkernel, self)
        out = self._apply_output_hook(out)
        if self.use_bias:
            out = out + self.params["bias"]
        if training:
            self._cache = (x, qx, qkernel)
        return out

    def backward(self, dout):
        x, qx, qkernel = self._cache
        self._invalidate_caches()  # weights change right after this pass
        if self.use_bias:
            self.grads["bias"][...] = dout.sum(axis=0)
        dqkernel = qx.T @ dout
        dqx = dout @ qkernel.T
        if self.kernel_quantizer is not None:
            self.grads["kernel"][...] = self.kernel_quantizer.grad(
                self.params["kernel"], dqkernel)
        else:
            self.grads["kernel"][...] = dqkernel
        if self.input_quantizer is not None:
            return self.input_quantizer.grad(x, dqx)
        return dqx
