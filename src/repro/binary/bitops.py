"""Bit-exact XNOR/popcount kernels on packed uint64 words.

These kernels compute the same binary GEMM as the float path but in the
integer domain the hardware actually operates in: bipolar {-1, +1} values
are packed 64-per-word (+1 -> bit 1), products become XNOR, and the
accumulation becomes ``K - 2 * popcount(xor)``.

Beyond serving as an independent oracle for the binary layers, they are an
execution backend: :mod:`repro.binary.layers` runs its dense/conv forward
passes through :func:`packed_matmul_words` when a layer's execution backend
is set to ``"packed"``.  Because every partial sum of ±1 terms is a small
integer (|sum| <= K < 2**24), the float32 GEMM is exact too — the packed
path is bit-identical to it, just ~64x denser in memory traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bipolar",
    "pack_bits",
    "pack_sign",
    "unpack_bipolar",
    "xnor_accumulate",
    "packed_matmul_words",
    "binary_matmul",
]

_WORD = 64
_BLOCK_WORDS = 1 << 21  # ~16 MiB of uint64 XOR temporary per GEMM block


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a uint8 {0,1} array along its last axis into uint64 words.

    Parameters
    ----------
    bits : ndarray, uint8
        Shape ``(..., length)`` with values in {0, 1}.

    Returns
    -------
    ndarray, uint64
        Shape ``(..., ceil(length / 64))``.  Bit ``k`` of the packed
        stream is element ``k`` of the input; pad bits are 0.

    Notes
    -----
    Uses ``np.packbits`` + a little-endian uint64 view, which is an order
    of magnitude faster than the shift-and-sum formulation.  Deterministic
    bit layout: equal inputs pack to equal words on every platform numpy
    supports (the view is explicitly ``<u8``).
    """
    length = bits.shape[-1]
    pad = (-length) % _WORD
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1)
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    words = np.ascontiguousarray(packed_bytes).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def pack_bipolar(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack a bipolar {-1,+1} array along its last axis into uint64 words.

    Parameters
    ----------
    x : ndarray
        Shape ``(..., length)`` with values in {-1, +1} (any real dtype).

    Returns
    -------
    (ndarray, int)
        ``(packed, length)``: uint64 words of shape
        ``(..., ceil(length / 64))`` and the unpadded reduction length.
        +1 maps to bit 1, -1 to bit 0; trailing pad bits are 0 and are
        cancelled out by the caller using ``length``.

    Raises
    ------
    ValueError
        If any element is not exactly ±1 (the packed domain cannot encode
        zeros or scaled values).
    """
    if not np.all(np.abs(x) == 1):
        raise ValueError("pack_bipolar expects values in {-1, +1}")
    bits = (x > 0).astype(np.uint8)
    return pack_bits(bits), x.shape[-1]


def pack_sign(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack ``sign(x)`` (with sign(0) = +1, the Larq convention) directly.

    Equivalent to ``pack_bipolar(ste_sign(x))`` without materializing the
    intermediate ±1 float array — the packed fast path quantizes and packs
    activations in one pass.
    """
    bits = (x >= 0).astype(np.uint8)
    return pack_bits(bits), x.shape[-1]


def unpack_bipolar(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`."""
    shifts = np.arange(_WORD, dtype=np.uint64)
    bits = (packed[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(packed.shape[:-1] + (-1,))[..., :length]
    return np.where(flat == 1, 1.0, -1.0).astype(np.float32)


def xnor_accumulate(a_packed: np.ndarray, b_packed: np.ndarray, length: int) -> np.ndarray:
    """Sum of elementwise XNOR products of two packed bipolar vectors.

    Parameters
    ----------
    a_packed, b_packed : ndarray, uint64
        Broadcast-compatible packed operands (last axis = words).
    length : int
        Unpadded reduction length K.

    Returns
    -------
    ndarray, int64
        ``(a * b).sum(-1)`` of the unpacked ±1 vectors: each matching bit
        contributes +1, each mismatch -1, so the sum equals
        ``length - 2 * popcount(a ^ b)`` once pad bits (equal in both)
        are discounted.  Exact integer arithmetic — no rounding, ever.
    """
    xor = np.bitwise_xor(a_packed, b_packed)
    mismatches = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
    return (length - 2 * mismatches).astype(np.int64)


def packed_matmul_words(a_words: np.ndarray, b_words: np.ndarray,
                        length: int) -> np.ndarray:
    """Binary GEMM on pre-packed operands: ``(m, w) x (n, w) -> (m, n)``.

    Parameters
    ----------
    a_words : ndarray, uint64
        ``m`` packed rows, ``w = ceil(length / 64)`` words wide.
    b_words : ndarray, uint64
        ``n`` packed rows of the *transposed* right operand, same width.
    length : int
        Unpadded reduction length K (cancels the shared pad bits).

    Returns
    -------
    ndarray, int64
        Shape ``(m, n)``; bit-identical to the float32 GEMM of the
        unpacked ±1 matrices (every partial sum is a small integer).

    Notes
    -----
    Row blocks bound the XOR temporary to ~``_BLOCK_WORDS`` words so
    large im2col matrices do not blow up memory; the block walk is a pure
    reassociation of integer additions, so results do not depend on the
    block size.
    """
    m = a_words.shape[0]
    n = b_words.shape[0]
    words = a_words.shape[-1]
    out = np.empty((m, n), dtype=np.int64)
    block = max(1, _BLOCK_WORDS // max(1, n))
    mismatches = np.zeros((min(block, m), n), dtype=np.int64)
    for start in range(0, m, block):
        stop = min(start + block, m)
        acc = mismatches[:stop - start]
        acc[...] = 0
        # accumulate word-by-word: keeps temporaries at (block, n) instead
        # of (block, n, words) and beats the broadcast+reduce formulation
        for wi in range(words):
            acc += np.bitwise_count(a_words[start:stop, wi, None]
                                    ^ b_words[None, :, wi])
        out[start:stop] = length - 2 * acc
    return out


def binary_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-exact ``a @ b`` for bipolar matrices via packed XNOR/popcount.

    ``a`` is ``(m, k)``, ``b`` is ``(k, n)``; the result is int64 ``(m, n)``.
    """
    a_packed, length = pack_bipolar(a)
    b_packed, _ = pack_bipolar(np.ascontiguousarray(b.T))
    return packed_matmul_words(a_packed, b_packed, length)
