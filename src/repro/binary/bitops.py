"""Bit-exact XNOR/popcount kernels on packed uint64 words.

These kernels compute the same binary GEMM as the float path but in the
integer domain the hardware actually operates in: bipolar {-1, +1} values
are packed 64-per-word (+1 -> bit 1), products become XNOR, and the
accumulation becomes ``K - 2 * popcount(xor)``.  They back the ablation
benchmark comparing packed-integer vs float-GEMM execution and serve as an
independent oracle for the binary layers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bipolar",
    "unpack_bipolar",
    "xnor_accumulate",
    "binary_matmul",
]

_WORD = 64


def pack_bipolar(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack a bipolar {-1,+1} array along its last axis into uint64 words.

    Returns ``(packed, original_length)``.  +1 maps to bit 1, -1 to bit 0;
    trailing pad bits are 0 and cancelled out by the caller using the
    original length.
    """
    if not np.all(np.abs(x) == 1):
        raise ValueError("pack_bipolar expects values in {-1, +1}")
    bits = (x > 0).astype(np.uint8)
    length = bits.shape[-1]
    pad = (-length) % _WORD
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1)
    words = bits.reshape(bits.shape[:-1] + (-1, _WORD))
    weights = (np.uint64(1) << np.arange(_WORD, dtype=np.uint64))
    packed = (words.astype(np.uint64) * weights).sum(axis=-1, dtype=np.uint64)
    return packed, length


def unpack_bipolar(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`."""
    shifts = np.arange(_WORD, dtype=np.uint64)
    bits = (packed[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(packed.shape[:-1] + (-1,))[..., :length]
    return np.where(flat == 1, 1.0, -1.0).astype(np.float32)


def xnor_accumulate(a_packed: np.ndarray, b_packed: np.ndarray, length: int) -> np.ndarray:
    """Sum of elementwise XNOR products of two packed bipolar vectors.

    Equivalent to ``(a * b).sum(-1)`` for the unpacked ±1 vectors: each
    matching bit contributes +1, each mismatch -1, so the sum equals
    ``length - 2 * popcount(a ^ b)`` once pad bits (equal in both) are
    discounted.
    """
    xor = np.bitwise_xor(a_packed, b_packed)
    mismatches = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
    pad = (-length) % _WORD
    del pad  # pad bits are 0 in both operands, so they never mismatch
    return (length - 2 * mismatches).astype(np.int64)


def binary_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-exact ``a @ b`` for bipolar matrices via packed XNOR/popcount.

    ``a`` is ``(m, k)``, ``b`` is ``(k, n)``; the result is int64 ``(m, n)``.
    """
    a_packed, length = pack_bipolar(a)
    b_packed, _ = pack_bipolar(np.ascontiguousarray(b.T))
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.int64)
    for row in range(a.shape[0]):
        xor = np.bitwise_xor(a_packed[row][None, :], b_packed)
        mismatches = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
        out[row] = length - 2 * mismatches
    return out
