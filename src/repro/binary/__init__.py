"""Binarized-network building blocks — the Larq substitute.

Quantized layers (:class:`QuantConv2D`, :class:`QuantDense`) expose the
fault hooks the FLIM injector attaches to, plus quantizers and bit-exact
XNOR/popcount kernels.
"""

from . import bitops, quantizers
from .layers import QuantConv2D, QuantDense, QuantLayer
from .quantizers import ApproxSign, MagnitudeAwareSign, Quantizer, SteSign

__all__ = [
    "bitops", "quantizers",
    "QuantLayer", "QuantConv2D", "QuantDense",
    "Quantizer", "SteSign", "ApproxSign", "MagnitudeAwareSign",
]
