"""FLIM reproduction — fault injection for native logic-in-memory BNNs.

Reproduces Staudigl et al., "Fault Injection in Native Logic-in-Memory
Computation on Neuromorphic Hardware" (DAC 2023) as a self-contained
numpy library.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record.

Subpackages
-----------
``repro.nn``          numpy NN engine (TensorFlow substitute)
``repro.binary``      binarized layers + quantizers (Larq substitute)
``repro.lim``         memristive crossbar substrate + device-level X-Fault
``repro.core``        FLIM: fault generator, masks, vectors, injector
``repro.api``         typed experiment registry + streaming run handles
``repro.scenarios``   declarative lifetime/environment fault scenarios
``repro.models``      binary LeNet + the 9 Table-II architectures (scaled)
``repro.data``        synthetic MNIST / ImageNet stand-ins
``repro.analysis``    metrics, aggregation, plotting, runtime accounting
``repro.experiments`` per-figure experiment runners
"""

__version__ = "1.0.0"
