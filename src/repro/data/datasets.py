"""Dataset container with the small conveniences the experiments need."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """Labelled image set: ``x`` is NHWC float32, ``y`` integer labels."""

    x: np.ndarray
    y: np.ndarray
    class_names: list[str] = field(default_factory=list)

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError(f"x/y length mismatch: {len(self.x)} vs {len(self.y)}")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def subset(self, n: int, seed: int | None = None) -> "Dataset":
        """First-n (or random-n when seeded) subset — for quick sweeps."""
        if n >= len(self):
            return self
        if seed is None:
            index = np.arange(n)
        else:
            index = np.random.default_rng(seed).choice(len(self), n, replace=False)
        return Dataset(self.x[index], self.y[index], self.class_names)

    def split(self, fraction: float, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Shuffle-split into (first, second) parts; first gets ``fraction``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        order = np.random.default_rng(seed).permutation(len(self))
        cut = int(round(fraction * len(self)))
        first, second = order[:cut], order[cut:]
        return (Dataset(self.x[first], self.y[first], self.class_names),
                Dataset(self.x[second], self.y[second], self.class_names))

    def batches(self, batch_size: int, seed: int | None = None):
        """Yield (x, y) minibatches, shuffled when a seed is given."""
        order = (np.arange(len(self)) if seed is None
                 else np.random.default_rng(seed).permutation(len(self)))
        for start in range(0, len(self), batch_size):
            index = order[start:start + batch_size]
            yield self.x[index], self.y[index]

    def class_balance(self) -> np.ndarray:
        """Per-class sample counts."""
        return np.bincount(self.y, minlength=self.num_classes)

    def standardized(self) -> "Dataset":
        """Mean-0 / std-1 normalization over the whole set (per channel)."""
        mean = self.x.mean(axis=(0, 1, 2), keepdims=True)
        std = self.x.std(axis=(0, 1, 2), keepdims=True) + 1e-7
        return Dataset(((self.x - mean) / std).astype(np.float32),
                       self.y, self.class_names)
