"""Procedural ImageNet stand-in: 10-class 32×32 RGB texture/shape task.

The model-resilience study (paper Fig. 5, Table II) evaluates nine BNN
architectures pre-trained on ImageNet.  Offline, we substitute a
procedurally generated 10-class RGB task whose classes are defined by
*structure* (stripe orientation/frequency, blobs, rings, edges), not by
color — color, brightness and phase are randomized per sample — so
networks must learn spatial features, exercising the same conv/dense XNOR
pipelines the faults corrupt.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CLASS_NAMES", "render_class", "generate_dataset", "load_synth_imagenet"]

CLASS_NAMES = [
    "h_stripes", "v_stripes", "diag_stripes", "checker", "rings",
    "blobs", "edge", "squares", "dots", "wedge",
]


def _grid(size):
    return np.mgrid[0:size, 0:size].astype(np.float32) / (size - 1)


def _colorize(pattern: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Map a [0,1] pattern to RGB with two random endpoint colors."""
    lo = rng.uniform(0.0, 0.45, size=3)
    hi = rng.uniform(0.55, 1.0, size=3)
    if rng.random() < 0.5:
        lo, hi = hi, lo
    return pattern[..., None] * hi + (1 - pattern[..., None]) * lo


def render_class(label: int, rng: np.random.Generator, size: int = 32) -> np.ndarray:
    """Render one sample of a class as a float32 (size, size, 3) image."""
    yy, xx = _grid(size)
    freq = rng.uniform(2.5, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    if label == 0:      # horizontal stripes
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * yy + phase)
    elif label == 1:    # vertical stripes
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * xx + phase)
    elif label == 2:    # diagonal stripes
        sign = 1.0 if rng.random() < 0.5 else -1.0
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * (xx + sign * yy) / np.sqrt(2) + phase)
    elif label == 3:    # checkerboard
        cells = rng.integers(3, 6)
        pattern = ((xx * cells).astype(int) + (yy * cells).astype(int)) % 2
        pattern = pattern.astype(np.float32)
    elif label == 4:    # concentric rings
        cx, cy = rng.uniform(0.35, 0.65, size=2)
        radius = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2)
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * 2 * radius + phase)
    elif label == 5:    # soft blobs
        pattern = np.zeros((size, size), dtype=np.float32)
        for _ in range(rng.integers(3, 6)):
            cx, cy = rng.uniform(0.1, 0.9, size=2)
            sigma = rng.uniform(0.08, 0.18)
            pattern += np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma ** 2))
        pattern = np.clip(pattern, 0, 1)
    elif label == 6:    # single oriented edge
        angle = rng.uniform(0, 2 * np.pi)
        offset = rng.uniform(0.35, 0.65)
        proj = (xx - 0.5) * np.cos(angle) + (yy - 0.5) * np.sin(angle) + 0.5
        pattern = (proj > offset).astype(np.float32)
    elif label == 7:    # concentric squares
        cx, cy = rng.uniform(0.4, 0.6, size=2)
        radius = np.maximum(np.abs(xx - cx), np.abs(yy - cy))
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * 2 * radius + phase)
    elif label == 8:    # dot lattice
        cells = rng.integers(4, 7)
        fx = (xx * cells) % 1.0 - 0.5
        fy = (yy * cells) % 1.0 - 0.5
        pattern = (np.sqrt(fx ** 2 + fy ** 2) < rng.uniform(0.2, 0.32)).astype(np.float32)
    elif label == 9:    # wedge (angular sector)
        cx, cy = rng.uniform(0.4, 0.6, size=2)
        theta = np.arctan2(yy - cy, xx - cx)
        start = rng.uniform(-np.pi, np.pi)
        width = rng.uniform(1.2, 2.4)
        delta = (theta - start) % (2 * np.pi)
        pattern = (delta < width).astype(np.float32)
    else:
        raise ValueError(f"label must be 0..9, got {label}")
    image = _colorize(pattern.astype(np.float32), rng)
    image += rng.normal(0.0, 0.05, image.shape)
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def generate_dataset(n: int, seed: int = 0, size: int = 32
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` labelled images (balanced, shuffled)."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 10
    rng.shuffle(labels)
    images = np.empty((n, size, size, 3), dtype=np.float32)
    for i, label in enumerate(labels):
        images[i] = render_class(int(label), rng, size)
    return images, labels.astype(np.int64)


def load_synth_imagenet(n_train: int = 2500, n_test: int = 500, seed: int = 7,
                        size: int = 32
                        ) -> tuple[tuple[np.ndarray, np.ndarray],
                                   tuple[np.ndarray, np.ndarray]]:
    """(x_train, y_train), (x_test, y_test) — the ImageNet-substitute splits."""
    train = generate_dataset(n_train, seed=seed, size=size)
    test = generate_dataset(n_test, seed=seed + 10_000, size=size)
    return train, test
