"""Synthetic dataset substrates (no-network substitutes, DESIGN.md §2).

* :mod:`repro.data.synth_mnist` — stroke-rendered 28×28 digits standing in
  for MNIST (layer-resilience study, Fig. 4);
* :mod:`repro.data.synth_imagenet` — procedural 10-class 32×32 RGB
  texture/shape task standing in for ImageNet (model-resilience study,
  Fig. 5 / Table II).
"""

from . import synth_imagenet, synth_mnist
from .datasets import Dataset
from .synth_imagenet import load_synth_imagenet
from .synth_mnist import load_synth_mnist

__all__ = ["Dataset", "load_synth_mnist", "load_synth_imagenet",
           "synth_mnist", "synth_imagenet"]
