"""Procedural MNIST stand-in: stroke-rendered handwritten-style digits.

The offline environment has no access to the MNIST files, so the paper's
workload is substituted with a procedural generator (DESIGN.md §2): each
digit class is a fixed stroke skeleton (polylines/arcs on a unit grid),
rasterized at 28×28 with per-sample random affine jitter (rotation, scale,
translation), stroke-thickness variation and pixel noise.  The resulting
task has MNIST's shape (28×28×1 grey-scale, 10 classes) and difficulty
profile: a small binary CNN reaches the high-90s, leaving room for
fault-induced degradation to show.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DIGIT_STROKES", "render_digit", "generate_dataset", "load_synth_mnist"]


def _arc(cx, cy, rx, ry, start_deg, end_deg, points=24):
    angles = np.linspace(np.radians(start_deg), np.radians(end_deg), points)
    return np.stack([cx + rx * np.cos(angles), cy + ry * np.sin(angles)], axis=1)


def _line(x0, y0, x1, y1, points=12):
    t = np.linspace(0.0, 1.0, points)[:, None]
    return np.array([[x0, y0]]) * (1 - t) + np.array([[x1, y1]]) * t


# Stroke skeletons in a unit box; x to the right, y downward.
DIGIT_STROKES: dict[int, list[np.ndarray]] = {
    0: [_arc(0.5, 0.5, 0.26, 0.36, 0, 360, 48)],
    1: [_line(0.38, 0.28, 0.55, 0.15), _line(0.55, 0.15, 0.55, 0.85)],
    2: [_arc(0.5, 0.32, 0.24, 0.18, 160, 380, 24),
        _line(0.72, 0.42, 0.28, 0.85), _line(0.28, 0.85, 0.75, 0.85)],
    3: [_arc(0.48, 0.33, 0.22, 0.18, 150, 395, 24),
        _arc(0.48, 0.67, 0.24, 0.19, 325, 575, 24)],
    4: [_line(0.62, 0.15, 0.25, 0.62), _line(0.25, 0.62, 0.78, 0.62),
        _line(0.62, 0.15, 0.62, 0.85)],
    5: [_line(0.72, 0.15, 0.32, 0.15), _line(0.32, 0.15, 0.30, 0.47),
        _arc(0.48, 0.65, 0.24, 0.21, 250, 480, 24)],
    6: [_arc(0.52, 0.30, 0.22, 0.40, 200, 280, 16),
        _arc(0.50, 0.66, 0.22, 0.20, 0, 360, 32)],
    7: [_line(0.25, 0.15, 0.75, 0.15), _line(0.75, 0.15, 0.42, 0.85)],
    8: [_arc(0.5, 0.32, 0.20, 0.17, 0, 360, 32),
        _arc(0.5, 0.68, 0.24, 0.19, 0, 360, 32)],
    9: [_arc(0.5, 0.34, 0.22, 0.20, 0, 360, 32),
        _arc(0.48, 0.30, 0.24, 0.42, 280, 360, 16)],
}


def _transform(points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Random affine jitter: rotate, scale, shear a little, translate."""
    angle = rng.uniform(-0.22, 0.22)
    scale = rng.uniform(0.85, 1.1)
    shear = rng.uniform(-0.12, 0.12)
    cos, sin = np.cos(angle), np.sin(angle)
    matrix = np.array([[cos, -sin], [sin, cos]]) @ np.array([[1.0, shear], [0.0, 1.0]])
    centered = points - 0.5
    moved = centered @ (matrix.T * scale)
    shift = rng.uniform(-0.06, 0.06, size=2)
    return moved + 0.5 + shift


def render_digit(digit: int, rng: np.random.Generator, size: int = 28) -> np.ndarray:
    """Render one jittered digit as a float32 image in [0, 1]."""
    if digit not in DIGIT_STROKES:
        raise ValueError(f"digit must be 0..9, got {digit}")
    thickness = rng.uniform(0.55, 1.05)
    yy, xx = np.mgrid[0:size, 0:size]
    points = []
    for stroke in DIGIT_STROKES[digit]:
        pts = _transform(stroke, rng) * (size - 1)
        # densify: interpolate between consecutive skeleton points
        points.append(np.concatenate([
            pts[:-1] + (pts[1:] - pts[:-1]) * t
            for t in np.linspace(0, 1, 3, endpoint=False)
        ], axis=0))
    all_points = np.concatenate(points, axis=0)
    dist2 = ((xx[None] - all_points[:, 0, None, None]) ** 2
             + (yy[None] - all_points[:, 1, None, None]) ** 2)
    image = np.exp(-dist2 / (2 * thickness ** 2)).sum(axis=0).astype(np.float32)
    image = np.clip(image, 0.0, 1.0)
    image += rng.normal(0.0, 0.06, image.shape).astype(np.float32)
    return np.clip(image, 0.0, 1.0)


def generate_dataset(n: int, seed: int = 0, size: int = 28
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` images with balanced class labels (shuffled)."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % 10
    rng.shuffle(labels)
    images = np.empty((n, size, size, 1), dtype=np.float32)
    for i, digit in enumerate(labels):
        images[i, :, :, 0] = render_digit(int(digit), rng, size)
    return images, labels.astype(np.int64)


def load_synth_mnist(n_train: int = 4000, n_test: int = 1000, seed: int = 42
                     ) -> tuple[tuple[np.ndarray, np.ndarray],
                                tuple[np.ndarray, np.ndarray]]:
    """(x_train, y_train), (x_test, y_test) — the MNIST-substitute splits.

    Train and test are drawn from disjoint seeds so the test set measures
    generalization over the jitter distribution, not memorization.
    """
    train = generate_dataset(n_train, seed=seed)
    test = generate_dataset(n_test, seed=seed + 10_000)
    return train, test
