"""Once-per-process deprecation plumbing for legacy entry points.

The typed :mod:`repro.api` surface replaces the free-function drivers
(``run_fig4a``, ``run_fig5a``, ``scenarios.run_scenario``) and the
ad-hoc CLI subcommands (``repro sweep``, ``repro scenarios run``).  The
old entry points keep working as thin shims, but each one announces its
registry equivalent exactly once per process via
:class:`DeprecationWarning` — noisy enough to notice, quiet enough not
to flood a hundred-repetition campaign log.

This module lives at the package root (no imports beyond the standard
library) so both ``repro.experiments`` and ``repro.api`` can use it
without an import cycle.
"""

from __future__ import annotations

import functools
import warnings

__all__ = ["warn_legacy", "legacy", "reset_legacy_warnings"]

#: entry points that already warned in this process
_WARNED: set[str] = set()


def warn_legacy(name: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``name``."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead (see docs/api.md)",
        DeprecationWarning, stacklevel=3)


def legacy(replacement: str):
    """Decorator marking a function as a legacy entry point.

    The wrapper warns (once per process) and delegates; the undecorated
    implementation stays reachable as ``func.__wrapped__`` so the
    :mod:`repro.api` catalog can call the *identical* code path without
    triggering the warning — registry results are bit-identical to the
    legacy drivers by construction, not by re-implementation.
    """
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            warn_legacy(func.__name__, replacement)
            return func(*args, **kwargs)
        return wrapper
    return decorate


def reset_legacy_warnings() -> None:
    """Forget which warnings fired (test helper)."""
    _WARNED.clear()
