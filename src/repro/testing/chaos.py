"""Controlled failure injection for the campaign executors.

The fault injector injects faults into *models*; this module injects
faults into the *engine running the campaign* — the same inversion
SpikeFI applies at the framework level.  A :class:`ChaosSpec` names the
failures; the chaos executors (:class:`ChaosMultiprocessingExecutor`,
:class:`ChaosSharedMemoryExecutor`) are the real pool executors with
their worker entry points wrapped so those failures happen at precise
grid cells:

* SIGKILL the worker holding cell *k* (a lost worker mid-grid);
* raise once in a worker (a transient evaluation failure → retry);
* raise *every* time a cell is attempted (a poison job → quarantine);
* raise in the pool initializer of a given rung (broken worker
  start-up → the degradation ladder);
* sleep through a cell's wall-clock budget (a stuck worker → timeout).

One-shot failures coordinate across respawned workers through claim
tokens — ``O_CREAT | O_EXCL`` files in a scratch directory — so exactly
one attempt dies no matter which worker draws the cell or how often the
pool is rebuilt.  Poison cells carry no token: they fail on every
attempt, which is what makes them poison.

Everything here rides the executors' public extension seams
(``_payload_for_mode`` / ``_pool_functions``); dispatch, supervision,
and recovery logic run completely unmodified — that is the point.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core import engine as _engine
from ..core.engine import MultiprocessingExecutor, SharedMemoryExecutor

__all__ = ["ChaosSpec", "ChaosError", "ChaosMultiprocessingExecutor",
           "ChaosSharedMemoryExecutor", "truncate_last_line"]


class ChaosError(RuntimeError):
    """The injected failure (so tests can tell it from real bugs)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Which failures to inject, and where.

    Cell coordinates are ``(point_index, repeat_index)`` grid tuples.
    ``scratch`` must be a private directory (one per spec — reusing it
    reuses spent claim tokens and the one-shot failures never fire).
    """

    scratch: str
    #: SIGKILL the worker when it draws this cell (once)
    kill_job: tuple[int, int] | None = None
    #: raise ChaosError when a worker draws this cell (once → retry)
    fail_job: tuple[int, int] | None = None
    #: raise ChaosError on *every* attempt of this cell (→ quarantine)
    poison_job: tuple[int, int] | None = None
    #: sleep ``slow_seconds`` in this cell (once → per-job timeout)
    slow_job: tuple[int, int] | None = None
    slow_seconds: float = 5.0
    #: ladder rungs whose pool initializer raises (every worker, every
    #: rebuild) — e.g. ("shared_memory",) forces a degradation
    fail_init_modes: tuple[str, ...] = field(default=())

    def claim(self, tag: str) -> bool:
        """Atomically claim a one-shot failure; True exactly once per
        tag across every process sharing the scratch directory."""
        path = os.path.join(self.scratch, f"{tag}.claimed")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return False
        return True


#: the worker-process spec, installed by the chaos initializer
_CHAOS: ChaosSpec | None = None


def _chaos_init(payload: dict) -> None:
    """Pool initializer: arm the spec, then run the rung's real one."""
    global _CHAOS
    _CHAOS = payload["chaos"]
    if payload["mode"] in _CHAOS.fail_init_modes:
        raise ChaosError(f"injected initializer failure "
                         f"({payload['mode']} rung)")
    payload["init_fn"](payload["inner"])


def _chaos_before(point: int, repeat: int) -> None:
    """Fire any failure aimed at this cell, before evaluating it."""
    spec = _CHAOS
    coord = (point, repeat)
    if spec.poison_job == coord:
        raise ChaosError(f"injected poison job at {coord}")
    if spec.kill_job == coord and spec.claim(f"kill-{point}-{repeat}"):
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.fail_job == coord and spec.claim(f"fail-{point}-{repeat}"):
        raise ChaosError(f"injected transient failure at {coord}")
    if spec.slow_job == coord and spec.claim(f"slow-{point}-{repeat}"):
        time.sleep(spec.slow_seconds)


def _chaos_run_job(job):
    _chaos_before(job.point_index, job.repeat_index)
    return _engine._run_worker_job(job)


def _chaos_run_shard(task):
    job = task[0]
    _chaos_before(job.point_index, job.repeat_index)
    return _engine._run_worker_shard(task)


class _ChaosMixin:
    """Wrap an executor's worker entry points with failure injection."""

    def __init__(self, *args, chaos: ChaosSpec, **kwargs):
        super().__init__(*args, **kwargs)
        self.chaos = chaos

    def _payload_for_mode(self, mode, evaluator):
        payload, initializer, cleanup = super()._payload_for_mode(
            mode, evaluator)
        wrapped = {"chaos": self.chaos, "mode": mode,
                   "init_fn": initializer, "inner": payload}
        return wrapped, _chaos_init, cleanup

    def _pool_functions(self, mode):
        return _chaos_run_job, _chaos_run_shard


class ChaosMultiprocessingExecutor(_ChaosMixin, MultiprocessingExecutor):
    """:class:`MultiprocessingExecutor` with injected failures."""


class ChaosSharedMemoryExecutor(_ChaosMixin, SharedMemoryExecutor):
    """:class:`SharedMemoryExecutor` with injected failures."""


def truncate_last_line(path) -> None:
    """Tear a journal's final line mid-write, the way ``kill -9``
    during an append does (keeps a partial prefix of the line)."""
    path = Path(path)
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
