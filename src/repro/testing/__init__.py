"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` — controlled failure injection into the
campaign executors, used by ``tests/test_chaos.py`` to prove the
engine's recovery paths converge to the serial ground truth.
"""

from .chaos import (ChaosError, ChaosMultiprocessingExecutor,
                    ChaosSharedMemoryExecutor, ChaosSpec,
                    truncate_last_line)

__all__ = ["ChaosSpec", "ChaosError", "ChaosMultiprocessingExecutor",
           "ChaosSharedMemoryExecutor", "truncate_last_line"]
