"""Crossbar periphery: sense amplifiers and write-verify programming.

Fig. 1 of the paper shows per-line sense amplifiers (SA) reading the XNOR
results out of the array.  LIM avoids the expensive ADCs of analog CIM,
but the binary sense path still has two reliability-relevant behaviours
worth modelling:

* **sense margin** — an SA with input-referred offset and noise misreads
  cells whose resistance sits too close to the decision threshold; aging
  (window drift) pushes cells into this region *before* they become hard
  stuck-at faults, so the SA model links the drift mechanism to the
  transient-fault rates FLIM injects;
* **write-verify** — production ReRAM controllers re-program cells until
  the read-back level matches, masking weak writes at an endurance cost.

Both are additive: the ideal crossbar paths stay untouched unless a
periphery object is used explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .memristor import CellArray

__all__ = ["SenseAmplifier", "WriteVerifyProgrammer"]


@dataclass
class SenseAmplifier:
    """Threshold comparator with input-referred offset and noise.

    ``offset_sigma`` is the per-instance static offset (drawn once per SA
    at construction — mismatch), ``noise_sigma`` the per-read dynamic
    noise; both in decades of resistance (log10 space, where the HRS/LRS
    window of a healthy cell spans two decades).
    """

    offset_sigma: float = 0.05
    noise_sigma: float = 0.02
    seed: int = 0

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        self._offset = rng.normal(0.0, self.offset_sigma)
        self._rng = rng

    def read(self, cells: CellArray, index=...) -> np.ndarray:
        """Sense logic levels through the non-ideal comparator."""
        resistance = cells.resistance[index]
        log_r = np.log10(resistance)
        threshold = np.log10(cells.params.r_threshold)
        noise = self._rng.normal(0.0, self.noise_sigma, size=log_r.shape)
        return (log_r + noise + self._offset < threshold).astype(np.uint8)

    def misread_probability(self, cells: CellArray, index=...) -> np.ndarray:
        """Analytic per-cell probability of reading the wrong level.

        The distance of a cell's (log) resistance from the threshold,
        reduced by the SA's static offset, sets the margin; the dynamic
        noise Gaussian determines how often it is crossed.
        """
        from math import erf, sqrt

        log_r = np.log10(cells.resistance[index])
        threshold = np.log10(cells.params.r_threshold)
        margin = np.abs(log_r + self._offset - threshold)
        if self.noise_sigma == 0:
            return (margin == 0).astype(float) * 0.5
        z = margin / (self.noise_sigma * sqrt(2.0))
        return np.array([0.5 * (1.0 - erf(v)) for v in np.atleast_1d(z)]
                        ).reshape(np.shape(z))


class WriteVerifyProgrammer:
    """Program-and-verify loop: rewrite until the read-back level matches.

    Returns per-cell attempt counts so endurance accounting (each retry
    is a switching event) can feed the lifetime model.  Cells that never
    verify within ``max_attempts`` are the ones march tests later flag.
    """

    def __init__(self, max_attempts: int = 4,
                 sense: SenseAmplifier | None = None):
        if max_attempts < 1:
            raise ValueError("need at least one programming attempt")
        self.max_attempts = max_attempts
        self.sense = sense if sense is not None else SenseAmplifier()

    def program(self, cells: CellArray, bits: np.ndarray, index=...
                ) -> tuple[np.ndarray, np.ndarray]:
        """Write ``bits`` with verification.

        Returns ``(verified, attempts)``: a boolean success plane and the
        number of write pulses each cell consumed.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        attempts = np.zeros(bits.shape, dtype=np.int64)
        verified = np.zeros(bits.shape, dtype=bool)
        for _ in range(self.max_attempts):
            pending = ~verified
            if not pending.any():
                break
            cells.write(bits, index)  # whole-plane pulse; pending-only in HW
            attempts[pending] += 1
            readback = self.sense.read(cells, index)
            verified = readback == bits
        return verified, attempts
