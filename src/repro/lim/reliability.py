"""Lifetime reliability modelling: from device aging to fault rates.

The paper classifies in-field faults by their time dependence: transient
bit-flips from environmental variation, and stuck-at faults accumulating
from temporal variation until end-of-life.  This module closes the loop
between the device model and the fault-injection platform: a Weibull
endurance model turns *device age* (executed switching cycles) into the
stuck-cell and upset rates a :class:`~repro.core.faults.FaultSpec`
expects, enabling accuracy-over-lifetime studies (see
``examples/lifetime_reliability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnduranceModel", "LifetimePoint", "lifetime_fault_rates"]


@dataclass(frozen=True)
class EnduranceModel:
    """Weibull cell-endurance model.

    ``mean_cycles`` is the characteristic endurance (ReRAM: 1e6-1e12
    switching cycles depending on technology); ``shape`` the Weibull
    shape parameter (k > 1: wear-out dominated, the regime of temporal
    variation).  ``upset_rate_per_cycle`` models environmental transient
    upsets as a constant-rate process.
    """

    mean_cycles: float = 1e8
    shape: float = 2.0
    upset_rate_per_cycle: float = 1e-10

    def __post_init__(self):
        if self.mean_cycles <= 0 or self.shape <= 0:
            raise ValueError("endurance parameters must be positive")

    def stuck_fraction(self, cycles: float) -> float:
        """Expected fraction of cells stuck after ``cycles`` switching events.

        Weibull CDF: ``1 - exp(-(t/λ)^k)`` with λ chosen so the mean
        equals ``mean_cycles``.
        """
        if cycles <= 0:
            return 0.0
        from math import gamma
        scale = self.mean_cycles / gamma(1.0 + 1.0 / self.shape)
        return float(1.0 - np.exp(-((cycles / scale) ** self.shape)))

    def upset_probability(self, cycles_per_inference: float) -> float:
        """Probability a given cell suffers a transient upset during one
        inference window."""
        rate = self.upset_rate_per_cycle * cycles_per_inference
        return float(1.0 - np.exp(-rate))

    def rates_at(self, age: float,
                 cycles_per_inference: float) -> "LifetimePoint":
        """Both fault rates at one device age — the single call the
        scenario compiler (:mod:`repro.scenarios`) consumes to drive
        ``FaultSpec`` rates through the lifetime curves."""
        return LifetimePoint(
            cycles=age,
            stuck_rate=self.stuck_fraction(age),
            bitflip_rate=self.upset_probability(cycles_per_inference))


@dataclass(frozen=True)
class LifetimePoint:
    """Fault rates at one point of the device lifetime."""

    cycles: float
    stuck_rate: float
    bitflip_rate: float


def lifetime_fault_rates(model_cycles_per_inference: float,
                         ages: list[float],
                         endurance: EnduranceModel | None = None
                         ) -> list[LifetimePoint]:
    """Fault rates along a lifetime axis of cumulative switching cycles.

    ``model_cycles_per_inference`` is how many times a crossbar cell
    switches per inference (the scheduler's reuse factor times the gate
    program's writes); ``ages`` are cumulative cycle counts.
    """
    if endurance is None:
        endurance = EnduranceModel()
    return [endurance.rates_at(age, model_cycles_per_inference)
            for age in ages]
