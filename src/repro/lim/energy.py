"""Energy and latency estimation for LIM execution.

The paper motivates LIM with performance and energy efficiency; this
module quantifies both for the mapped workloads.  Costs are derived from
the gate programs of :mod:`repro.lim.gates` — every driver step is a
voltage pulse across a tile — with typical ReRAM numbers (switching
energy per cell ~0.1-1 pJ, pulse width ~1-10 ns).  Absolute values are
parameterizable; the interesting outputs are the *relative* costs of the
gate families and the per-layer breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binary.layers import QuantLayer
from ..nn.model import Sequential
from .gates import get_gate_family
from .scheduler import TileSchedule

__all__ = ["EnergyParams", "LayerCost", "estimate_layer_cost",
           "estimate_model_cost"]


@dataclass(frozen=True)
class EnergyParams:
    """Device-level cost constants (typical HfO2 ReRAM values)."""

    write_energy_pj: float = 0.5     # energy per cell switching event
    read_energy_pj: float = 0.05     # energy per cell sense
    pulse_ns: float = 5.0            # duration of one driver step
    #: cells touched per gate per driver step (programming the operand
    #: pair, executing, sensing) — an average over the gate program
    cells_per_step: float = 1.0


@dataclass(frozen=True)
class LayerCost:
    """Estimated LIM execution cost of one mapped layer (per image)."""

    layer: str
    xnor_ops: int
    driver_steps: int
    energy_nj: float
    latency_us: float

    def row(self) -> tuple:
        return (self.layer, self.xnor_ops, self.driver_steps,
                round(self.energy_nj, 3), round(self.latency_us, 3))


def estimate_layer_cost(layer: QuantLayer, rows: int, cols: int,
                        gate_family: str = "imply",
                        params: EnergyParams | None = None) -> LayerCost:
    """Energy/latency of one mapped layer on an ``rows x cols`` crossbar.

    Latency counts sequential driver steps (tile loads x gate-program
    steps x pulse width); energy counts every gate in the tile switching
    at every step.
    """
    if params is None:
        params = EnergyParams()
    gate = get_gate_family(gate_family)
    schedule = TileSchedule(
        positions=layer.positions_per_image(),
        terms=layer.reduction_length(),
        filters=layer.output_channels,
        rows=rows, cols=cols)
    driver_steps = schedule.steps * gate.steps_per_op
    gates_active = rows * cols
    switch_events = driver_steps * gates_active * params.cells_per_step
    energy_pj = (switch_events * params.write_energy_pj
                 + schedule.steps * gates_active * params.read_energy_pj)
    latency_ns = driver_steps * params.pulse_ns
    return LayerCost(
        layer=layer.name,
        xnor_ops=schedule.total_ops,
        driver_steps=driver_steps,
        energy_nj=energy_pj / 1e3,
        latency_us=latency_ns / 1e3)


def estimate_model_cost(model: Sequential, rows: int = 40, cols: int = 10,
                        gate_family: str = "imply",
                        params: EnergyParams | None = None) -> list[LayerCost]:
    """Per-layer cost table for every LIM-mapped layer of a model."""
    costs = []
    for layer in model.layers_of_type(QuantLayer):
        if layer.is_mapped:
            costs.append(estimate_layer_cost(layer, rows, cols, gate_family,
                                             params))
    return costs
