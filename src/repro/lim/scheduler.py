"""Scheduling of XNOR operation streams onto crossbar tiles.

A mapped layer is a binary GEMM ``X (P×K) @ W (K×F)``: ``P`` spatial
positions (im2col rows), ``K`` reduction terms, ``F`` output channels.
Every multiply-accumulate term is one XNOR op, so a layer issues
``N = P·K·F`` XNOR operations per image.

The canonical placement is **weight-stationary with column-parallel
outputs**, the convention of the paper's Fig. 1: crossbar column ``c``
accumulates output channels ``f ≡ c (mod cols)``, crossbar row ``r`` hosts
reduction terms ``t ≡ r (mod rows)``, and input positions are streamed
one per step.  A cell is therefore reused ``≈ P · K/R · F/C`` times per
image — the reuse amplification that makes permanent (stuck-at) faults so
much more damaging than transient bit-flips (DESIGN.md §3).

Both the FLIM fast path (:mod:`repro.core.mapping`) and the device-level
simulator (:mod:`repro.lim.xfault`) consume this one schedule, which is
what makes their fault mappings verifiable against each other — the
reproduction of the paper's "fault distribution and mapping have been
verified with X-Fault".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TileSchedule"]


@dataclass(frozen=True)
class TileSchedule:
    """Static schedule of a ``P × K × F`` op grid onto an ``R × C`` crossbar."""

    positions: int  # P — streamed input positions (im2col rows, per image)
    terms: int      # K — reduction length (XNOR products per output)
    filters: int    # F — output channels
    rows: int       # R — crossbar rows (terms dimension)
    cols: int       # C — crossbar columns (output-channel dimension)

    def __post_init__(self):
        for field in ("positions", "terms", "filters", "rows", "cols"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    # -- derived sizes -----------------------------------------------------
    @property
    def row_passes(self) -> int:
        """Weight-tile loads along the reduction dimension."""
        return -(-self.terms // self.rows)

    @property
    def col_passes(self) -> int:
        """Weight-tile loads along the output-channel dimension."""
        return -(-self.filters // self.cols)

    @property
    def tiles(self) -> int:
        """Distinct weight tiles programmed over the layer."""
        return self.row_passes * self.col_passes

    @property
    def steps(self) -> int:
        """Total crossbar evaluations: every tile streams every position."""
        return self.tiles * self.positions

    @property
    def total_ops(self) -> int:
        return self.positions * self.terms * self.filters

    @property
    def cell_reuse(self) -> float:
        """Average number of XNOR ops executed per crossbar gate."""
        return self.total_ops / (self.rows * self.cols)

    # -- placement arithmetic ------------------------------------------------
    def cell_for_op(self, term: int, channel: int) -> tuple[int, int]:
        """Crossbar gate executing product ``term`` of output channel ``channel``."""
        return term % self.rows, channel % self.cols

    def terms_on_row(self, row: int) -> np.ndarray:
        """All reduction-term indices hosted by crossbar row ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        return np.arange(row, self.terms, self.rows)

    def channels_on_column(self, col: int) -> np.ndarray:
        """All output channels accumulated by crossbar column ``col``."""
        if not 0 <= col < self.cols:
            raise IndexError(f"column {col} out of range 0..{self.cols - 1}")
        return np.arange(col, self.filters, self.cols)

    def ops_on_cell(self, row: int, col: int) -> int:
        """Number of XNOR ops a given gate executes per image."""
        return (len(self.terms_on_row(row)) * len(self.channels_on_column(col))
                * self.positions)

    # -- step iteration (device-level simulator) ------------------------------
    def tile_blocks(self, tile: int) -> tuple[np.ndarray, np.ndarray]:
        """Term and channel index blocks of weight tile ``tile``.

        Tiles are ordered column-pass major: ``tile = cp * row_passes + rp``.
        The final passes may be ragged.
        """
        if not 0 <= tile < self.tiles:
            raise IndexError(f"tile {tile} out of range 0..{self.tiles - 1}")
        col_pass, row_pass = divmod(tile, self.row_passes)
        term_start = row_pass * self.rows
        chan_start = col_pass * self.cols
        term_idx = np.arange(term_start, min(term_start + self.rows, self.terms))
        chan_idx = np.arange(chan_start, min(chan_start + self.cols, self.filters))
        return term_idx, chan_idx

    def occurrence_index(self, position: int, term: int, channel: int) -> int:
        """Per-gate use counter value when the op executes.

        Dynamic faults sensitize a gate every n-th use; an op is affected
        when this occurrence index is a multiple of n.
        """
        tile = (channel // self.cols) * self.row_passes + term // self.rows
        return tile * self.positions + position
