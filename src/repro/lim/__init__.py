"""Logic-in-memory substrate: devices, gates, crossbars, device-level sim.

The stack, bottom-up:

* :mod:`repro.lim.memristor` — ReRAM cell arrays with health states;
* :mod:`repro.lim.gates` — MAGIC / IMPLY XNOR gate programs (4 cells/gate);
* :mod:`repro.lim.crossbar` — the R×C gate array with fault injection;
* :mod:`repro.lim.scheduler` — weight-stationary tile schedule shared with
  the FLIM fast path;
* :mod:`repro.lim.xfault` — the device-level BNN executor (X-Fault stand-in).
"""

from .crossbar import Crossbar, CrossbarConfig
from .energy import (EnergyParams, LayerCost, estimate_layer_cost,
                     estimate_model_cost)
from .gates import (CELL_A, CELL_B, CELL_OUT, CELL_W, ImplyXnorGate,
                    MagicXnorGate, XnorGate, get_gate_family)
from .memristor import CellArray, DeviceParams, Health
from .periphery import SenseAmplifier, WriteVerifyProgrammer
from .reliability import EnduranceModel, LifetimePoint, lifetime_fault_rates
from .scheduler import TileSchedule
from .xfault import XFaultSimulator, ideal_device_params

__all__ = [
    "CellArray", "DeviceParams", "Health",
    "XnorGate", "ImplyXnorGate", "MagicXnorGate", "get_gate_family",
    "CELL_A", "CELL_B", "CELL_W", "CELL_OUT",
    "Crossbar", "CrossbarConfig", "TileSchedule",
    "XFaultSimulator", "ideal_device_params",
    "EnergyParams", "LayerCost", "estimate_layer_cost", "estimate_model_cost",
    "EnduranceModel", "LifetimePoint", "lifetime_fault_rates",
    "SenseAmplifier", "WriteVerifyProgrammer",
]
