"""Device-level BNN execution on memristive crossbars — the X-Fault baseline.

This simulator plays the role of X-Fault [9] in the paper: the most
detailed end-to-end fault-injection path, evaluating every XNOR operation
through the 4-memristor gate model (:mod:`repro.lim.gates`) on an explicit
tile schedule (:mod:`repro.lim.scheduler`).  It is deliberately slow —
that is its scientific purpose here: Fig. 4f measures how many orders of
magnitude the FLIM abstraction gains over exactly this level of detail.

Faults are injected directly on the per-layer :class:`Crossbar` objects
(``simulator.crossbar_for(layer)``), so corruption emerges mechanistically
from gate evaluation rather than from mask arithmetic.  With no faults and
device variability disabled, the simulator is bit-exact against the numpy
fast path — the equivalence the paper verifies between FLIM and vanilla
Larq/X-Fault.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..binary.layers import QuantConv2D, QuantDense, QuantLayer
from ..nn import ops
from ..nn.model import Sequential
from .crossbar import Crossbar, CrossbarConfig
from .memristor import DeviceParams

__all__ = ["XFaultSimulator", "ideal_device_params"]


def ideal_device_params() -> DeviceParams:
    """Device parameters with variability disabled (bit-exact verification)."""
    return DeviceParams(variability=0.0, drift_per_write=0.0)


class XFaultSimulator:
    """Runs a built Sequential BNN with mapped layers on crossbar hardware.

    Parameters
    ----------
    model:
        A built :class:`~repro.nn.model.Sequential`.  Layers whose
        ``is_mapped`` property is true execute on a per-layer crossbar
        ("each layer is mapped onto a single crossbar", §IV); everything
        else runs in CMOS, i.e. plain numpy.
    config:
        Crossbar geometry/device template; each layer gets its own
        instance (with a distinct seed).
    """

    def __init__(self, model: Sequential, config: CrossbarConfig | None = None,
                 gate_serial: bool = False):
        if not model.built:
            raise ValueError("model must be built before simulation")
        self.model = model
        self.config = config if config is not None else CrossbarConfig()
        #: evaluate gates one at a time (X-Fault's per-memristor cost
        #: model) instead of vectorizing over the tile
        self.gate_serial = gate_serial
        self.crossbars: dict[str, Crossbar] = {}
        for offset, layer in enumerate(self._mapped_layers()):
            layer_config = replace(self.config, seed=self.config.seed + offset)
            self.crossbars[layer.name] = Crossbar(layer_config)
        #: running count of crossbar evaluations (performance accounting)
        self.step_count = 0

    def _mapped_layers(self) -> list[QuantLayer]:
        return [layer for layer in self.model.layers_of_type(QuantLayer)
                if layer.is_mapped]

    def crossbar_for(self, layer_or_name) -> Crossbar:
        """The crossbar instance executing a given mapped layer."""
        name = layer_or_name if isinstance(layer_or_name, str) else layer_or_name.name
        try:
            return self.crossbars[name]
        except KeyError:
            raise KeyError(f"layer {name!r} is not mapped to a crossbar") from None

    # -- execution -------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass; mapped layers execute on the device model."""
        for layer in self.model.layers:
            if isinstance(layer, QuantLayer) and layer.name in self.crossbars:
                x = self._run_mapped(layer, x)
            else:
                x = layer.forward(x, training=False)
        return x

    def _run_mapped(self, layer: QuantLayer, x: np.ndarray) -> np.ndarray:
        qx = layer.input_quantizer.quantize(x)
        if isinstance(layer, QuantConv2D):
            cols, (oh, ow) = ops.im2col(
                qx, layer.kernel_size, layer.kernel_size,
                layer.stride, layer.padding)
            kernel = layer.params["kernel"]
            qw = layer.kernel_quantizer.quantize(kernel).reshape(
                -1, layer.filters)
            out_flat = self._gemm_on_crossbar(layer, cols, qw, batch=x.shape[0])
            out = out_flat.reshape(x.shape[0], oh, ow, layer.filters)
        elif isinstance(layer, QuantDense):
            qw = layer.kernel_quantizer.quantize(layer.params["kernel"])
            out = self._gemm_on_crossbar(layer, qx, qw, batch=x.shape[0])
        else:
            raise TypeError(f"unsupported mapped layer type {type(layer)!r}")
        if layer.use_bias:
            out = out + layer.params["bias"]
        return out

    def _gemm_on_crossbar(self, layer: QuantLayer, cols: np.ndarray,
                          qw: np.ndarray, batch: int) -> np.ndarray:
        """Binary GEMM ``cols @ qw`` evaluated gate-by-gate on the crossbar.

        ``cols`` is ``(batch*P, K)`` bipolar (with zeros at padding
        positions), ``qw`` is ``(K, F)`` bipolar.  Padding terms are never
        scheduled: their contribution stays zero even under faults.
        """
        crossbar = self.crossbars[layer.name]
        from .scheduler import TileSchedule

        total_rows, terms = cols.shape
        filters = qw.shape[1]
        positions = total_rows // batch
        schedule = TileSchedule(positions=positions, terms=terms, filters=filters,
                                rows=crossbar.rows, cols=crossbar.cols)
        valid = cols != 0                      # padding mask (see docstring)
        x_bits = (cols > 0).astype(np.uint8)   # bipolar -> logic level
        w_bits = (qw > 0).astype(np.uint8)
        acc = np.zeros((total_rows, filters), dtype=np.float32)

        a_tile = np.zeros((crossbar.rows, crossbar.cols), dtype=np.uint8)
        b_tile = np.zeros((crossbar.rows, crossbar.cols), dtype=np.uint8)
        for image in range(batch):
            base = image * positions
            for tile in range(schedule.tiles):
                term_idx, chan_idx = schedule.tile_blocks(tile)
                rows_used = len(term_idx)
                cols_used = len(chan_idx)
                b_tile[:rows_used, :cols_used] = w_bits[np.ix_(term_idx, chan_idx)]
                compute = (crossbar.compute_xnor_serial if self.gate_serial
                           else crossbar.compute_xnor)
                for position in range(positions):
                    row = base + position
                    a_tile[:rows_used, :cols_used] = x_bits[row, term_idx][:, None]
                    out_bits = compute(a_tile, b_tile)
                    self.step_count += 1
                    products = out_bits[:rows_used, :cols_used].astype(np.float32)
                    products = products * 2.0 - 1.0
                    products *= valid[row, term_idx][:, None]
                    acc[row, chan_idx] += products.sum(axis=0)
        return acc

    # -- accounting --------------------------------------------------------
    def total_xnor_ops(self, batch: int = 1) -> int:
        """XNOR ops the mapped layers issue for ``batch`` images."""
        return batch * sum(layer.xnor_ops_per_image()
                           for layer in self._mapped_layers())

    def driver_steps(self, batch: int = 1) -> int:
        """Gate-program driver steps for ``batch`` images (runtime model)."""
        total = 0
        for layer in self._mapped_layers():
            crossbar = self.crossbars[layer.name]
            from .scheduler import TileSchedule
            schedule = TileSchedule(
                positions=layer.positions_per_image(),
                terms=layer.reduction_length(),
                filters=layer.output_channels,
                rows=crossbar.rows, cols=crossbar.cols)
            total += schedule.steps * crossbar.gate.steps_per_op
        return total * batch
