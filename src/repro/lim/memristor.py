"""Memristive device model.

Logical states are represented as resistances: the low-resistive state
(LRS) encodes logic 1, the high-resistive state (HRS) logic 0 — the
convention of Fig. 1 in the paper.  Devices suffer the in-field fault
classes the paper studies:

* **stuck-at** — the cell can no longer switch (end-of-life); writes are
  ignored and reads always return the stuck level;
* **drift** — temporal variation: every switching event degrades the
  resistance window until the cell effectively becomes stuck (the
  degradation mechanism the paper's conclusion says must be monitored).

Cells are stored as vectorized arrays (:class:`CellArray`) so the
device-level simulator can evaluate a whole crossbar tile per step.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = ["Health", "DeviceParams", "CellArray"]


class Health(IntEnum):
    """Per-cell health state."""

    OK = 0
    STUCK_LRS = 1   # stuck-at-1: permanently low-resistive
    STUCK_HRS = 2   # stuck-at-0: permanently high-resistive


class DeviceParams:
    """Nominal ReRAM device parameters.

    Defaults are typical HfO2 ReRAM values: LRS around 10 kΩ, HRS around
    1 MΩ, log-normal cycle-to-cycle variability, and a multiplicative
    window-closing drift per switching event.
    """

    def __init__(self, r_lrs: float = 1e4, r_hrs: float = 1e6,
                 variability: float = 0.05, drift_per_write: float = 0.0):
        if r_lrs >= r_hrs:
            raise ValueError("LRS resistance must be below HRS resistance")
        self.r_lrs = r_lrs
        self.r_hrs = r_hrs
        self.variability = variability
        self.drift_per_write = drift_per_write
        # decision threshold of the sense amplifier (geometric mean)
        self.r_threshold = float(np.sqrt(r_lrs * r_hrs))


class CellArray:
    """A vectorized array of memristor cells with health tracking.

    ``shape`` is arbitrary; the crossbar uses ``(rows, cols, 4)`` — four
    memristors per XNOR gate, as the paper assumes for MAGIC/IMPLY.
    """

    def __init__(self, shape: tuple[int, ...], params: DeviceParams | None = None,
                 seed: int | np.random.Generator = 0):
        self.shape = tuple(shape)
        self.params = params if params is not None else DeviceParams()
        self.rng = (seed if isinstance(seed, np.random.Generator)
                    else np.random.default_rng(seed))
        self.health = np.full(self.shape, Health.OK, dtype=np.int8)
        self.resistance = np.full(self.shape, self.params.r_hrs, dtype=np.float64)
        self.write_count = np.zeros(self.shape, dtype=np.int64)
        # per-cell window-closing factor accumulated by drift
        self._window = np.ones(self.shape, dtype=np.float64)

    def subview(self, index) -> "CellArray":
        """A CellArray sharing this array's storage for a sub-region.

        Used by the gate-serial execution mode: evaluating one gate at a
        time through a view keeps all device state (health, resistance,
        wear) in the parent array.
        """
        view = CellArray.__new__(CellArray)
        view.params = self.params
        view.rng = self.rng
        view.health = self.health[index]
        view.resistance = self.resistance[index]
        view.write_count = self.write_count[index]
        view._window = self._window[index]
        view.shape = view.health.shape
        return view

    # -- fault management --------------------------------------------------
    def set_health(self, index, health: Health) -> None:
        """Mark cells at ``index`` (any numpy index) with a health state."""
        self.health[index] = health
        if health == Health.STUCK_LRS:
            self.resistance[index] = self.params.r_lrs
        elif health == Health.STUCK_HRS:
            self.resistance[index] = self.params.r_hrs

    def healthy_fraction(self) -> float:
        return float((self.health == Health.OK).mean())

    # -- device operation -----------------------------------------------------
    def write(self, bits: np.ndarray, index=...) -> None:
        """Program logic levels into the selected cells.

        ``bits`` holds {0, 1}; stuck cells ignore the write.  Cycle-to-cycle
        variability perturbs the programmed resistance, and each write
        advances drift-based degradation when enabled.
        """
        bits = np.asarray(bits)
        target = np.where(bits == 1, self.params.r_lrs, self.params.r_hrs)
        if self.params.variability > 0:
            noise = self.rng.lognormal(0.0, self.params.variability, size=target.shape)
            target = target * noise
        if self.params.drift_per_write > 0:
            self._window[index] *= (1.0 - self.params.drift_per_write)
            # drift closes the resistance window toward the threshold
            mid = self.params.r_threshold
            target = mid + (target - mid) * self._window[index]
        writable = self.health[index] == Health.OK
        current = self.resistance[index]
        self.resistance[index] = np.where(writable, target, current)
        self.write_count[index] += 1

    def read(self, index=...) -> np.ndarray:
        """Sense logic levels: resistance below threshold reads as 1."""
        levels = (self.resistance[index] < self.params.r_threshold)
        return levels.astype(np.uint8)

    #: minimum usable fraction of the original resistance window; below it
    #: the sense amplifier can no longer discriminate the two levels and the
    #: cell counts as end-of-life (the aging end-state behind stuck-at
    #: faults).  ~1% contrast is a typical sense-margin floor.
    MIN_WINDOW = 0.01

    def effectively_stuck(self, index=...) -> np.ndarray:
        """Cells whose drift-closed window is below the sense margin.

        Temporal variation multiplies the HRS/LRS separation by
        ``(1 - drift_per_write)`` on every switching event; once the
        remaining window drops under :attr:`MIN_WINDOW`, the cell can no
        longer be reliably read and behaves as stuck — the lifetime
        degradation the paper's conclusion says must be monitored.
        """
        worn_out = self._window[index] < self.MIN_WINDOW
        return worn_out | (self.health[index] != Health.OK)
