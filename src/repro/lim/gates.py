"""Stateful logic families implementing XNOR on four memristors.

The paper assumes "the underlying usage of a logic family implementing the
XNOR logic gate" with MAGIC and IMPLY as the candidates, four memristors
per XNOR.  Both families are modelled mechanistically enough that a fault
on *any* of the four cells corrupts the result the way the physical gate
would:

* :class:`ImplyXnorGate` executes a literal 11-step IMPLY/RESET program on
  cells [A, B, W, OUT].  IMPLY(p, q) writes ``¬p ∨ q`` into q; RESET writes
  0.  Stuck cells simply ignore the writes, so corruption propagates
  through the remaining steps exactly as on hardware.
* :class:`MagicXnorGate` uses the complementary-pair encoding common in
  XNOR-BNN crossbars: the weight bit is stored as (w, ¬w) on two cells, the
  input is applied as (x, ¬x); the sensed output is ``(x∧w) ∨ (¬x∧¬¬w)``
  computed from the (possibly corrupted) stored levels.

Gate programs operate vectorized over ``(rows, cols)`` tiles of a
:class:`~repro.lim.memristor.CellArray` with shape ``(rows, cols, 4)``.
"""

from __future__ import annotations

import numpy as np

from .memristor import CellArray

__all__ = ["CELL_A", "CELL_B", "CELL_W", "CELL_OUT", "XnorGate",
           "ImplyXnorGate", "MagicXnorGate", "get_gate_family"]

CELL_A, CELL_B, CELL_W, CELL_OUT = 0, 1, 2, 3


class XnorGate:
    """Interface of a 4-memristor XNOR gate family."""

    #: number of driver steps one evaluation costs (used by the runtime model)
    steps_per_op: int = 1

    def compute(self, cells: CellArray, a_bits: np.ndarray, b_bits: np.ndarray
                ) -> np.ndarray:
        """Program inputs, run the gate program, read the XNOR outputs.

        ``a_bits``/``b_bits`` are {0,1} arrays of shape ``(rows, cols)``;
        the return value has the same shape.
        """
        raise NotImplementedError


class ImplyXnorGate(XnorGate):
    """Material-implication XNOR (Kvatinsky et al. [23] style).

    The 11-step program below computes XNOR(A, B) into OUT using one work
    cell, destroying the inputs (controllers reprogram inputs each
    operation anyway):

    ========  ==================  ===========================
    step      operation           cell contents afterwards
    ========  ==================  ===========================
    1         RESET W             W = 0
    2         W  := A  IMP W      W = ¬A
    3         RESET OUT           OUT = 0
    4         OUT := B IMP OUT    OUT = ¬B
    5         B  := A  IMP B      B = A→B
    6         OUT := W IMP OUT    OUT = B→A
    7         RESET A             A = 0
    8         A  := OUT IMP A     A = ¬(B→A)
    9         A  := B  IMP A      A = XOR(A₀, B₀)
    10        RESET OUT           OUT = 0
    11        OUT := A IMP OUT    OUT = XNOR(A₀, B₀)
    ========  ==================  ===========================
    """

    steps_per_op = 11

    #: program encoding: ("reset", target) or ("imply", p, q)
    PROGRAM = (
        ("reset", CELL_W),
        ("imply", CELL_A, CELL_W),
        ("reset", CELL_OUT),
        ("imply", CELL_B, CELL_OUT),
        ("imply", CELL_A, CELL_B),
        ("imply", CELL_W, CELL_OUT),
        ("reset", CELL_A),
        ("imply", CELL_OUT, CELL_A),
        ("imply", CELL_B, CELL_A),
        ("reset", CELL_OUT),
        ("imply", CELL_A, CELL_OUT),
    )

    def compute(self, cells, a_bits, b_bits):
        cells.write(np.asarray(a_bits), (..., CELL_A))
        cells.write(np.asarray(b_bits), (..., CELL_B))
        for op in self.PROGRAM:
            if op[0] == "reset":
                target = op[1]
                cells.write(np.zeros(a_bits.shape, dtype=np.uint8), (..., target))
            else:
                _, p, q = op
                p_bits = cells.read((..., p))
                q_bits = cells.read((..., q))
                result = ((1 - p_bits) | q_bits).astype(np.uint8)
                cells.write(result, (..., q))
        return cells.read((..., CELL_OUT))


class MagicXnorGate(XnorGate):
    """Complementary-pair XNOR (MAGIC-style read-out).

    Cell roles: A holds x, B holds ¬x, W holds w, OUT holds ¬w.  The sensed
    result is ``(x∧w) ∨ (¬x∧¬w)`` evaluated from the *stored* levels — a
    stuck cell breaks the complementary invariant and corrupts the output
    mechanistically (e.g. both pair cells reading 1 makes the gate always
    fire).
    """

    steps_per_op = 3  # program pair, single evaluation pulse, read

    def compute(self, cells, a_bits, b_bits):
        a_bits = np.asarray(a_bits)
        b_bits = np.asarray(b_bits)
        cells.write(a_bits, (..., CELL_A))
        cells.write((1 - a_bits).astype(np.uint8), (..., CELL_B))
        cells.write(b_bits, (..., CELL_W))
        cells.write((1 - b_bits).astype(np.uint8), (..., CELL_OUT))
        x = cells.read((..., CELL_A))
        x_bar = cells.read((..., CELL_B))
        w = cells.read((..., CELL_W))
        w_bar = cells.read((..., CELL_OUT))
        return ((x & w) | (x_bar & w_bar)).astype(np.uint8)


_FAMILIES = {"imply": ImplyXnorGate, "magic": MagicXnorGate}


def get_gate_family(name: str) -> XnorGate:
    """Instantiate a gate family by name ('imply' or 'magic')."""
    try:
        return _FAMILIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown gate family {name!r}; known: {sorted(_FAMILIES)}") from None
