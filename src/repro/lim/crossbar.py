"""Memristive crossbar array executing parallel XNOR operations (Fig. 1).

A crossbar holds ``rows × cols`` XNOR gate slots, each backed by four
memristor cells (:mod:`repro.lim.gates`).  The array supports

* ideal and device-level XNOR tile evaluation,
* cell-level fault injection (stuck-at on any of the four cells),
* structural row/column faults (broken drivers: every cell on the line is
  stuck),
* dynamic faults that sensitize a cell every n-th use (the paper's [24]),
* per-cell use counting, which the dynamic-fault model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gates import CELL_B, CELL_OUT, CELL_W, get_gate_family
from .memristor import CellArray, DeviceParams, Health

__all__ = ["CrossbarConfig", "Crossbar"]


@dataclass
class CrossbarConfig:
    """Geometry and device configuration of a crossbar instance."""

    rows: int = 40
    cols: int = 10
    gate_family: str = "imply"
    device: DeviceParams | None = None
    seed: int = 0

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("crossbar dimensions must be positive")


class Crossbar:
    """An R×C array of 4-memristor XNOR gates with fault state."""

    def __init__(self, config: CrossbarConfig | None = None, **overrides):
        if config is None:
            config = CrossbarConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides, not both")
        self.config = config
        self.rows = config.rows
        self.cols = config.cols
        self.gate = get_gate_family(config.gate_family)
        device = config.device if config.device is not None else DeviceParams()
        self.cells = CellArray((self.rows, self.cols, 4), device, seed=config.seed)
        # transient bit-flip faults: flip the gate output on (every n-th) use
        self.flip_mask = np.zeros((self.rows, self.cols), dtype=bool)
        self.flip_period = np.zeros((self.rows, self.cols), dtype=np.int64)
        self.use_count = np.zeros((self.rows, self.cols), dtype=np.int64)

    # -- fault injection --------------------------------------------------
    def inject_stuck_cell(self, row: int, col: int, cell: int,
                          stuck_value: int) -> None:
        """Stuck-at fault on one of a gate's four memristors."""
        health = Health.STUCK_LRS if stuck_value else Health.STUCK_HRS
        self.cells.set_health((row, col, cell), health)

    def inject_stuck_gate(self, row: int, col: int, stuck_value: int) -> None:
        """Stuck output: the gate's OUT cell can no longer switch."""
        self.inject_stuck_cell(row, col, CELL_OUT, stuck_value)

    def inject_stuck_weight(self, row: int, col: int, stuck_value: int) -> None:
        """Freeze the gate's stored weight at a valid binary level.

        This is the device view of FLIM's WEIGHT-level stuck-at: the gate
        keeps computing a clean XNOR, but against a frozen operand.  With
        complementary-pair storage (MAGIC) both weight cells stick
        consistently; with IMPLY the weight lives in a single cell whose
        stuck behaviour is messier (see the gate tests) — only stuck-at-1
        degenerates to a clean frozen weight there.
        """
        if self.config.gate_family == "magic":
            self.inject_stuck_cell(row, col, CELL_W, stuck_value)
            self.inject_stuck_cell(row, col, CELL_OUT, 1 - stuck_value)
        else:
            self.inject_stuck_cell(row, col, CELL_B, stuck_value)

    def inject_row_fault(self, row: int, stuck_value: int = 0) -> None:
        """Broken row driver: every cell on the row is stuck."""
        health = Health.STUCK_LRS if stuck_value else Health.STUCK_HRS
        self.cells.set_health((row, slice(None), slice(None)), health)

    def inject_column_fault(self, col: int, stuck_value: int = 0) -> None:
        """Broken column driver: every cell on the column is stuck."""
        health = Health.STUCK_LRS if stuck_value else Health.STUCK_HRS
        self.cells.set_health((slice(None), col, slice(None)), health)

    def inject_bitflip(self, row: int, col: int, period: int = 0) -> None:
        """Transient output flip at a gate; ``period`` n>0 makes it dynamic
        (sensitized every n-th use), n==0 flips every use."""
        self.flip_mask[row, col] = True
        self.flip_period[row, col] = period

    def clear_faults(self) -> None:
        self.cells.health[...] = Health.OK
        self.flip_mask[...] = False
        self.flip_period[...] = 0
        self.use_count[...] = 0

    def fault_summary(self) -> dict[str, int]:
        return {
            "stuck_cells": int((self.cells.health != Health.OK).sum()),
            "flip_gates": int(self.flip_mask.sum()),
        }

    # -- execution ----------------------------------------------------------
    def compute_xnor(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        """Device-level XNOR of two {0,1} tiles of shape ``(rows, cols)``.

        Unused gate positions can simply carry zeros; the caller masks the
        result.  Each call counts as one use of every gate in the tile.
        """
        a_bits = np.asarray(a_bits, dtype=np.uint8)
        b_bits = np.asarray(b_bits, dtype=np.uint8)
        if a_bits.shape != (self.rows, self.cols):
            raise ValueError(
                f"tile shape {a_bits.shape} != crossbar {(self.rows, self.cols)}")
        out = self.gate.compute(self.cells, a_bits, b_bits).astype(np.uint8)
        if self.flip_mask.any():
            period = self.flip_period
            due = np.zeros_like(self.flip_mask)
            static = self.flip_mask & (period == 0)
            dynamic = self.flip_mask & (period > 0)
            due |= static
            with np.errstate(divide="ignore", invalid="ignore"):
                hits = dynamic & (self.use_count % np.where(period > 0, period, 1) == 0)
            due |= hits
            out = np.where(due, 1 - out, out)
        self.use_count += 1
        return out

    def compute_xnor_serial(self, a_bits: np.ndarray, b_bits: np.ndarray
                            ) -> np.ndarray:
        """Gate-serial device evaluation: one gate program at a time.

        This is the granularity X-Fault simulates at ("faults on
        memristor level"): every gate's program executes on its own four
        cells with no vectorization across the tile.  Functionally
        identical to :meth:`compute_xnor` (same cells, same faults, same
        use counting) — only the cost model differs, by orders of
        magnitude.
        """
        a_bits = np.asarray(a_bits, dtype=np.uint8)
        b_bits = np.asarray(b_bits, dtype=np.uint8)
        if a_bits.shape != (self.rows, self.cols):
            raise ValueError(
                f"tile shape {a_bits.shape} != crossbar {(self.rows, self.cols)}")
        out = np.empty((self.rows, self.cols), dtype=np.uint8)
        for row in range(self.rows):
            for col in range(self.cols):
                gate_cells = self.cells.subview(
                    (slice(row, row + 1), slice(col, col + 1)))
                result = self.gate.compute(
                    gate_cells,
                    a_bits[row:row + 1, col:col + 1],
                    b_bits[row:row + 1, col:col + 1])
                out[row, col] = result[0, 0]
        if self.flip_mask.any():
            due = self.flip_mask & (self.flip_period == 0)
            dynamic = self.flip_mask & (self.flip_period > 0)
            periods = np.where(self.flip_period > 0, self.flip_period, 1)
            due |= dynamic & (self.use_count % periods == 0)
            out = np.where(due, 1 - out, out)
        self.use_count += 1
        return out

    def ideal_xnor(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        """Golden XNOR with no device in the loop (for verification)."""
        a_bits = np.asarray(a_bits, dtype=np.uint8)
        b_bits = np.asarray(b_bits, dtype=np.uint8)
        return (1 - (a_bits ^ b_bits)).astype(np.uint8)

    def __repr__(self):
        return (f"<Crossbar {self.rows}x{self.cols} gate={self.config.gate_family} "
                f"faults={self.fault_summary()}>")
