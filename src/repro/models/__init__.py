"""Model zoo: binary LeNet (Fig. 4) and the nine Table-II architectures."""

from .blocks import (DenseBinaryBlock, ImprovementBlock, RealToBinaryBlock,
                     ResidualBinaryBlock)
from .lenet import LENET_MAPPED_LAYERS, build_lenet
from .stats import ModelStats, compute_stats, format_count
from .zoo import (MODEL_BUILDERS, MODEL_PAPER_STATS, build_model, model_names)

__all__ = [
    "build_lenet", "LENET_MAPPED_LAYERS",
    "ResidualBinaryBlock", "DenseBinaryBlock", "ImprovementBlock",
    "RealToBinaryBlock",
    "MODEL_BUILDERS", "MODEL_PAPER_STATS", "build_model", "model_names",
    "ModelStats", "compute_stats", "format_count",
]
