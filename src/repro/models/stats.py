"""Model characteristics — the quantities of the paper's Table II.

For each model: parameter count, binarized fraction, serialized size
(binary weights cost 1 bit, everything else 32), and multiply-accumulate
operations per inference (conv + dense layers, from the built shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binary.layers import QuantLayer
from ..nn.layers import Conv2D, Dense
from ..nn.model import Sequential

__all__ = ["ModelStats", "compute_stats", "format_count"]


@dataclass(frozen=True)
class ModelStats:
    """Table-II row for one model."""

    name: str
    params: int
    binary_params: int
    macs: int
    size_mb: float

    @property
    def binarized_percent(self) -> float:
        """Share of parameters stored as single bits."""
        if self.params == 0:
            return 0.0
        return 100.0 * self.binary_params / self.params

    def row(self) -> dict[str, object]:
        return {
            "model": self.name,
            "size_mb": round(self.size_mb, 3),
            "params": self.params,
            "macs": self.macs,
            "binarized_pct": round(self.binarized_percent, 2),
        }


def format_count(value: int) -> str:
    """Human-readable counts: 61.8M, 1.81B — the paper's notation."""
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if value >= threshold:
            return f"{value / threshold:.3g}{suffix}"
    return str(value)


def _layer_macs(layer, input_shape) -> int:
    """Multiply-accumulates a layer performs per image."""
    if isinstance(layer, QuantLayer):
        return layer.xnor_ops_per_image()
    if isinstance(layer, Conv2D):
        oh, ow, c_out = layer.compute_output_shape(input_shape)
        k = layer.kernel_size
        return oh * ow * c_out * k * k * input_shape[-1]
    if isinstance(layer, Dense):
        return input_shape[0] * layer.units
    return 0


def compute_stats(model: Sequential) -> ModelStats:
    """Compute the Table-II quantities from a built model."""
    if not model.built:
        raise ValueError("model must be built to compute statistics")
    params = model.num_params()
    binary = sum(layer.binary_param_count()
                 for layer in model.layers_of_type(QuantLayer))
    # MACs need shapes: walk top-level layers; composite blocks expose the
    # conv through sub_layers with its own built input shape
    macs = 0
    for layer in model.all_layers():
        if isinstance(layer, QuantLayer):
            macs += layer.xnor_ops_per_image()
        elif isinstance(layer, (Conv2D, Dense)):
            # non-quantized layers of the numpy engine are not used in the
            # zoo's compute path, but account for them if present
            macs += 0
    size_bits = binary * 1 + (params - binary) * 32
    return ModelStats(
        name=model.name,
        params=params,
        binary_params=binary,
        macs=macs,
        size_mb=size_bits / 8 / 1e6,
    )
