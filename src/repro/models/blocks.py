"""Composite blocks for the Table-II architecture families.

Each block is a composite :class:`~repro.nn.layers.Layer` owning its
sub-layers (discovered through :meth:`sub_layers` for parameter traversal)
and implementing forward/backward across the non-sequential topology —
identity shortcuts (ResNet/Bi-Real/Real-to-Binary), channel concatenation
(BinaryDenseNet), and feature improvement (MeliusNet).

All blocks keep the spatial size (stride 1, SAME padding); downsampling
happens between stages via pooling layers, as in the Binary DenseNet and
ResNetE papers' binary-friendly variants.
"""

from __future__ import annotations

import numpy as np

from ..binary.layers import QuantConv2D
from ..nn.layers import BatchNorm, ChannelScale, Layer

__all__ = ["ResidualBinaryBlock", "DenseBinaryBlock", "ImprovementBlock",
           "RealToBinaryBlock"]


class _CompositeBlock(Layer):
    """Shared plumbing: a binary conv + batch-norm branch."""

    def __init__(self, filters: int, kernel_size: int = 3,
                 input_quantizer="ste_sign", kernel_quantizer="ste_sign",
                 name: str | None = None):
        super().__init__(name)
        self.filters = filters
        self.conv = QuantConv2D(
            filters, kernel_size, padding="same",
            input_quantizer=input_quantizer, kernel_quantizer=kernel_quantizer,
            name=f"{self.name}_conv")
        self.bn = BatchNorm(name=f"{self.name}_bn")

    def sub_layers(self):
        return [self.conv, self.bn]

    def _build_branch(self, input_shape, rng):
        self.conv.build(input_shape, rng)
        branch_shape = self.conv.compute_output_shape(input_shape)
        self.bn.build(branch_shape, rng)
        return branch_shape

    def _branch_forward(self, x, training):
        return self.bn.forward(self.conv.forward(x, training), training)

    def _branch_backward(self, dout):
        return self.conv.backward(self.bn.backward(dout))


class ResidualBinaryBlock(_CompositeBlock):
    """``out = BN(QuantConv(x)) + shortcut(x)`` — the ResNetE/Bi-Real block.

    When the block grows the channel count, the shortcut zero-pads new
    channels (the parameter-free option of ResNetE).  Bi-Real Net uses the
    same topology with the ApproxSign input quantizer.
    """

    def build(self, input_shape, rng):
        self.in_channels = input_shape[-1]
        if self.filters < self.in_channels:
            raise ValueError(
                f"{self.name}: filters ({self.filters}) must be >= input "
                f"channels ({self.in_channels}) for a zero-padded shortcut")
        self._build_branch(input_shape, rng)
        super(_CompositeBlock, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        h, w, _ = input_shape
        return (h, w, self.filters)

    def forward(self, x, training=False):
        branch = self._branch_forward(x, training)
        if self.filters == self.in_channels:
            shortcut = x
        else:
            pad = self.filters - self.in_channels
            shortcut = np.pad(x, ((0, 0), (0, 0), (0, 0), (0, pad)))
        return branch + shortcut

    def backward(self, dout):
        dx = self._branch_backward(dout)
        return dx + dout[..., :self.in_channels]


class DenseBinaryBlock(_CompositeBlock):
    """``out = concat([x, BN(QuantConv(x))])`` — the BinaryDenseNet block.

    Dense connectivity re-uses all earlier feature maps, which is the
    mechanism behind the DenseNet family's fault resilience: a corrupted
    layer output is only one of many concatenated feature groups.
    """

    def __init__(self, growth: int, kernel_size: int = 3,
                 input_quantizer="ste_sign", name: str | None = None):
        super().__init__(growth, kernel_size, input_quantizer, name=name)
        self.growth = growth

    def build(self, input_shape, rng):
        self.in_channels = input_shape[-1]
        self._build_branch(input_shape, rng)
        super(_CompositeBlock, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        h, w, c = input_shape
        return (h, w, c + self.growth)

    def forward(self, x, training=False):
        branch = self._branch_forward(x, training)
        return np.concatenate([x, branch], axis=-1)

    def backward(self, dout):
        direct = dout[..., :self.in_channels]
        branch = dout[..., self.in_channels:]
        return direct + self._branch_backward(branch)


class ImprovementBlock(_CompositeBlock):
    """MeliusNet improvement block: refine the newest ``delta`` channels.

    ``out[..., -delta:] += BN(QuantConv(x, delta))`` — instead of adding
    ever more channels, the block improves the quality of those a
    preceding dense block just appended.
    """

    def __init__(self, delta: int, kernel_size: int = 3,
                 input_quantizer="ste_sign", name: str | None = None):
        super().__init__(delta, kernel_size, input_quantizer, name=name)
        self.delta = delta

    def build(self, input_shape, rng):
        if input_shape[-1] < self.delta:
            raise ValueError(
                f"{self.name}: needs at least {self.delta} input channels")
        self._build_branch(input_shape, rng)
        super(_CompositeBlock, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        return input_shape

    def forward(self, x, training=False):
        branch = self._branch_forward(x, training)
        out = x.copy()
        out[..., -self.delta:] += branch
        return out

    def backward(self, dout):
        dx = dout.copy()
        dx += self._pad_branch_gradient(self._branch_backward(dout[..., -self.delta:]))
        return dx

    def _pad_branch_gradient(self, dbranch):
        return dbranch


class RealToBinaryBlock(_CompositeBlock):
    """Real-to-Binary residual block: binary conv re-scaled by real gains.

    ``out = Scale(BN(QuantConv(x))) + shortcut(x)`` — the per-channel
    real-valued scale recovers part of the information lost to
    binarization (the paper's "real-to-binary convolutions"); it executes
    in CMOS, so crossbar faults never touch it.
    """

    def __init__(self, filters: int, kernel_size: int = 3,
                 input_quantizer="ste_sign", name: str | None = None):
        super().__init__(filters, kernel_size, input_quantizer, name=name)
        self.scale = ChannelScale(name=f"{self.name}_scale")

    def sub_layers(self):
        return [self.conv, self.bn, self.scale]

    def build(self, input_shape, rng):
        self.in_channels = input_shape[-1]
        if self.filters < self.in_channels:
            raise ValueError(
                f"{self.name}: filters must be >= input channels")
        branch_shape = self._build_branch(input_shape, rng)
        self.scale.build(branch_shape, rng)
        super(_CompositeBlock, self).build(input_shape, rng)

    def compute_output_shape(self, input_shape):
        h, w, _ = input_shape
        return (h, w, self.filters)

    def forward(self, x, training=False):
        branch = self.scale.forward(self._branch_forward(x, training), training)
        if self.filters == self.in_channels:
            shortcut = x
        else:
            pad = self.filters - self.in_channels
            shortcut = np.pad(x, ((0, 0), (0, 0), (0, 0), (0, pad)))
        return branch + shortcut

    def backward(self, dout):
        dx = self._branch_backward(self.scale.backward(dout))
        return dx + dout[..., :self.in_channels]
