"""Binary LeNet — the workload of the paper's layer-resilience study.

"We use a binary version of LeNet trained on the MNIST dataset ...
consists of three convolutional layers and two dense layers" (§IV).  The
first convolution consumes real-valued grey-scale pixels, so it executes
in CMOS (X-Fault's conservative approach); the four remaining layers —
``conv1``, ``conv2``, ``dense0``, ``dense1``, exactly the legend of the
paper's Fig. 4a — are fully binarized and LIM-mapped.
"""

from __future__ import annotations

from .. import nn
from ..binary import QuantConv2D, QuantDense

__all__ = ["build_lenet", "LENET_MAPPED_LAYERS"]

#: the crossbar-mapped layer names, in execution order (Fig. 4a legend)
LENET_MAPPED_LAYERS = ("conv1", "conv2", "dense0", "dense1")


def build_lenet(input_shape: tuple[int, int, int] = (28, 28, 1),
                num_classes: int = 10, seed: int = 0,
                width: int = 8) -> nn.Sequential:
    """Build and initialize the binary LeNet.

    ``width`` scales every channel count; the default (8) gives a ~20k
    parameter model that trains to the high 90s on the synthetic MNIST in
    under a minute of CPU time.
    """
    model = nn.Sequential([
        # conv0: real-valued input, binary kernel -> CMOS, not mapped
        QuantConv2D(width, 5, padding="valid", kernel_quantizer="ste_sign",
                    name="conv0"),
        nn.MaxPool2D(2),
        nn.BatchNorm(name="bn0"),
        # conv1: fully binary -> mapped
        QuantConv2D(2 * width, 5, padding="valid", input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign", name="conv1"),
        nn.MaxPool2D(2),
        nn.BatchNorm(name="bn1"),
        # conv2: fully binary -> mapped
        QuantConv2D(4 * width, 3, padding="valid", input_quantizer="ste_sign",
                    kernel_quantizer="ste_sign", name="conv2"),
        nn.BatchNorm(name="bn2"),
        nn.Flatten(),
        # dense0 / dense1: fully binary -> mapped
        QuantDense(8 * width, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign", name="dense0"),
        nn.BatchNorm(name="bn3"),
        QuantDense(num_classes, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign", name="dense1"),
        nn.BatchNorm(name="bn4"),
    ], name="binary_lenet")
    model.build(input_shape, seed=seed)
    return model
