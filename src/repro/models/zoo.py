"""The nine Table-II architectures, scaled to the synthetic ImageNet task.

Every family keeps its distinguishing mechanism — plain deep stacks
(BinaryAlexNet), magnitude-aware gains (XNOR-Net), identity shortcuts
(BinaryResNetE18), ApproxSign shortcuts (Bi-Real Net), re-scaled residuals
(RealToBinaryNet), dense concatenation at three depths (BinaryDenseNet
28/37/45) and dense+improvement pairs (MeliusNet22) — because those
mechanisms are what drive the resilience differences Fig. 5 measures.
Channel counts are scaled down so each model trains on CPU in well under
a minute; Table II in EXPERIMENTS.md records paper-vs-measured stats.
"""

from __future__ import annotations

from .. import nn
from ..binary import MagnitudeAwareSign, QuantConv2D, QuantDense
from .blocks import (DenseBinaryBlock, ImprovementBlock, RealToBinaryBlock,
                     ResidualBinaryBlock)

__all__ = ["MODEL_BUILDERS", "MODEL_PAPER_STATS", "build_model", "model_names"]

INPUT_SHAPE = (32, 32, 3)
NUM_CLASSES = 10


def _stem(width: int) -> list:
    """Full-precision stem conv (CMOS) + batch-norm, shared by every model.

    Keeping the first layer real-valued is standard BNN practice (Bi-Real,
    BinaryDenseNet, ...) and is what puts the paper's Table-II binarized
    fractions in the 90-97% band rather than ~100%.
    """
    return [
        QuantConv2D(width, 3, padding="same", kernel_quantizer=None,
                    use_bias=True, name="stem"),
        nn.BatchNorm(),
    ]


def _head(num_classes: int = NUM_CLASSES) -> list:
    """Binary classifier head: global pooling + mapped dense + BN logits."""
    return [
        nn.GlobalAvgPool2D(),
        QuantDense(num_classes, input_quantizer="ste_sign",
                   kernel_quantizer="ste_sign", name="classifier"),
        nn.BatchNorm(),
    ]


def build_binary_alexnet(seed: int = 0) -> nn.Sequential:
    """Plain deep binary stack — no shortcuts, the least protected family."""
    model = nn.Sequential(
        _stem(16) + [
            QuantConv2D(32, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer="ste_sign", name="conv1"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            QuantConv2D(48, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer="ste_sign", name="conv2"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            QuantConv2D(64, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer="ste_sign", name="conv3"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            nn.Flatten(),
            QuantDense(96, input_quantizer="ste_sign",
                       kernel_quantizer="ste_sign", name="dense0"),
            nn.BatchNorm(),
            QuantDense(NUM_CLASSES, input_quantizer="ste_sign",
                       kernel_quantizer="ste_sign", name="dense1"),
            nn.BatchNorm(),
        ], name="binary_alexnet")
    return model.build(INPUT_SHAPE, seed=seed)


def build_xnornet(seed: int = 0) -> nn.Sequential:
    """AlexNet-style stack with XNOR-Net's magnitude-aware weight gains."""
    model = nn.Sequential(
        _stem(16) + [
            QuantConv2D(32, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer=MagnitudeAwareSign(), name="conv1"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            QuantConv2D(48, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer=MagnitudeAwareSign(), name="conv2"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            QuantConv2D(64, 3, padding="same", input_quantizer="ste_sign",
                        kernel_quantizer=MagnitudeAwareSign(), name="conv3"),
            nn.MaxPool2D(2), nn.BatchNorm(),
            nn.Flatten(),
            QuantDense(96, input_quantizer="ste_sign",
                       kernel_quantizer=MagnitudeAwareSign(), name="dense0"),
            nn.BatchNorm(),
            QuantDense(NUM_CLASSES, input_quantizer="ste_sign",
                       kernel_quantizer="ste_sign", name="dense1"),
            nn.BatchNorm(),
        ], name="xnornet")
    return model.build(INPUT_SHAPE, seed=seed)


def _residual_backbone(block_fn, name: str, seed: int,
                       widths=(16, 32, 64), blocks_per_stage=2) -> nn.Sequential:
    layers = _stem(widths[0])
    for stage, width in enumerate(widths):
        for index in range(blocks_per_stage):
            layers.append(block_fn(width, name=f"block{stage}_{index}"))
        if stage < len(widths) - 1:
            layers.append(nn.MaxPool2D(2))
    layers += _head()
    return nn.Sequential(layers, name=name).build(INPUT_SHAPE, seed=seed)


def build_binary_resnet_e18(seed: int = 0) -> nn.Sequential:
    """ResNetE: binary residual blocks with zero-padded shortcuts."""
    return _residual_backbone(
        lambda width, name: ResidualBinaryBlock(width, name=name),
        "binary_resnet_e18", seed)


def build_birealnet(seed: int = 0) -> nn.Sequential:
    """Bi-Real Net: per-conv identity shortcuts + ApproxSign activations."""
    return _residual_backbone(
        lambda width, name: ResidualBinaryBlock(
            width, input_quantizer="approx_sign", name=name),
        "birealnet", seed)


def build_real_to_binary(seed: int = 0) -> nn.Sequential:
    """Real-to-Binary: residual blocks with real-valued channel re-scaling."""
    return _residual_backbone(
        lambda width, name: RealToBinaryBlock(width, name=name),
        "real_to_binary", seed)


def _densenet(name: str, blocks_per_stage: int, seed: int,
              growth: int = 12, stages: int = 3, stem_width: int = 16
              ) -> nn.Sequential:
    layers = _stem(stem_width)
    block = 0
    for stage in range(stages):
        for _ in range(blocks_per_stage):
            layers.append(DenseBinaryBlock(growth, name=f"dense_block{block}"))
            block += 1
        if stage < stages - 1:
            layers.append(nn.AvgPool2D(2))
    layers += _head()
    return nn.Sequential(layers, name=name).build(INPUT_SHAPE, seed=seed)


def build_binary_densenet28(seed: int = 0) -> nn.Sequential:
    return _densenet("binary_densenet28", blocks_per_stage=2, seed=seed)


def build_binary_densenet37(seed: int = 0) -> nn.Sequential:
    return _densenet("binary_densenet37", blocks_per_stage=3, seed=seed)


def build_binary_densenet45(seed: int = 0) -> nn.Sequential:
    return _densenet("binary_densenet45", blocks_per_stage=4, seed=seed)


def build_meliusnet22(seed: int = 0) -> nn.Sequential:
    """MeliusNet: dense block (+growth) then improvement block (refine)."""
    growth = 12
    layers = _stem(16)
    block = 0
    for stage in range(3):
        for _ in range(2):
            layers.append(DenseBinaryBlock(growth, name=f"melius_dense{block}"))
            layers.append(ImprovementBlock(growth, name=f"melius_improve{block}"))
            block += 1
        if stage < 2:
            layers.append(nn.AvgPool2D(2))
    layers += _head()
    return nn.Sequential(layers, name="meliusnet22").build(INPUT_SHAPE, seed=seed)


#: builder registry keyed by the names used throughout the experiments
MODEL_BUILDERS = {
    "binary_densenet45": build_binary_densenet45,
    "binary_densenet37": build_binary_densenet37,
    "binary_densenet28": build_binary_densenet28,
    "binary_resnet_e18": build_binary_resnet_e18,
    "real_to_binary": build_real_to_binary,
    "binary_alexnet": build_binary_alexnet,
    "meliusnet22": build_meliusnet22,
    "birealnet": build_birealnet,
    "xnornet": build_xnornet,
}

#: paper Table II reference values: top-1 %, size MB, params, MACs, binarized %
MODEL_PAPER_STATS = {
    "real_to_binary": (65.0, 5.13, "12M", "1.81B", 92.39),
    "binary_densenet45": (65.0, 7.54, "13.9M", "6.67B", 96.34),
    "binary_densenet37": (62.9, 5.25, "8.7M", "4.71B", 96.76),
    "binary_densenet28": (60.9, 4.12, "5.13M", "3.79B", 94.66),
    "binary_resnet_e18": (58.3, 4.03, "11.7M", "1.81B", 92.4),
    "binary_alexnet": (36.3, 7.49, "61.8M", "841M", 91.34),
    "meliusnet22": (62.9, 3.88, "6.94M", "4.76B", 97.14),
    "birealnet": (57.5, 4.03, "11.7M", "1.81B", 92.4),
    "xnornet": (45.0, 22.81, "62.4M", "1.14B", 90.05),
}


def model_names() -> list[str]:
    return list(MODEL_BUILDERS)


def build_model(name: str, seed: int = 0) -> nn.Sequential:
    """Build a zoo model by name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; known: {model_names()}") from None
    return builder(seed=seed)
