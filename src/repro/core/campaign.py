"""Fault-injection campaigns: sweeps × repetitions × seeds.

"To mitigate the impact of randomly placing the faults on the crossbar, we
performed every experiment hundred times which reinitialized the random
generator with a new seed value." — §IV.  A campaign sweeps one
experimental knob (injection rate, dynamic period, faulty-line count),
repeating each point with fresh seeds, and returns the accuracy samples
for aggregation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..nn.model import Sequential
from .faults import FaultSpec
from .generator import FaultGenerator
from .injector import FaultInjector

__all__ = ["SweepResult", "FaultCampaign"]


@dataclass
class SweepResult:
    """Accuracy samples of one sweep.

    ``accuracies[i, j]`` is the accuracy at sweep point ``xs[i]`` in
    repetition ``j``.
    """

    label: str
    xs: list[float]
    accuracies: np.ndarray
    baseline: float = float("nan")
    meta: dict = field(default_factory=dict)

    def mean(self) -> np.ndarray:
        return self.accuracies.mean(axis=1)

    def std(self) -> np.ndarray:
        return self.accuracies.std(axis=1)

    def min(self) -> np.ndarray:
        return self.accuracies.min(axis=1)

    def max(self) -> np.ndarray:
        return self.accuracies.max(axis=1)

    def as_rows(self) -> list[tuple[float, float, float]]:
        """(x, mean, std) rows — the series a paper figure plots."""
        return [(x, float(m), float(s))
                for x, m, s in zip(self.xs, self.mean(), self.std())]

    def __repr__(self):
        points = ", ".join(f"{x:g}:{m:.3f}" for x, m in zip(self.xs, self.mean()))
        return f"<SweepResult {self.label} [{points}]>"


class FaultCampaign:
    """Runs accuracy-vs-fault sweeps on a fixed model and dataset."""

    def __init__(self, model: Sequential, x_test: np.ndarray, y_test: np.ndarray,
                 rows: int = 40, cols: int = 10, batch_size: int = 256,
                 continue_time_across_layers: bool = True):
        self.model = model
        self.x_test = x_test
        self.y_test = y_test
        self.rows = rows
        self.cols = cols
        self.batch_size = batch_size
        self.continue_time = continue_time_across_layers

    def baseline_accuracy(self) -> float:
        """Fault-free accuracy (FLIM with no faults == vanilla)."""
        return self.model.evaluate(self.x_test, self.y_test, self.batch_size)

    def run(self, spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
            xs: Sequence[float], repeats: int = 10, seed: int = 0,
            layers: list[str] | None = None, label: str = "sweep") -> SweepResult:
        """Sweep ``xs`` through ``spec_factory``, re-seeding per repetition.

        ``spec_factory(x)`` builds the fault spec(s) for sweep value ``x``
        (e.g. ``lambda rate: FaultSpec.bitflip(rate)``).  ``layers``
        restricts injection to named mapped layers (the paper's per-layer
        resilience study); ``None`` injects into all mapped layers (the
        "combined" curve).
        """
        injector = FaultInjector(self.continue_time)
        accuracies = np.zeros((len(xs), repeats), dtype=np.float64)
        for i, x_value in enumerate(xs):
            specs = spec_factory(x_value)
            for j in range(repeats):
                generator = FaultGenerator(
                    specs, rows=self.rows, cols=self.cols,
                    seed=seed + 7919 * j + 104729 * i)
                plan = generator.generate(self.model, layers=layers)
                with injector.injecting(self.model, plan):
                    accuracies[i, j] = self.model.evaluate(
                        self.x_test, self.y_test, self.batch_size)
        return SweepResult(label=label, xs=list(xs), accuracies=accuracies,
                           baseline=self.baseline_accuracy(),
                           meta={"rows": self.rows, "cols": self.cols,
                                 "repeats": repeats, "layers": layers})
