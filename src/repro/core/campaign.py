"""Fault-injection campaigns: sweeps × repetitions × seeds.

"To mitigate the impact of randomly placing the faults on the crossbar, we
performed every experiment hundred times which reinitialized the random
generator with a new seed value." — §IV.  A campaign sweeps one
experimental knob (injection rate, dynamic period, faulty-line count),
repeating each point with fresh seeds, and returns the accuracy samples
for aggregation.

Execution is delegated to :mod:`repro.core.engine`: the sweep grid is
flattened into independent jobs with pre-generated fault plans and run
through a pluggable executor (``serial``, ``multiprocessing`` or
``shared_memory``) on a float or bit-packed inference backend.  All
combinations are bit-identical under fixed seeds.

Campaigns can be **journaled**: ``run(..., journal=path)`` streams every
completed cell into a JSONL file as it arrives, and a rerun with the same
path skips the already-journaled cells — a killed campaign resumes where
it died and reproduces the uninterrupted result exactly
(:mod:`repro.core.journal`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field

import numpy as np

from .. import obs as _obs
from ..nn.model import Sequential
from .engine import (CampaignEvaluator, build_jobs,
                     fingerprint_data_and_weights, get_executor)
from .faults import FaultSpec
from .journal import CampaignJournal
from .resilience import new_stats

__all__ = ["SweepResult", "FaultCampaign"]


def _describe_specs(spec_factory, x) -> list[str]:
    """Stable textual form of the fault spec(s) for sweep value ``x``.

    Journals store this per sweep point so a resume with a different
    fault type or parameterization (e.g. another fixed rate behind the
    same period axis) is refused rather than silently mixed in.
    """
    specs = spec_factory(x)
    if not isinstance(specs, (list, tuple)):
        specs = [specs]
    return [repr(spec) for spec in specs]


@dataclass
class SweepResult:
    """Accuracy samples of one sweep.

    ``accuracies[i, j]`` is the accuracy at sweep point ``xs[i]`` in
    repetition ``j``.
    """

    label: str
    xs: list[float]
    accuracies: np.ndarray
    baseline: float = float("nan")
    meta: dict = field(default_factory=dict)

    def mean(self) -> np.ndarray:
        return self.accuracies.mean(axis=1)

    def std(self) -> np.ndarray:
        """Per-point sample standard deviation (ddof=1).

        The repetitions are a sample of the fault-placement distribution,
        not the full population, so the paper's 100-repetition error bars
        need Bessel's correction.  A single repetition has no spread
        estimate; it reports 0 rather than NaN.
        """
        if self.accuracies.shape[1] <= 1:
            return np.zeros(self.accuracies.shape[0])
        return self.accuracies.std(axis=1, ddof=1)

    def min(self) -> np.ndarray:
        return self.accuracies.min(axis=1)

    def max(self) -> np.ndarray:
        return self.accuracies.max(axis=1)

    def as_rows(self) -> list[tuple[float, float, float]]:
        """(x, mean, std) rows — the series a paper figure plots."""
        return [(x, float(m), float(s))
                for x, m, s in zip(self.xs, self.mean(), self.std())]

    def __repr__(self):
        points = ", ".join(f"{x:g}:{m:.3f}" for x, m in zip(self.xs, self.mean()))
        return f"<SweepResult {self.label} [{points}]>"


class FaultCampaign:
    """Runs accuracy-vs-fault sweeps on a fixed model and dataset.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"multiprocessing"``,
        ``"shared_memory"``, or an executor object with a
        ``run(jobs, evaluator)`` method (streaming executors additionally
        provide ``run_iter``).
    n_jobs:
        Worker count for the pool executors; ``None`` means
        ``os.cpu_count()`` (or the ``REPRO_N_JOBS`` environment variable).
    backend:
        ``"float"`` or ``"packed"`` — see :mod:`repro.binary.layers`.
    cache_bytes:
        Byte cap, per quantized layer, for this campaign's share of the
        derived input-representation caches (im2col / packed words);
        ``None`` selects
        :data:`repro.core.engine.DEFAULT_INPUT_CACHE_BYTES` (256 MiB).
        In practice only the prefix-split layer sees cacheable inputs,
        so this is the effective campaign footprint.  The cache is sized
        to the campaign's batch count and keyed per evaluator, so
        concurrent campaigns on one model never thrash each other.
    policy:
        A :class:`~repro.core.resilience.RetryPolicy` arming retries,
        per-job timeouts, poison-job quarantine, and the executor
        degradation ladder.  ``None`` (default) keeps the legacy
        behavior: any job failure aborts the run.
    obs:
        A :class:`repro.obs.Observability` collecting trace spans
        (``campaign → plan → dispatch → evaluate → reduce``) and
        metrics for every :meth:`run`.  ``None`` (default) falls back
        to the ambient instance (:func:`repro.obs.current`) — the api
        layer activates one around each registry experiment — and runs
        fully uninstrumented when there is none.  Telemetry never feeds
        computation: results are bit-identical with or without it.
    """

    def __init__(self, model: Sequential, x_test: np.ndarray, y_test: np.ndarray,
                 rows: int = 40, cols: int = 10, batch_size: int = 256,
                 continue_time_across_layers: bool = True,
                 executor: str | object = "serial", n_jobs: int | None = None,
                 backend: str = "float", cache_bytes: int | None = None,
                 policy=None, obs=None):
        self.obs = obs if obs is not None else _obs.current()
        self.model = model
        self.rows = rows
        self.cols = cols
        self.batch_size = batch_size
        self.continue_time = continue_time_across_layers
        self.backend = backend
        self._executor = get_executor(executor, n_jobs, policy)
        self._evaluator = CampaignEvaluator(
            model, x_test, y_test, batch_size=batch_size,
            continue_time_across_layers=continue_time_across_layers,
            backend=backend, cache_bytes=cache_bytes)
        # aliases of the evaluator's snapshot — everything the campaign
        # evaluates, fingerprints, or ships to workers is this data, not
        # whatever the caller's arrays hold later
        self.x_test = self._evaluator.x_test
        self.y_test = self._evaluator.y_test

    def __enter__(self) -> "FaultCampaign":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release everything this campaign holds: shared-memory planes
        published by its executor (unlinked from ``/dev/shm``) and its
        *own* memoized state — other campaigns sharing the model keep
        their cache entries (see
        :meth:`CampaignEvaluator.release_owned`).  Idempotent; also
        usable as a context manager (``with FaultCampaign(...)``).
        """
        release = getattr(self._executor, "release_planes", None)
        if release is not None:
            release()
        self._evaluator.release_owned()

    def input_cache_stats(self) -> dict:
        """Hit/miss statistics of this campaign's input-representation
        cache traffic (see :meth:`CampaignEvaluator.input_cache_stats`)."""
        return self._evaluator.input_cache_stats()

    def baseline_accuracy(self) -> float:
        """Fault-free accuracy (FLIM with no faults == vanilla).

        Computed once per campaign — the model and test set are fixed at
        construction — and reused by every :meth:`run` (recomputed only if
        the model's weights change in place).
        """
        return self._evaluator.baseline()

    def clear_caches(self) -> None:
        """Release memoized evaluation state (baseline, prefix activations,
        layer input/kernel caches) — e.g. before discarding the campaign
        in a long-lived process."""
        self._evaluator.clear_caches()

    def run(self, spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
            xs: Sequence[float], repeats: int = 10, seed: int = 0,
            layers: list[str] | None = None, label: str = "sweep",
            journal=None, journal_fsync: bool = False,
            progress: Callable[[int, int, tuple], None] | None = None
            ) -> SweepResult:
        """Sweep ``xs`` through ``spec_factory``, re-seeding per repetition.

        Parameters
        ----------
        spec_factory : callable
            ``spec_factory(x)`` builds the fault spec(s) for sweep value
            ``x`` (e.g. ``lambda rate: FaultSpec.bitflip(rate)``).
        xs : sequence of float
            Sweep points (injection rates, periods, line counts, ...).
        repeats : int
            Repetitions per point, each with a fresh seed (the paper runs
            100).
        seed : int
            Base seed.  Each cell's plan seed is the pure function
            ``seed + 7919*repeat + 104729*point`` of its grid coordinates,
            so results are bit-identical across executors, backends,
            scheduling orders, and resumed runs.
        layers : list of str, optional
            Restrict injection to these mapped layers (the paper's
            per-layer resilience study); ``None`` injects into all mapped
            layers (the "combined" curve).
        label : str
            Stored on the returned :class:`SweepResult`.
        journal : path-like, optional
            JSONL file receiving every completed cell as it streams out
            of the executor; cells already recorded there (from an
            interrupted earlier run of the *same* grid — validated via
            header + data/weights fingerprint) are skipped.  Resilience
            events (retries, quarantines, worker losses, degradations)
            are journaled as audit lines alongside the cells.
        journal_fsync : bool
            ``os.fsync`` every journal append so it survives OS crashes
            and power loss, not just process kills (slower; off by
            default).
        progress : callable, optional
            ``progress(done, total, (point, repeat, accuracy))`` called
            after each freshly evaluated cell.

        Returns
        -------
        SweepResult
            ``accuracies`` is float64 of shape ``(len(xs), repeats)``;
            ``meta`` records executor/backend, journal bookkeeping,
            prefix-plane metrics, and input-cache statistics.
        """
        xs = list(xs)
        total = len(xs) * repeats
        accuracies = np.zeros((len(xs), repeats), dtype=np.float64)
        resumed = 0
        journal_obj = None
        skip: set[tuple[int, int]] | None = None
        if journal is not None:
            header = {"xs": [float(x) for x in xs], "repeats": repeats,
                      "seed": seed, "rows": self.rows, "cols": self.cols,
                      "layers": list(layers) if layers is not None else None,
                      "backend": self.backend,
                      "continue_time": self.continue_time,
                      "specs": [_describe_specs(spec_factory, x) for x in xs],
                      "fingerprint": self._fingerprint(),
                      "label": label}
            journal_obj = CampaignJournal(
                journal, header, fsync=journal_fsync,
                on_warning=getattr(self._executor, "on_warning",
                                   None)).open()
            skip = set()
            for (i, j), accuracy in journal_obj.completed.items():
                if i < len(xs) and j < repeats:
                    accuracies[i, j] = accuracy
                    resumed += 1
                    skip.add((i, j))
        obs = self.obs
        cache_before = (self._evaluator.input_cache_stats()
                        if obs is not None else None)
        executor_name = getattr(self._executor, "name",
                                type(self._executor).__name__)
        try:
            with self._span("campaign", label=label, cells=total,
                            executor=executor_name, backend=self.backend), \
                    ExitStack() as tracing:
                if obs is not None and journal_obj is not None:
                    # persist spans closing during this run as
                    # {"kind": "trace"} audit lines next to the cells
                    tracing.enter_context(
                        obs.tracer.sink_to(journal_obj.trace))
                # journaled cells are excluded before plan generation:
                # resuming a nearly finished grid does not regenerate
                # its fault masks
                with self._span("plan"):
                    jobs = build_jobs(self.model, spec_factory, xs,
                                      repeats, seed, self.rows, self.cols,
                                      layers, skip=skip)
                done = resumed
                saved_on_event = getattr(self._executor, "on_event", None)
                if journal_obj is not None \
                        and hasattr(self._executor, "on_event"):
                    # tee resilience events into the journal's audit
                    # trail without detaching whoever else is listening
                    # (the api layer)
                    def _tap(record, _prior=saved_on_event):
                        journal_obj.note(record)
                        if _prior is not None:
                            _prior(record)
                    self._executor.on_event = _tap
                saved_obs = getattr(self._executor, "obs", None)
                if hasattr(self._executor, "obs"):
                    self._executor.obs = obs
                try:
                    with self._span("dispatch", jobs=len(jobs)):
                        for i, j, accuracy in self._iter_results(jobs):
                            accuracies[i, j] = accuracy
                            done += 1
                            if journal_obj is not None \
                                    and accuracy == accuracy:
                                # quarantined (NaN) cells stay
                                # un-journaled so a resumed run
                                # re-attempts them
                                journal_obj.record(i, j, xs[i], accuracy)
                            if progress is not None:
                                progress(done, total, (i, j, accuracy))
                finally:
                    if hasattr(self._executor, "on_event"):
                        self._executor.on_event = saved_on_event
                    if hasattr(self._executor, "obs"):
                        self._executor.obs = saved_obs
                with self._span("reduce"):
                    meta = {"rows": self.rows, "cols": self.cols,
                            "repeats": repeats, "layers": layers,
                            "executor": executor_name,
                            "backend": self.backend,
                            "input_cache":
                                self._evaluator.input_cache_stats()}
                    prefix_plane = getattr(self._executor,
                                           "prefix_plane", None)
                    if prefix_plane is not None:
                        meta["prefix_plane"] = prefix_plane
                    # always attach the counters block, zeroed on clean
                    # unsupervised runs — consumers (and journaled
                    # resumes) can rely on its presence
                    resilience = getattr(self._executor, "resilience",
                                         None)
                    if resilience is None:
                        resilience = new_stats()
                    meta["resilience"] = {
                        key: (list(value) if isinstance(value, list)
                              else value)
                        for key, value in resilience.items()}
                    if journal is not None:
                        meta["journal"] = str(journal)
                        meta["resumed_cells"] = resumed
                    if obs is not None:
                        self._fold_metrics(meta, cache_before,
                                           done - resumed, resumed)
                    result = SweepResult(
                        label=label, xs=xs, accuracies=accuracies,
                        baseline=self.baseline_accuracy(), meta=meta)
        finally:
            if journal_obj is not None:
                journal_obj.close()
        return result

    def _span(self, name: str, **attrs):
        """A tracer span when this campaign is observed, else a no-op."""
        if self.obs is None:
            return nullcontext()
        return self.obs.tracer.span(name, **attrs)

    def _fold_metrics(self, meta: dict, cache_before: dict,
                      evaluated: int, resumed: int) -> None:
        """Fold this run's meta into the campaign's metrics registry.

        Counters take per-run deltas (the evaluator's cache stats are
        cumulative across a campaign's runs); gauges take the latest
        value.  The legacy ``meta`` dicts stay attached unchanged — the
        registry is the canonical store, ``meta`` the compatibility
        view.
        """
        from .resilience import stats_to_metrics
        registry = self.obs.metrics
        registry.counter(
            "repro_cells_evaluated_total",
            "grid cells freshly evaluated").inc(max(0, evaluated))
        registry.counter(
            "repro_cells_resumed_total",
            "grid cells replayed from a journal").inc(max(0, resumed))
        cache = meta["input_cache"]
        hits = max(0, cache["hits"] - cache_before["hits"])
        misses = max(0, cache["misses"] - cache_before["misses"])
        registry.counter("repro_input_cache_hits_total",
                         "input-representation cache hits").inc(hits)
        registry.counter("repro_input_cache_misses_total",
                         "input-representation cache misses").inc(misses)
        lookups = hits + misses
        registry.gauge(
            "repro_input_cache_hit_rate",
            "input-representation cache hit rate, last run").set(
                hits / lookups if lookups else 0.0)
        registry.gauge("repro_input_cache_bytes",
                       "bytes pinned by the input-representation "
                       "cache").set(cache.get("bytes", 0))
        plane = meta.get("prefix_plane")
        if plane:
            registry.gauge(
                "repro_prefix_plane_batches",
                "shared-memory prefix activation planes "
                "published").set(plane.get("batches", 0))
            registry.counter(
                "repro_prefix_plane_adoptions_total",
                "runs that reused already-published shared "
                "planes").inc(1 if plane.get("reused") else 0)
        stats_to_metrics(meta["resilience"], registry)

    def _fingerprint(self) -> str:
        """Digest of the evaluator's data snapshot and the model weights
        (shared helper: :func:`repro.core.engine.
        fingerprint_data_and_weights`).

        Journals store it so a resume against a different test set, a
        retrained model, or different injection timing is refused instead
        of silently mixing incompatible accuracies into one result.
        (Journals written before the digest gained the dtype field are
        refused on resume, never silently mixed.)
        """
        return fingerprint_data_and_weights(
            self._evaluator.x_test, self._evaluator.y_test,
            self.model).hexdigest()

    def _iter_results(self, jobs):
        """Stream results from the executor as cells complete (falling
        back to the batch ``run`` API for plain executor objects)."""
        run_iter = getattr(self._executor, "run_iter", None)
        if run_iter is not None:
            return run_iter(jobs, self._evaluator)
        return iter(self._executor.run(jobs, self._evaluator))
