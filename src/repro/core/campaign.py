"""Fault-injection campaigns: sweeps × repetitions × seeds.

"To mitigate the impact of randomly placing the faults on the crossbar, we
performed every experiment hundred times which reinitialized the random
generator with a new seed value." — §IV.  A campaign sweeps one
experimental knob (injection rate, dynamic period, faulty-line count),
repeating each point with fresh seeds, and returns the accuracy samples
for aggregation.

Execution is delegated to :mod:`repro.core.engine`: the sweep grid is
flattened into independent jobs with pre-generated fault plans and run
through a pluggable executor (``serial`` or ``multiprocessing``) on a
float or bit-packed inference backend.  All four combinations are
bit-identical under fixed seeds.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..nn.model import Sequential
from .engine import CampaignEvaluator, build_jobs, get_executor
from .faults import FaultSpec

__all__ = ["SweepResult", "FaultCampaign"]


@dataclass
class SweepResult:
    """Accuracy samples of one sweep.

    ``accuracies[i, j]`` is the accuracy at sweep point ``xs[i]`` in
    repetition ``j``.
    """

    label: str
    xs: list[float]
    accuracies: np.ndarray
    baseline: float = float("nan")
    meta: dict = field(default_factory=dict)

    def mean(self) -> np.ndarray:
        return self.accuracies.mean(axis=1)

    def std(self) -> np.ndarray:
        return self.accuracies.std(axis=1)

    def min(self) -> np.ndarray:
        return self.accuracies.min(axis=1)

    def max(self) -> np.ndarray:
        return self.accuracies.max(axis=1)

    def as_rows(self) -> list[tuple[float, float, float]]:
        """(x, mean, std) rows — the series a paper figure plots."""
        return [(x, float(m), float(s))
                for x, m, s in zip(self.xs, self.mean(), self.std())]

    def __repr__(self):
        points = ", ".join(f"{x:g}:{m:.3f}" for x, m in zip(self.xs, self.mean()))
        return f"<SweepResult {self.label} [{points}]>"


class FaultCampaign:
    """Runs accuracy-vs-fault sweeps on a fixed model and dataset.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"multiprocessing"``, or an executor
        object with a ``run(jobs, evaluator)`` method.
    n_jobs:
        Worker count for the multiprocessing executor; ``None`` means
        ``os.cpu_count()``.
    backend:
        ``"float"`` or ``"packed"`` — see :mod:`repro.binary.layers`.
    """

    def __init__(self, model: Sequential, x_test: np.ndarray, y_test: np.ndarray,
                 rows: int = 40, cols: int = 10, batch_size: int = 256,
                 continue_time_across_layers: bool = True,
                 executor: str | object = "serial", n_jobs: int | None = None,
                 backend: str = "float"):
        self.model = model
        self.x_test = x_test
        self.y_test = y_test
        self.rows = rows
        self.cols = cols
        self.batch_size = batch_size
        self.continue_time = continue_time_across_layers
        self.backend = backend
        self._executor = get_executor(executor, n_jobs)
        self._evaluator = CampaignEvaluator(
            model, x_test, y_test, batch_size=batch_size,
            continue_time_across_layers=continue_time_across_layers,
            backend=backend)

    def baseline_accuracy(self) -> float:
        """Fault-free accuracy (FLIM with no faults == vanilla).

        Computed once per campaign — the model and test set are fixed at
        construction — and reused by every :meth:`run` (recomputed only if
        the model's weights change in place).
        """
        return self._evaluator.baseline()

    def clear_caches(self) -> None:
        """Release memoized evaluation state (baseline, prefix activations,
        layer input/kernel caches) — e.g. before discarding the campaign
        in a long-lived process."""
        self._evaluator.clear_caches()

    def run(self, spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
            xs: Sequence[float], repeats: int = 10, seed: int = 0,
            layers: list[str] | None = None, label: str = "sweep") -> SweepResult:
        """Sweep ``xs`` through ``spec_factory``, re-seeding per repetition.

        ``spec_factory(x)`` builds the fault spec(s) for sweep value ``x``
        (e.g. ``lambda rate: FaultSpec.bitflip(rate)``).  ``layers``
        restricts injection to named mapped layers (the paper's per-layer
        resilience study); ``None`` injects into all mapped layers (the
        "combined" curve).
        """
        jobs = build_jobs(self.model, spec_factory, xs, repeats, seed,
                          self.rows, self.cols, layers)
        accuracies = np.zeros((len(xs), repeats), dtype=np.float64)
        for i, j, accuracy in self._executor.run(jobs, self._evaluator):
            accuracies[i, j] = accuracy
        return SweepResult(label=label, xs=list(xs), accuracies=accuracies,
                           baseline=self.baseline_accuracy(),
                           meta={"rows": self.rows, "cols": self.cols,
                                 "repeats": repeats, "layers": layers,
                                 "executor": getattr(self._executor, "name",
                                                     type(self._executor).__name__),
                                 "backend": self.backend})
