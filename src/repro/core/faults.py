"""Fault model vocabulary of the FLIM platform.

The paper injects faults related to time-dependent deviations:

* **bit-flips** (static and dynamic) — transient faults caused by
  environmental variations; a dynamic fault is sensitized every n-th XNOR
  operation (the DRAM-style model of the paper's [24]);
* **stuck-at faults** — permanent faults from temporal variation /
  end-of-life degradation;
* **faulty rows/columns** — structural crossbar faults, encoded (as in
  the paper) as bit-flip masks with entire rows or columns set.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["FaultType", "StuckPolarity", "FaultSpec", "Semantics",
           "SpatialMode"]


class FaultType(Enum):
    """The fault classes FLIM injects."""

    BITFLIP = "bitflip"
    STUCK_AT = "stuck_at"
    FAULTY_ROWS = "faulty_rows"
    FAULTY_COLUMNS = "faulty_columns"


class StuckPolarity(Enum):
    """Which level a stuck cell is frozen at.

    ``RANDOM`` draws a polarity per faulty cell — the paper's default, as
    end-of-life cells stick at either resistive state.
    """

    STUCK_AT_0 = 0   # frozen at logic 0 (-1 in the bipolar domain)
    STUCK_AT_1 = 1   # frozen at logic 1 (+1 in the bipolar domain)
    RANDOM = 2


class SpatialMode(Enum):
    """Spatial distribution of rate-based fault masks.

    The paper draws faulty cells i.i.d. uniform over the crossbar
    (``IID``).  Real device populations are often *spatially correlated*
    — process variation clusters, shared row drivers — and correlated
    masks behave qualitatively differently from i.i.d. ones at the same
    injection rate (arXiv:2302.09902).  The injection rate still sets the
    exact number of faulty cells in every mode; only their placement
    changes.

    ``CLUSTERED``  — faults grow in compact neighbourhoods of
    ``cluster_size`` cells around random seed cells.

    ``ROW_BURST``  — faults fill bursts of ``cluster_size`` consecutive
    rows (a failing row driver takes its neighbours with it).
    """

    IID = "iid"
    CLUSTERED = "clustered"
    ROW_BURST = "row_burst"


class Semantics(Enum):
    """Abstraction level at which a fault mask is applied (DESIGN.md §3).

    ``OUTPUT``  — FLIM's fast path: masks act on the layer's feature map
    (flip/force output elements).  This is the paper's contribution: the
    speed-for-accuracy trade against device-level simulation.

    ``WEIGHT``  — masks act on the binarized kernel bits resident in the
    crossbar; a stuck weight bit persists for every XNOR reusing the cell.
    Optional semantics for stuck-at faults (frozen operand instead of a
    dead gate).

    ``PRODUCT`` — device-true reference: masks corrupt individual XNOR
    products via the tile schedule.  Slow; used for verification and the
    accuracy-ablation benchmark.
    """

    OUTPUT = "output"
    WEIGHT = "weight"
    PRODUCT = "product"


_DEFAULT_SEMANTICS = {
    FaultType.BITFLIP: Semantics.OUTPUT,
    FaultType.FAULTY_ROWS: Semantics.OUTPUT,
    FaultType.FAULTY_COLUMNS: Semantics.OUTPUT,
    # a dead gate's output line rails independent of the data — the
    # OUTPUT-level freeze is the canonical (and strongest) reading;
    # WEIGHT-level (frozen stored operand) remains available as an option
    FaultType.STUCK_AT: Semantics.OUTPUT,
}


@dataclass(frozen=True)
class FaultSpec:
    """A single fault-injection directive for the Fault Generator.

    Parameters
    ----------
    kind:
        Fault class to inject.
    rate:
        Injection rate — fraction of crossbar cells set in the mask
        (bit-flip / stuck-at).  "The injection rate specifies the number
        of elements within the array set to 1" (§III).
    count:
        Number of faulty rows/columns (structural faults).
    period:
        Dynamic-fault period n: the fault is sensitized every n-th XNOR
        operation.  0 or 1 means static (every operation).
    polarity:
        Stuck level for stuck-at faults.
    semantics:
        Mask-application level; ``None`` selects the canonical default
        per fault kind — OUTPUT level for every kind, including stuck-at
        (a dead gate rails its output line regardless of the stored
        operand); pass ``Semantics.WEIGHT`` explicitly for the
        frozen-stored-operand reading, or ``Semantics.PRODUCT`` for the
        device-true per-XNOR reference path.
    spatial:
        Placement distribution of rate-based masks (bit-flip / stuck-at):
        i.i.d. uniform (the paper's default), clustered neighbourhoods,
        or row bursts — see :class:`SpatialMode`.
    cluster_size:
        Cells per cluster (``CLUSTERED``) or rows per burst
        (``ROW_BURST``); must be ≥ 1 for correlated modes and 0 for IID.
    layers:
        Restrict this spec to the named mapped layers; ``None`` (default)
        applies it to every mapped layer the generator visits.  Scenario
        compilation uses this to compose clauses targeting different
        layer subsets into one flat spec list.
    """

    kind: FaultType
    rate: float = 0.0
    count: int = 0
    period: int = 0
    polarity: StuckPolarity = StuckPolarity.RANDOM
    semantics: Semantics | None = field(default=None)
    spatial: SpatialMode = SpatialMode.IID
    cluster_size: int = 0
    layers: tuple[str, ...] | None = None

    def __post_init__(self):
        try:
            if isinstance(self.rate, str):
                raise TypeError
            rate = float(self.rate)
        except (TypeError, ValueError):
            raise ValueError(f"rate must be a number, got {self.rate!r}") from None
        if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        for name in ("count", "period", "cluster_size"):
            value = getattr(self, name)
            try:
                object.__setattr__(self, name, operator.index(value))
            except TypeError:
                raise ValueError(
                    f"{name} must be an integer, got {value!r}") from None
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.period < 0:
            raise ValueError(
                "period must be non-negative (0/1 = static, n >= 2 = "
                "sensitized every n-th XNOR operation)")
        # coerce enum-valued fields passed as their string values, so a
        # spatial='clustered' typo-path can never silently fall back to
        # an i.i.d. mask downstream
        for name, enum in (("kind", FaultType), ("spatial", SpatialMode)):
            try:
                object.__setattr__(self, name, enum(getattr(self, name)))
            except ValueError:
                raise ValueError(
                    f"{name} must be one of "
                    f"{[member.value for member in enum]}, "
                    f"got {getattr(self, name)!r}") from None
        if self.semantics is not None:
            try:
                object.__setattr__(self, "semantics", Semantics(self.semantics))
            except ValueError:
                raise ValueError(
                    f"semantics must be one of "
                    f"{[member.value for member in Semantics]}, "
                    f"got {self.semantics!r}") from None
        if self.kind in (FaultType.FAULTY_ROWS, FaultType.FAULTY_COLUMNS):
            if self.rate:
                raise ValueError("row/column faults are specified by count, not rate")
            if self.spatial != SpatialMode.IID:
                raise ValueError("spatial modes apply to rate-based faults; "
                                 "line faults are already whole-line events")
        if self.kind == FaultType.STUCK_AT and self.period:
            raise ValueError("stuck-at faults are permanent; period applies to bit-flips")
        if self.spatial == SpatialMode.IID:
            if self.cluster_size:
                raise ValueError("cluster_size applies to clustered/row-burst "
                                 "masks; IID placement takes none")
        elif self.cluster_size < 1:
            raise ValueError(f"{self.spatial.value} placement needs "
                             f"cluster_size >= 1, got {self.cluster_size}")
        if self.layers is not None:
            if (isinstance(self.layers, str)
                    or not all(isinstance(name, str) for name in self.layers)):
                raise ValueError("layers must be a sequence of layer names")
            object.__setattr__(self, "layers", tuple(self.layers))
            if not self.layers:
                raise ValueError("layers must name at least one layer "
                                 "(use None for all mapped layers)")

    @property
    def effective_semantics(self) -> Semantics:
        if self.semantics is not None:
            return self.semantics
        return _DEFAULT_SEMANTICS[self.kind]

    @staticmethod
    def bitflip(rate: float, period: int = 0,
                semantics: Semantics | None = None,
                spatial: SpatialMode = SpatialMode.IID,
                cluster_size: int = 0,
                layers: tuple[str, ...] | None = None) -> "FaultSpec":
        """Transient bit-flips at a given injection rate."""
        return FaultSpec(FaultType.BITFLIP, rate=rate, period=period,
                         semantics=semantics, spatial=spatial,
                         cluster_size=cluster_size, layers=layers)

    @staticmethod
    def stuck_at(rate: float, polarity: StuckPolarity = StuckPolarity.RANDOM,
                 semantics: Semantics | None = None,
                 spatial: SpatialMode = SpatialMode.IID,
                 cluster_size: int = 0,
                 layers: tuple[str, ...] | None = None) -> "FaultSpec":
        """Permanent stuck-at faults at a given injection rate."""
        return FaultSpec(FaultType.STUCK_AT, rate=rate, polarity=polarity,
                         semantics=semantics, spatial=spatial,
                         cluster_size=cluster_size, layers=layers)

    @staticmethod
    def faulty_rows(count: int) -> "FaultSpec":
        """``count`` entire crossbar rows marked faulty."""
        return FaultSpec(FaultType.FAULTY_ROWS, count=count)

    @staticmethod
    def faulty_columns(count: int) -> "FaultSpec":
        """``count`` entire crossbar columns marked faulty."""
        return FaultSpec(FaultType.FAULTY_COLUMNS, count=count)
