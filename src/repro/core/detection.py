"""Fault detection and mitigation strategies.

The paper's conclusion: "to guarantee the development of high-reliability
emerging applications, it is mandatory to adopt not only fault-tolerant
approaches but also strategies able to monitor and/or mitigate
applications' degradation during their lifetime."  This module implements
three such strategies on top of the platform:

* :func:`march_test` — an online march-style test detecting stuck gates on
  a crossbar (write/read complementary patterns);
* :func:`remap_columns` — mitigation by output-channel remapping: park
  faulty crossbar columns on unused column slots whenever the layer has
  fewer channels than columns, or swap the most-loaded channels away from
  the faultiest columns;
* :func:`majority_vote_predict` — modular redundancy: run inference under
  several independent crossbar assignments and take the per-sample
  majority vote.
"""

from __future__ import annotations

import numpy as np

from ..lim.crossbar import Crossbar
from ..nn.model import Sequential
from .generator import FaultPlan
from .injector import FaultInjector
from .masks import LayerMasks

__all__ = ["march_test", "masks_from_detection", "remap_columns",
           "majority_vote_predict"]


def march_test(crossbar: Crossbar) -> dict[str, list[tuple[int, int]]]:
    """March-style online test for stuck gates.

    Drives the crossbar with complementary XNOR patterns whose expected
    outputs are all-1 then all-0, and reports gates that failed each
    phase.  A gate stuck at 1 passes the all-1 phase but fails the all-0
    phase (and vice versa); a healthy gate passes both.

    Returns ``{"stuck_at_1": [...], "stuck_at_0": [...]}`` gate
    coordinates.  Transient (bit-flip) faults may also be caught if they
    fire during the test — exactly like a real online test.
    """
    shape = (crossbar.rows, crossbar.cols)
    ones = np.ones(shape, dtype=np.uint8)
    zeros = np.zeros(shape, dtype=np.uint8)

    # phase 1: XNOR(1, 1) = 1 everywhere -> cells reading 0 are stuck low
    got_high = crossbar.compute_xnor(ones, ones)
    stuck_low = np.argwhere(got_high == 0)
    # phase 2: XNOR(1, 0) = 0 everywhere -> cells reading 1 are stuck high
    got_low = crossbar.compute_xnor(ones, zeros)
    stuck_high = np.argwhere(got_low == 1)
    return {
        "stuck_at_1": [tuple(map(int, rc)) for rc in stuck_high],
        "stuck_at_0": [tuple(map(int, rc)) for rc in stuck_low],
    }


def masks_from_detection(crossbar: Crossbar,
                         detection: dict[str, list[tuple[int, int]]]
                         ) -> LayerMasks:
    """Convert march-test results into an injectable fault-mask plane.

    This closes the monitoring loop: detected hardware faults become a
    FLIM plan whose accuracy impact can be assessed *before* deploying
    the degraded part.
    """
    masks = LayerMasks(rows=crossbar.rows, cols=crossbar.cols)
    for row, col in detection["stuck_at_1"]:
        masks.stuck_mask[row, col] = True
        masks.stuck_values[row, col] = 1
    for row, col in detection["stuck_at_0"]:
        masks.stuck_mask[row, col] = True
        masks.stuck_values[row, col] = 0
    return masks


def remap_columns(masks: LayerMasks, filters: int) -> np.ndarray:
    """Mitigation: permute the channel→column assignment around faults.

    Crossbar column ``c`` serves output channels ``f ≡ c (mod cols)``;
    when ``filters < cols`` some columns are spare.  The returned
    permutation ``perm`` (length ``cols``) reorders columns so the
    faultiest ones land on spare (or least-exposed) slots.  Columns are
    ranked by their fault load (stuck + flip cells); the cleanest columns
    are assigned to the ``filters`` active slots.
    """
    if filters <= 0:
        raise ValueError("filters must be positive")
    fault_load = (masks.stuck_mask.sum(axis=0)
                  + masks.flip_mask.sum(axis=0)).astype(int)
    cols = masks.cols
    active_slots = min(filters, cols)
    order = np.argsort(fault_load, kind="stable")
    perm = np.empty(cols, dtype=int)
    # cleanest columns take the active slots, faultiest go to spares
    perm[:active_slots] = order[:active_slots]
    perm[active_slots:] = order[active_slots:]
    return perm


def apply_column_permutation(masks: LayerMasks, perm: np.ndarray) -> LayerMasks:
    """The mask planes as seen through a column permutation."""
    return LayerMasks(
        rows=masks.rows, cols=masks.cols,
        flip_mask=masks.flip_mask[:, perm].copy(),
        flip_period=masks.flip_period,
        stuck_mask=masks.stuck_mask[:, perm].copy(),
        stuck_values=masks.stuck_values[:, perm].copy(),
        flip_semantics=masks.flip_semantics,
        stuck_semantics=masks.stuck_semantics)


def majority_vote_predict(model: Sequential, x: np.ndarray,
                          plans: list[FaultPlan],
                          batch_size: int = 256) -> np.ndarray:
    """Modular-redundancy inference: majority vote across fault plans.

    Each plan represents an independent hardware assignment (e.g. three
    different crossbar banks with different defects).  Predictions are
    taken per plan and combined by per-sample majority; ties resolve to
    the first plan's prediction.
    """
    if not plans:
        raise ValueError("need at least one plan")
    injector = FaultInjector()
    votes = []
    for plan in plans:
        with injector.injecting(model, plan):
            logits = model.predict(x, batch_size=batch_size)
        votes.append(logits.argmax(axis=-1))
    stacked = np.stack(votes, axis=0)        # (plans, samples)
    result = votes[0].copy()
    for sample in range(stacked.shape[1]):
        values, counts = np.unique(stacked[:, sample], return_counts=True)
        best = counts.max()
        winners = values[counts == best]
        if votes[0][sample] not in winners:
            result[sample] = winners[0]
    return result
