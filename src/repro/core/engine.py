"""Campaign execution engine: the repeat×sweep grid as independent jobs.

The paper's methodology is brute-force statistical — every accuracy curve
is a sweep of fault rates, each point repeated with fresh seeds, each
repetition a full test-set inference (§IV).  This module turns that grid
into a fast, embarrassingly parallel workload.

Job model
---------
A sweep of ``len(xs)`` points × ``repeats`` repetitions flattens into
``len(xs) * repeats`` independent :class:`CampaignJob` values.  Each job
carries its grid coordinates and a *pre-generated* fault plan — the
expensive mask distribution/mapping runs once, up front, in the parent
process (:func:`build_jobs`), never inside the evaluation loop.  Executors
only evaluate: attach the plan, run the test set, detach, report accuracy.

Seeding scheme
--------------
Job plans are drawn from :meth:`FaultGenerator.job_seed`
(``base_seed + 7919*repeat + 104729*point``), a pure function of the grid
coordinates.  Because plans are generated before any executor runs, every
executor is *bit-identical*: same seeds → same plans → same accuracies,
regardless of scheduling order.

Redundant-work elimination
--------------------------
:class:`CampaignEvaluator` owns every cache a campaign can legally share:

* the fault-free **baseline** accuracy is computed once per evaluator;
* jobs whose plan contains no faulty cell (e.g. the rate-0 sweep point)
  reuse the baseline outright — attaching an all-clear plan wires no
  hooks, so the evaluation would be the baseline bit-for-bit anyway;
* the **fault-free prefix** of the model (every layer before the first
  layer a plan can touch) is evaluated once and its activations are
  cached, batch by batch, as read-only arrays; each job then only runs
  the suffix.  For LeNet this skips the unmapped CMOS conv0 + pooling
  stack — roughly half the inference — in every repetition;
* the read-only activation batches are *identically the same objects*
  across jobs, which arms the quantized layers' input-representation
  caches (im2col / bit-packing reuse, see :mod:`repro.binary.layers`).

The evaluator takes a **defensive snapshot** of the test set at
construction: mutating the caller's arrays afterwards can never desync the
cached prefix activations from the data they were computed on.

Packed vs float execution
-------------------------
``backend="packed"`` switches the quantized layers to the XNOR/popcount
fast path on packed uint64 words — the integer arithmetic the LIM
crossbar natively performs.  The two backends are bit-identical (±1 sums
are exact in float32); layers fall back to float automatically wherever
packed semantics cannot express the computation (product-level hooks,
non-strictly-binary quantizers, ``same`` padding, training).

Executors
---------
``serial``
    In-process loop.  Shares the caller's evaluator and all its caches.
``multiprocessing``
    A process pool (default ``n_jobs=os.cpu_count()``, overridable with
    the ``REPRO_N_JOBS`` environment variable); each worker builds one
    evaluator in its initializer and reuses it for every job it is
    handed.  The test set is pickled into each worker once.
``shared_memory``
    Same pool, but the test set **and the parent's cached fault-free
    prefix activation batches** (plus the first suffix layer's derived
    im2col/packed input representations) live in
    :mod:`multiprocessing.shared_memory` planes that workers attach
    **zero-copy** — the per-worker payload shrinks to the model plus a
    few block descriptors, independent of dataset size, and no worker
    recomputes the prefix.  Planes are managed by a
    :class:`SharedPlaneRegistry`: fingerprinted against data + weights
    (stale planes are refused like mismatched journals), cached across
    ``run`` calls of one campaign, and unlinked on failure, on
    :meth:`FaultCampaign.close`, or at interpreter exit.

Both pool executors *stream* results back (``imap_unordered``) through
:meth:`run_iter`, so callers can journal/report progress as cells finish,
and both preserve the caller's warm layer caches: the model's transient
state is stripped only for the duration of worker start-up and restored
afterwards.

Batch-level parallelism
-----------------------
When the job grid is smaller than the pool (e.g. a single-point sweep on
a many-core machine), the pool executors split *within* each evaluation:
test batches are sharded across workers and the per-shard
``(correct, total)`` counts reduced in the parent.  Integer count
reduction keeps the accuracy bit-identical to the unsharded division.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import warnings
import weakref
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..nn.model import Sequential
from .faults import FaultSpec
from .generator import FaultGenerator, FaultPlan, mapped_layers
from .injector import FaultInjector
from .resilience import (ExecutorDegraded, PoolSupervisor, RetryPolicy,
                         SupervisorGaveUp, new_stats, note_stats,
                         supervised_serial)

__all__ = [
    "CampaignJob",
    "CampaignEvaluator",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "SharedMemoryExecutor",
    "SharedPlaneRegistry",
    "build_jobs",
    "get_executor",
    "plan_has_faults",
]

#: default byte cap for one evaluator's derived-input-representation
#: cache *per quantized layer* (overridable per campaign:
#: ``FaultCampaign(cache_bytes=...)`` or the CLI ``--cache-cap``).  In
#: practice only the prefix-split layer ever sees cacheable (read-only)
#: inputs, so the per-layer cap is the effective campaign footprint.
DEFAULT_INPUT_CACHE_BYTES = 256 << 20

#: job result: (point index, repeat index, accuracy)
JobResult = tuple[int, int, float]


def fingerprint_data_and_weights(x_test: np.ndarray, y_test: np.ndarray,
                                 model: Sequential) -> "hashlib._Hash":
    """SHA-1 digest of a test-set snapshot + model weights.

    The single source of truth for both staleness guards — journal
    resume (:meth:`FaultCampaign._fingerprint`) and shared-memory plane
    attachment (:meth:`CampaignEvaluator.plane_fingerprint`) — so the
    two checks can never drift apart in what they cover.  Returns the
    open hash object; callers append their context-specific fields
    (grid geometry, backend, timing) before ``hexdigest()``.
    """
    digest = hashlib.sha1()
    for array in (x_test, y_test):
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    for key, value in sorted(model.state_dict().items()):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest


@dataclass(frozen=True)
class CampaignJob:
    """One (sweep point, repetition) cell of the campaign grid."""

    point_index: int
    repeat_index: int
    x_value: float
    seed: int
    plan: FaultPlan


def plan_has_faults(plan: FaultPlan) -> bool:
    """Whether any mask in the plan marks at least one faulty cell."""
    return any(masks.has_faults for masks in plan.values())


def build_jobs(model: Sequential,
               spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
               xs: Sequence[float], repeats: int, seed: int,
               rows: int, cols: int,
               layers: list[str] | None = None,
               skip: set[tuple[int, int]] | None = None) -> list[CampaignJob]:
    """Flatten the sweep grid into jobs with pre-generated fault plans.

    Mask generation happens here — outside the evaluation loop, before any
    executor starts — so scheduling order can never affect the plans.
    ``skip`` omits (point, repeat) cells (e.g. already-journaled ones)
    without disturbing the remaining cells' plans: each job's seed is a
    pure function of its own grid coordinates.
    """
    jobs: list[CampaignJob] = []
    for i, x_value in enumerate(xs):
        if skip is not None and all((i, j) in skip for j in range(repeats)):
            continue
        specs = spec_factory(x_value)
        for j in range(repeats):
            if skip is not None and (i, j) in skip:
                continue
            job_seed = FaultGenerator.job_seed(seed, i, j)
            generator = FaultGenerator(specs, rows=rows, cols=cols,
                                       seed=job_seed)
            jobs.append(CampaignJob(
                point_index=i, repeat_index=j, x_value=x_value,
                seed=job_seed, plan=generator.generate(model, layers=layers)))
    return jobs


class CampaignEvaluator:
    """Evaluates fault plans on a fixed model + test set, with caching.

    The evaluator snapshots ``x_test``/``y_test`` at construction
    (``copy_data=True``, the default) and marks the snapshot read-only, so
    the layer-level input caches may key on identity and later caller-side
    mutations cannot silently serve stale prefix activations.  Workers
    attaching process-private or shared-memory arrays pass
    ``copy_data=False`` to stay zero-copy; such arrays must never be
    written while the evaluator lives.

    Cache invalidation keys on ``model.weights_version``, which training
    steps and ``load_state_dict`` bump.  Code that mutates
    ``layer.params[...]`` directly, bypassing those paths, must bump
    ``model.weights_version`` (or call :meth:`clear_caches`) itself —
    the evaluator cannot observe raw in-place array writes.
    """

    def __init__(self, model: Sequential, x_test: np.ndarray,
                 y_test: np.ndarray, batch_size: int = 256,
                 continue_time_across_layers: bool = True,
                 backend: str = "float", copy_data: bool = True,
                 cache_bytes: int | None = None):
        if backend not in ("float", "packed"):
            raise ValueError(f"unknown execution backend {backend!r}; "
                             "use 'float' or 'packed'")
        self.model = model
        self.batch_size = batch_size
        self.backend = backend
        #: per-layer byte cap for this evaluator's share of the derived
        #: input-representation caches (see repro.binary.layers)
        self.cache_bytes = (DEFAULT_INPUT_CACHE_BYTES if cache_bytes is None
                            else cache_bytes)
        self.x_test = np.array(x_test) if copy_data else x_test.view()
        self.x_test.flags.writeable = False
        self.y_test = np.array(y_test) if copy_data else y_test.view()
        self.y_test.flags.writeable = False
        self.injector = FaultInjector(continue_time_across_layers)
        self._baseline: float | None = None
        #: (split, shard, n_shards) -> list of (activation batch, label batch)
        self._suffix_batches: dict[tuple[int, int, int],
                                   list[tuple[np.ndarray, np.ndarray]]] = {}
        self._weights_version = getattr(model, "weights_version", None)
        #: budget/statistics token identifying this evaluator in the
        #: layers' input caches without keeping it alive
        self._cache_token = weakref.ref(self)
        self._plane_fingerprint: str | None = None
        #: how many times a prefix was evaluated from ``x_test`` from
        #: scratch (0 on workers that adopted published prefix planes)
        self.prefix_computations = 0

    def _check_weights_version(self) -> None:
        """Drop caches when the model's parameters changed in place."""
        version = getattr(self.model, "weights_version", None)
        if version != self._weights_version:
            self.clear_caches()
            self._weights_version = version

    def clear_caches(self) -> None:
        """Release every memoized evaluation artifact: the baseline, the
        prefix activation batches, and the layers' input/kernel caches.

        This is the aggressive, whole-model wipe (other evaluators
        sharing the model lose their cache entries too); use
        :meth:`release_owned` to drop only this evaluator's share.
        """
        self._baseline = None
        self._suffix_batches.clear()
        self._plane_fingerprint = None
        _strip_transient_state(self.model)

    def release_owned(self) -> None:
        """Drop this evaluator's own memoized state — the baseline, the
        prefix activation batches, and *its* entries/budget in the
        layers' input caches — without touching other evaluators' cached
        representations or the layers' kernel caches."""
        self._baseline = None
        self._suffix_batches.clear()
        self._plane_fingerprint = None
        for layer in self.model.all_layers():
            cache = getattr(layer, "_input_cache", None)
            if hasattr(cache, "drop_owner"):
                cache.drop_owner(self._cache_token)

    @contextmanager
    def _backend_scope(self):
        """Run with this evaluator's backend, restore the previous one after.

        The campaign must not permanently re-mode a shared model — two
        campaigns with different backends on one model would otherwise
        silently override each other.
        """
        previous = [(layer, layer.execution_backend)
                    for layer in self.model.all_layers()
                    if hasattr(layer, "execution_backend")]
        self.model.set_execution_backend(self.backend)
        try:
            yield
        finally:
            for layer, saved in previous:
                layer.execution_backend = saved

    @contextmanager
    def _evaluation_scope(self):
        """Backend + cache-ownership scope for one evaluation.

        Besides selecting the execution backend, the scope registers this
        evaluator as the budget owner of every layer's input cache, sized
        to the campaign: enough slots for all test batches (instead of the
        ad-hoc 8-slot default) under the ``cache_bytes`` cap.  Ownership
        is restored afterwards, so interleaved campaigns on one model
        charge their own budgets and never evict each other's entries.
        """
        n_batches = math.ceil(len(self.x_test) / self.batch_size)
        owned: list[tuple] = []
        for layer in self.model.all_layers():
            cache = getattr(layer, "_input_cache", None)
            if hasattr(cache, "configure"):
                cache.configure(self._cache_token,
                                slots=max(8, 2 * n_batches),
                                max_bytes=self.cache_bytes)
                owned.append((layer, layer._cache_owner))
                layer._cache_owner = self._cache_token
        try:
            with self._backend_scope():
                yield
        finally:
            for layer, saved in owned:
                layer._cache_owner = saved

    def input_cache_stats(self) -> dict:
        """Aggregate hit/miss statistics of this evaluator's share of the
        layers' input-representation caches.

        Returns
        -------
        dict
            ``{"hits", "misses", "entries", "bytes", "hit_rate"}`` summed
            over all layers; ``hit_rate`` is ``hits / (hits + misses)``
            (0.0 before any lookup).  Only lookups charged to this
            evaluator are counted — concurrent campaigns on the same
            model report independent statistics.
        """
        totals = {"hits": 0, "misses": 0, "entries": 0, "bytes": 0}
        for layer in self.model.all_layers():
            cache = getattr(layer, "_input_cache", None)
            if hasattr(cache, "stats"):
                for key, value in cache.stats(self._cache_token).items():
                    if key in totals:
                        totals[key] += value
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals

    def plane_fingerprint(self) -> str:
        """Digest identifying the activation planes this evaluator would
        publish: test-set snapshot, model weights, batch geometry, backend
        and injection timing.  Attaching a plane published under any other
        fingerprint is refused (like resuming a mismatched journal)."""
        self._check_weights_version()
        if self._plane_fingerprint is None:
            digest = fingerprint_data_and_weights(self.x_test, self.y_test,
                                                  self.model)
            digest.update(f"{self.batch_size}|{self.backend}|"
                          f"{self.injector.continue_time_across_layers}"
                          .encode())
            self._plane_fingerprint = digest.hexdigest()
        return self._plane_fingerprint

    # -- prefix/suffix splitting ----------------------------------------
    def _split_for(self, layer_names) -> int:
        """Index of the first top-level layer whose subtree contains any of
        ``layer_names`` — everything before it is fault-free for sure."""
        names = set(layer_names)

        def contains(layer) -> bool:
            if layer.name in names:
                return True
            return any(contains(child) for child in layer.sub_layers())

        for index, layer in enumerate(self.model.layers):
            if contains(layer):
                return index
        return len(self.model.layers)

    def _baseline_split(self) -> int:
        """The deepest fault-free prefix any plan could share: everything
        before the first mapped layer."""
        mapped = [layer.name for layer in mapped_layers(self.model)]
        return self._split_for(mapped) if mapped else 0

    def _batches_for(self, split: int, shard: int = 0, n_shards: int = 1
                     ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-batch activations after ``layers[:split]``, computed once.

        Batch boundaries match :meth:`Sequential.evaluate` regardless of
        sharding — a shard takes every ``n_shards``-th *global* batch — so
        suffix evaluation is arithmetic-for-arithmetic the full forward
        pass and shard counts sum to the unsharded counts exactly.

        Cached splits are reused hierarchically before anything runs from
        scratch: a shard view slices the full split's batch list, and a
        deeper split continues forward from the deepest cached shallower
        split (e.g. from adopted shared-memory prefix planes) — both are
        the same per-batch arithmetic, so results stay bit-identical.
        """
        key = (split, shard, n_shards)
        cached = self._suffix_batches.get(key)
        if cached is not None:
            return cached
        full = self._suffix_batches.get((split, 0, 1))
        if full is not None:
            # a shard is every n_shards-th global batch of the full list
            batches = full[shard::n_shards]
        else:
            batches = self._compute_batches(split, shard, n_shards)
        self._suffix_batches[key] = batches
        return batches

    def _compute_batches(self, split: int, shard: int, n_shards: int
                         ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Evaluate prefix activations, continuing from the deepest cached
        shallower split when one exists (else from ``x_test``)."""
        base_split, base = -1, None
        for (s, sh, n), value in self._suffix_batches.items():
            if sh == 0 and n == 1 and base_split < s < split:
                base_split, base = s, value
        batches: list[tuple[np.ndarray, np.ndarray]] = []
        if base is not None:
            layers = self.model.layers[base_split:split]
            for index, (z, labels) in enumerate(base):
                if index % n_shards != shard:
                    continue
                for layer in layers:
                    z = layer.forward(z, training=False)
                z = np.ascontiguousarray(z)
                z.flags.writeable = False
                batches.append((z, labels))
            return batches
        self.prefix_computations += 1
        prefix = self.model.layers[:split]
        n = len(self.x_test)
        for index, start in enumerate(range(0, n, self.batch_size)):
            if index % n_shards != shard:
                continue
            z = self.x_test[start:start + self.batch_size]
            for layer in prefix:
                z = layer.forward(z, training=False)
            z = np.ascontiguousarray(z)
            z.flags.writeable = False
            batches.append((z, self.y_test[start:start + self.batch_size]))
        return batches

    def adopt_prefix(self, split: int,
                     batches: list[tuple[np.ndarray, np.ndarray]],
                     reps: list[tuple[str, object]] | None = None) -> None:
        """Install externally computed fault-free prefix activations.

        Pool workers call this with activation batches attached from the
        parent's shared-memory planes, eliminating the once-per-worker
        prefix recomputation.

        Parameters
        ----------
        split : int
            Top-level layer index the activations were computed up to
            (the publisher's :meth:`_baseline_split`).
        batches : list of (ndarray, ndarray)
            One ``(activations, labels)`` pair per *global* test batch,
            in batch order; the activation arrays must be read-only.
        reps : list of (str, object), optional
            The derived input representation (``"cols"`` im2col matrix or
            ``"packed"`` uint64 words) of each batch for
            ``model.layers[split]``, pre-seeding that layer's input cache
            so even the one-time im2col/packing cost is shared.

        The caller is responsible for the batches matching this
        evaluator's data and weights — plane publishers enforce that with
        the :meth:`plane_fingerprint` check at attach time.
        """
        self._check_weights_version()
        batches = list(batches)
        self._suffix_batches[(split, 0, 1)] = batches
        if not reps or split >= len(self.model.layers):
            return
        layer = self.model.layers[split]
        cache = getattr(layer, "_input_cache", None)
        if not hasattr(cache, "configure"):
            return
        n_batches = math.ceil(len(self.x_test) / self.batch_size)
        cache.configure(self._cache_token, slots=max(8, 2 * n_batches),
                        max_bytes=self.cache_bytes)
        for (z, _), (tag, value) in zip(batches, reps):
            cache.put(tag, z, value, owner=self._cache_token)

    def _suffix_counts(self, split: int, shard: int = 0, n_shards: int = 1
                       ) -> tuple[int, int]:
        suffix = self.model.layers[split:]
        correct = 0
        total = 0
        for z, labels in self._batches_for(split, shard, n_shards):
            out = z
            for layer in suffix:
                out = layer.forward(out, training=False)
            correct += int((out.argmax(axis=-1) == labels).sum())
            total += len(labels)
        return correct, total

    def _evaluate_suffix(self, split: int) -> float:
        correct, total = self._suffix_counts(split)
        return correct / total

    # -- public API ------------------------------------------------------
    def baseline(self) -> float:
        """Fault-free accuracy, computed once per evaluator (and again only
        if the model's weights change in place)."""
        self._check_weights_version()
        if self._baseline is None:
            with self._evaluation_scope():
                self._baseline = self._evaluate_suffix(self._baseline_split())
        return self._baseline

    def evaluate_plan(self, plan: FaultPlan) -> float:
        """Accuracy under ``plan`` — bit-identical to attaching the plan
        and running ``model.evaluate`` on the full test set."""
        if not plan_has_faults(plan):
            # an all-clear plan wires no hooks: the run is the baseline
            return self.baseline()
        self._check_weights_version()
        split = self._split_for(plan.keys())
        with self._evaluation_scope(), \
                self.injector.injecting(self.model, plan):
            return self._evaluate_suffix(split)

    def evaluate_plan_counts(self, plan: FaultPlan, shard: int = 0,
                             n_shards: int = 1) -> tuple[int, int]:
        """``(correct, total)`` under ``plan`` over every ``n_shards``-th
        test batch starting at ``shard``.

        The batch-level splitter reduces these integer counts across
        shards; ``sum(correct)/sum(total)`` equals :meth:`evaluate_plan`
        bit-for-bit because the per-batch arithmetic and the final
        division are unchanged.
        """
        self._check_weights_version()
        if not plan_has_faults(plan):
            with self._evaluation_scope():
                return self._suffix_counts(self._baseline_split(),
                                           shard, n_shards)
        split = self._split_for(plan.keys())
        with self._evaluation_scope(), \
                self.injector.injecting(self.model, plan):
            return self._suffix_counts(split, shard, n_shards)

    def run_job(self, job: CampaignJob) -> JobResult:
        return job.point_index, job.repeat_index, self.evaluate_plan(job.plan)


# -- shared-memory planes --------------------------------------------------

def _cleanup_warning(warn: Callable[[str], None] | None, message: str) -> None:
    """Surface a shared-memory cleanup failure: through the caller's
    ``on_warning`` hook when one is wired, else as a ResourceWarning —
    never silently (a swallowed unlink failure is a leaked ``psm_*``
    block until reboot)."""
    if warn is not None:
        warn(message)
    else:
        warnings.warn(message, ResourceWarning, stacklevel=3)


def _release_shared_blocks(blocks: list,
                           warn: Callable[[str], None] | None = None) -> None:
    """Close + unlink every owned block (idempotent; finalizer-safe).

    Failures are reported via ``warn``/ResourceWarning but never raised:
    this runs from ``finally`` blocks and weakref finalizers, where an
    exception would mask the original error (or abort interpreter
    shutdown) while still leaking the remaining blocks.
    """
    while blocks:
        shm = blocks.pop()
        try:
            shm.close()
        except Exception as error:
            _cleanup_warning(warn, "failed to close shared-memory block "
                                   f"{shm.name}: {error!r}")
        try:
            shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (double release, external cleanup)
        except Exception as error:
            _cleanup_warning(warn, "failed to unlink shared-memory block "
                                   f"{shm.name}: {error!r}; it may stay "
                                   "allocated until reboot")


class SharedPlaneRegistry:
    """Lifecycle manager for shared-memory *planes* — read-only ndarrays
    published once by a campaign parent and attached zero-copy by workers.

    Parent side: :meth:`publish` copies an array into a freshly created
    :class:`multiprocessing.shared_memory.SharedMemory` block and returns
    a picklable descriptor.  Planes stay alive across ``run`` calls of the
    same campaign (campaign-aware caching) until :meth:`release` — which a
    ``weakref`` finalizer also invokes at garbage collection or
    interpreter exit, so interrupted campaigns never leak ``psm_*``
    blocks.

    Worker side: :meth:`attach` maps a descriptor zero-copy after checking
    its fingerprint against the registry's expected one.  A plane
    published for different data/weights (a stale registry, a recycled
    descriptor) is refused with :class:`ValueError`, exactly like resuming
    a mismatched journal.
    """

    def __init__(self, fingerprint: str = ""):
        self.fingerprint = fingerprint
        self._owned: list = []      # blocks this registry created
        self._attached: list = []   # blocks this registry merely mapped
        #: cleanup-failure hook (``on_warning(message)``); ``None`` falls
        #: back to a ResourceWarning.  The finalizer below deliberately
        #: keeps the warnings-module default: binding a callback here
        #: would pin the callback's owner (typically the executor) alive.
        self.on_warning: Callable[[str], None] | None = None
        self._finalizer = weakref.finalize(self, _release_shared_blocks,
                                           self._owned)

    @property
    def nbytes(self) -> int:
        """Total bytes of the published (owned) blocks."""
        return sum(shm.size for shm in self._owned)

    @property
    def plane_count(self) -> int:
        return len(self._owned)

    def publish(self, array: np.ndarray, label: str = "") -> dict:
        """Copy ``array`` into a new shared-memory block.

        Returns
        -------
        dict
            Picklable descriptor (``name``, ``shape``, ``dtype``,
            ``fingerprint``, ``label``) for :meth:`attach`.
        """
        array = np.ascontiguousarray(array)
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, array.nbytes))
        self._owned.append(shm)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return {"name": shm.name, "shape": tuple(array.shape),
                "dtype": str(array.dtype), "fingerprint": self.fingerprint,
                "label": label}

    def attach(self, descriptor: dict) -> np.ndarray:
        """Attach one published plane zero-copy as a read-only array.

        Raises
        ------
        ValueError
            If the descriptor's fingerprint does not match this
            registry's — the plane belongs to different data/weights.
        """
        if descriptor.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"stale shared-memory plane {descriptor.get('label') or descriptor.get('name')!r}: "
                f"published for fingerprint {descriptor.get('fingerprint')!r}"
                f" but {self.fingerprint!r} expected; refusing to attach")
        from multiprocessing import shared_memory

        # NOTE: CPython < 3.13 registers attachments with the (fork-shared)
        # resource tracker as if this process owned the block (bpo-39959).
        # That is harmless here — registrations deduplicate and the parent
        # unregisters on unlink — and unregistering per worker would race
        # the parent into a double-unregister.
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        self._attached.append(shm)
        array = np.ndarray(tuple(descriptor["shape"]),
                           dtype=np.dtype(descriptor["dtype"]),
                           buffer=shm.buf)
        array.flags.writeable = False
        return array

    def discard(self, descriptor: dict) -> None:
        """Unlink one published plane early (e.g. a partially built set
        that will never be shipped).  Unknown names are ignored."""
        for shm in list(self._owned):
            if shm.name == descriptor.get("name"):
                self._owned.remove(shm)
                _release_shared_blocks([shm])
                return

    def release(self) -> None:
        """Close every mapping and unlink the owned blocks (idempotent).
        Cleanup failures are surfaced through :attr:`on_warning` (or a
        ResourceWarning), never swallowed and never raised."""
        for shm in self._attached:
            try:
                shm.close()
            except Exception as error:
                _cleanup_warning(self.on_warning,
                                 "failed to close attached shared-memory "
                                 f"block {shm.name}: {error!r}")
        self._attached.clear()
        _release_shared_blocks(self._owned, warn=self.on_warning)


# -- executors ------------------------------------------------------------

def _task_key(task) -> tuple[int, int]:
    """Grid coordinates of a task — a bare :class:`CampaignJob` or a
    ``(job, shard, n_shards)`` shard tuple."""
    job = task[0] if isinstance(task, tuple) else task
    return job.point_index, job.repeat_index


def _traced_evaluate(call, obs):
    """Wrap a per-task evaluation callable in an ``evaluate`` span.

    Only the in-process paths (serial executor, tiny-grid fallback,
    bottom ladder rung) are traced per cell — pool workers run in other
    processes and stay untraced; the parent's ``dispatch`` span covers
    them in aggregate.  Returns ``call`` unchanged when uninstrumented.
    """
    if obs is None:
        return call

    def traced(task, _call=call, _tracer=obs.tracer):
        point, repeat = _task_key(task)
        with _tracer.span("evaluate", point=point, repeat=repeat):
            return _call(task)
    return traced


class SerialExecutor:
    """In-process job loop; shares the caller's evaluator and caches.

    With a :class:`~repro.core.resilience.RetryPolicy` the loop retries
    failed jobs with backoff and quarantines poison jobs (their cells
    yield NaN) under the same contract as the pool executors; with
    ``policy=None`` (the default) the first failure raises.
    """

    name = "serial"

    def __init__(self, policy: RetryPolicy | None = None):
        self.policy = policy
        #: receives resilience event records (JobRetried/JobQuarantined)
        self.on_event: Callable | None = None
        #: per-run resilience summary (see resilience.new_stats)
        self.resilience: dict = new_stats()
        #: the observing run's repro.obs.Observability (campaigns set
        #: this for the duration of run(); None = uninstrumented)
        self.obs = None

    def _emit(self, record) -> None:
        note_stats(self.resilience, record)
        if self.on_event is not None:
            self.on_event(record)

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[JobResult]:
        """All ``(point, repeat, accuracy)`` results, in job order."""
        return list(self.run_iter(jobs, evaluator))

    def run_iter(self, jobs: Sequence[CampaignJob],
                 evaluator: CampaignEvaluator) -> Iterator[JobResult]:
        """Stream ``(point, repeat, accuracy)`` per job as it completes,
        in job order (pre-generated plans make order irrelevant to the
        values — only to the streaming sequence)."""
        self.resilience = new_stats()
        call = _traced_evaluate(evaluator.run_job, self.obs)
        for job, (kind, value) in supervised_serial(
                jobs, call, self.policy, key=_task_key,
                on_event=self._emit):
            if kind == "ok":
                yield value
            else:
                yield job.point_index, job.repeat_index, float("nan")


_WORKER_EVALUATOR: CampaignEvaluator | None = None
#: attached shared-memory blocks, kept referenced so the mappings survive
_WORKER_SHM: list = []


def _init_worker(payload: dict) -> None:
    """Pool initializer: build the worker-local evaluator exactly once."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CampaignEvaluator(
        payload["model"], payload["x_test"], payload["y_test"],
        batch_size=payload["batch_size"],
        continue_time_across_layers=payload["continue_time"],
        backend=payload["backend"],
        copy_data=False)  # the pickled arrays are already process-private


def _attach_rep(registry: SharedPlaneRegistry, descriptor: dict
                ) -> tuple[str, object]:
    """Rebuild one published input representation from its plane."""
    array = registry.attach(descriptor["array"])
    if descriptor["extra"] is None:
        return descriptor["tag"], array
    return descriptor["tag"], (array, tuple(descriptor["extra"]))


def _init_worker_shm(payload: dict) -> None:
    """Pool initializer for the shared-memory executor: attach, don't copy.

    Besides the test set, the worker attaches the parent's published
    fault-free prefix activation planes (and, when available, the derived
    im2col/packed input representations) and installs them via
    :meth:`CampaignEvaluator.adopt_prefix` — the worker never recomputes
    the prefix.  Every attach verifies the plane fingerprint; a stale
    plane aborts worker start-up instead of silently mixing data.
    """
    global _WORKER_EVALUATOR
    registry = SharedPlaneRegistry(fingerprint=payload["planes_fingerprint"])
    _WORKER_SHM.append(registry)  # keep the mappings alive with the worker
    x_test = registry.attach(payload["x_shm"])
    y_test = registry.attach(payload["y_shm"])
    evaluator = CampaignEvaluator(
        payload["model"], x_test, y_test,
        batch_size=payload["batch_size"],
        continue_time_across_layers=payload["continue_time"],
        backend=payload["backend"],
        copy_data=False)
    prefix = payload.get("prefix")
    if prefix is not None:
        batch_size = payload["batch_size"]
        batches = []
        for index in range(prefix["n_batches"]):
            start = index * batch_size
            if prefix["batches"] is None:
                # split == 0: the "activations" are the test set itself —
                # slice the already-attached plane instead of attaching
                # redundant copies
                z = x_test[start:start + batch_size]
            else:
                z = registry.attach(prefix["batches"][index])
            batches.append((z, y_test[start:start + batch_size]))
        reps = None
        if prefix["reps"] is not None:
            reps = [_attach_rep(registry, descriptor)
                    for descriptor in prefix["reps"]]
        evaluator.adopt_prefix(prefix["split"], batches, reps)
    _WORKER_EVALUATOR = evaluator


def _run_worker_job(job: CampaignJob) -> JobResult:
    return _WORKER_EVALUATOR.run_job(job)


def _run_worker_shard(task: tuple[CampaignJob, int, int]
                      ) -> tuple[int, int, int, int]:
    """Evaluate one shard of one job: (point, repeat, correct, total)."""
    job, shard, n_shards = task
    correct, total = _WORKER_EVALUATOR.evaluate_plan_counts(
        job.plan, shard, n_shards)
    return job.point_index, job.repeat_index, correct, total


def _payload_nbytes(payload: dict) -> int:
    """Serialized size of a worker initializer payload.

    Arrays are counted at ``nbytes`` instead of being pickled: serializing
    a multi-megabyte test set per :meth:`run_iter` call just to measure it
    would dwarf the metric's value (on fork start, nothing is pickled at
    all).  Called inside the transient-state stash so the model component
    reflects what a worker actually receives, not the caller's warm
    caches.
    """
    arrays = sum(value.nbytes for value in payload.values()
                 if isinstance(value, np.ndarray))
    rest = {key: value for key, value in payload.items()
            if not isinstance(value, np.ndarray)}
    return arrays + len(pickle.dumps(rest, protocol=pickle.HIGHEST_PROTOCOL))


@contextmanager
def _transient_state_stashed(model: Sequential):
    """Strip per-layer scratch state for the duration of the block, then
    restore it.

    Worker start-up must not pickle (or fork-inherit) the caller's warm
    im2col/packing caches — but it must not *discard* them either: a
    serial evaluator sharing the model would silently lose its warm state
    every time a pool spins up.
    """
    saved: list[tuple[object, dict]] = []
    for layer in model.all_layers():
        entry = {attr: getattr(layer, attr)
                 for attr in ("_packed_kernel_cache", "_input_cache", "_cache")
                 if hasattr(layer, attr)}
        if entry:
            saved.append((layer, entry))
    _strip_transient_state(model)
    try:
        yield
    finally:
        for layer, entry in saved:
            for attr, value in entry.items():
                setattr(layer, attr, value)


class MultiprocessingExecutor:
    """Process-pool executor with worker-local models.

    The model and test set ship to each worker once (pool initializer);
    jobs only carry their fault plans.  Results stream back unordered as
    they complete.  They are bit-identical to the serial executor because
    plans are pre-generated and the per-batch arithmetic is unchanged.

    When the job grid is smaller than the pool, evaluation splits at the
    batch level instead: each worker scores a shard of the test batches
    and the parent reduces the integer ``(correct, total)`` counts.

    With a :class:`~repro.core.resilience.RetryPolicy` the pool runs
    under a :class:`~repro.core.resilience.PoolSupervisor`: failed jobs
    retry with backoff and are quarantined (NaN cells) after
    ``max_attempts``; lost workers trigger a pool rebuild that
    re-dispatches only the in-flight jobs; and when a rung keeps failing
    the executor walks down its :attr:`ladder` — ultimately running the
    remaining jobs in-process — so a campaign always completes with
    bit-identical accuracies for every cell that completes anywhere.
    ``policy=None`` (the default) keeps the legacy semantics: one
    attempt, first failure raises.
    """

    name = "multiprocessing"
    #: degradation ladder, first rung first; the final "serial" rung
    #: runs on the caller's evaluator and cannot lose workers
    ladder: tuple[str, ...] = ("multiprocessing", "serial")

    def __init__(self, n_jobs: int | None = None,
                 policy: RetryPolicy | None = None):
        if not n_jobs or n_jobs <= 0:
            n_jobs = int(os.environ.get("REPRO_N_JOBS", 0) or 0)
        self.n_jobs = n_jobs if n_jobs > 0 else (os.cpu_count() or 1)
        self.policy = policy
        #: serialized size of the per-worker initializer payload on the
        #: most recent pooled run, arrays counted at ``nbytes`` (0 after a
        #: serial fallback, None before any run) — see _payload_nbytes
        self.payload_bytes: int | None = None
        #: prefix-plane metrics of the most recent pooled run (only the
        #: shared-memory executor populates this)
        self.prefix_plane: dict | None = None
        #: event hook: ``on_warning(message)`` is invoked for non-fatal
        #: conditions a caller should surface (e.g. a grid that cannot
        #: use the pool falling back to the serial loop).  The streaming
        #: API (:mod:`repro.api`) wires this to its typed
        #: ``RunWarning`` events; ``None`` stays silent.
        self.on_warning: Callable[[str], None] | None = None
        #: event hook for typed resilience records (JobRetried,
        #: JobQuarantined, WorkerLost, ExecutorDegraded); campaigns tap
        #: this to journal events, the API mirrors them as run events
        self.on_event: Callable | None = None
        #: per-run resilience summary (see resilience.new_stats)
        self.resilience: dict = new_stats()
        #: the observing run's repro.obs.Observability (campaigns set
        #: this for the duration of run(); None = uninstrumented).
        #: Pool workers never see it — only the parent-side serial
        #: paths trace per-cell evaluate spans.
        self.obs = None

    def _notify(self, message: str) -> None:
        if self.on_warning is not None:
            self.on_warning(message)

    def _emit(self, record) -> None:
        note_stats(self.resilience, record)
        if self.on_event is not None:
            self.on_event(record)

    def _make_payload(self, evaluator: CampaignEvaluator
                      ) -> tuple[dict, Callable[[bool], None]]:
        """Build the initializer payload.

        Returns
        -------
        (dict, callable)
            The payload and a ``cleanup(success)`` hook invoked after the
            run — ``success`` is False when the run raised or was
            abandoned, letting subclasses release resources they would
            otherwise keep cached for the next run.
        """
        payload = {
            "model": evaluator.model,
            "x_test": np.asarray(evaluator.x_test),
            "y_test": np.asarray(evaluator.y_test),
            "batch_size": evaluator.batch_size,
            "continue_time": evaluator.injector.continue_time_across_layers,
            "backend": evaluator.backend,
        }
        return payload, lambda success: None

    def _shard_count(self, n_pending: int, n_batches: int) -> int:
        """Shards per job when the grid underfills the pool, else 1."""
        if n_pending == 0 or n_pending >= self.n_jobs or n_batches <= 1:
            return 1
        return min(n_batches, math.ceil(self.n_jobs / n_pending))

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[JobResult]:
        """Evaluate ``jobs`` and return all ``(point, repeat, accuracy)``
        results (the materialized form of :meth:`run_iter`)."""
        return list(self.run_iter(jobs, evaluator))

    def run_iter(self, jobs: Sequence[CampaignJob],
                 evaluator: CampaignEvaluator) -> Iterator[JobResult]:
        """Stream ``(point, repeat, accuracy)`` results as cells complete.

        Results arrive *unordered* but are bit-identical to the serial
        executor for every cell: plans are pre-generated and the
        per-batch arithmetic is unchanged — which is also why worker
        loss, retries, and executor degradation can never change a
        value, only where and when it is computed.  Pools of one worker
        (or single-job grids that cannot shard) fall back to the
        in-process serial loop.  Quarantined jobs yield NaN for their
        cell (sharded cells quarantine whole).
        """
        jobs = list(jobs)
        self.resilience = new_stats()
        n_shards = self._shard_count(len(jobs), self._n_batches(evaluator))
        if self.n_jobs == 1 or (len(jobs) <= 1 and n_shards <= 1):
            if self.n_jobs > 1:
                self._notify(
                    f"grid of {len(jobs)} job(s) cannot use the "
                    f"{self.n_jobs}-worker pool; falling back to the "
                    "in-process serial loop")
            self.payload_bytes = 0
            self.prefix_plane = None  # this run attached no planes
            yield from self._run_rung_serial(jobs, evaluator, sharded=False,
                                             reduce=self._make_reducer(
                                                 False, 1))
            return
        if n_shards > 1:
            tasks: list = [(job, shard, n_shards)
                           for job in jobs for shard in range(n_shards)]
            sharded = True
        else:
            tasks = jobs
            sharded = False
        # the cross-rung reducer: shard counts accumulated on one rung
        # finish reducing on the next, so degradation mid-cell is exact
        reduce = self._make_reducer(sharded, n_shards)
        modes = list(self.ladder)
        if self.policy is None or not self.policy.degrade:
            modes = modes[:1]
        remaining = tasks
        for rung, mode in enumerate(modes):
            if mode == "serial":
                yield from self._run_rung_serial(remaining, evaluator,
                                                 sharded=sharded,
                                                 reduce=reduce)
                return
            try:
                payload, initializer, cleanup = self._payload_for_mode(
                    mode, evaluator)
            except Exception as error:
                if rung + 1 >= len(modes):
                    raise
                self._emit(ExecutorDegraded(
                    from_mode=mode, to_mode=modes[rung + 1],
                    reason=f"worker payload setup failed: {error!r}"))
                continue
            job_fn, shard_fn = self._pool_functions(mode)
            with _transient_state_stashed(evaluator.model):
                self.payload_bytes = _payload_nbytes(payload)

            def pool_factory(payload=payload, initializer=initializer):
                import multiprocessing
                with _transient_state_stashed(evaluator.model):
                    return multiprocessing.Pool(self.n_jobs,
                                                initializer=initializer,
                                                initargs=(payload,))

            window = (self.n_jobs
                      if self.policy is not None
                      and self.policy.job_timeout is not None
                      else 2 * self.n_jobs)
            supervisor = PoolSupervisor(
                pool_factory, shard_fn if sharded else job_fn, remaining,
                self.policy, key=_task_key, on_event=self._emit,
                window=window)
            stream = supervisor.run()
            rung_done = False
            try:
                for task, outcome in stream:
                    yield from reduce(task, outcome)
                rung_done = True
            except SupervisorGaveUp as failure:
                if rung + 1 >= len(modes):
                    raise
                remaining = supervisor.unfinished()
                self._emit(ExecutorDegraded(from_mode=mode,
                                            to_mode=modes[rung + 1],
                                            reason=str(failure)))
            finally:
                stream.close()
                cleanup(rung_done)
                if not rung_done and mode == "shared_memory":
                    # the planes this run advertised were just released
                    self.prefix_plane = None
            if rung_done:
                return

    def _run_rung_serial(self, tasks: Sequence, evaluator: CampaignEvaluator,
                         *, sharded: bool, reduce) -> Iterator[JobResult]:
        """The bottom rung (and the tiny-grid fallback): run the
        remaining tasks on the caller's evaluator under the same
        retry/quarantine contract."""
        if sharded:
            def call(task):
                job, shard, n_shards = task
                correct, total = evaluator.evaluate_plan_counts(
                    job.plan, shard, n_shards)
                return job.point_index, job.repeat_index, correct, total
        else:
            call = evaluator.run_job
        call = _traced_evaluate(call, self.obs)
        for task, outcome in supervised_serial(tasks, call, self.policy,
                                               key=_task_key,
                                               on_event=self._emit):
            yield from reduce(task, outcome)

    @staticmethod
    def _make_reducer(sharded: bool, n_shards: int):
        """``reduce(task, outcome) -> iterator of JobResult``.

        Unsharded: pass results through, NaN for quarantined jobs.
        Sharded: sum integer ``(correct, total)`` per cell and emit the
        cell once complete — ``sum(correct)/sum(total)`` equals the
        unsharded accuracy bit-for-bit; a quarantined shard quarantines
        its whole cell (one NaN, later shards of that cell ignored).
        The reducer's state lives across rungs of the degradation
        ladder, so a cell split between two rungs still reduces exactly.
        """
        if not sharded:
            def reduce(task, outcome):
                kind, value = outcome
                if kind == "ok":
                    yield value
                else:
                    yield task.point_index, task.repeat_index, float("nan")
            return reduce

        cells: dict[tuple[int, int], list[int]] = {}
        dead: set[tuple[int, int]] = set()

        def reduce(task, outcome):
            coord = _task_key(task)
            kind, value = outcome
            if kind != "ok":
                if coord not in dead:
                    dead.add(coord)
                    cells.pop(coord, None)
                    yield coord[0], coord[1], float("nan")
                return
            if coord in dead:
                return  # a straggler shard of a quarantined cell
            entry = cells.setdefault(coord, [0, 0, n_shards])
            entry[0] += value[2]
            entry[1] += value[3]
            entry[2] -= 1
            if entry[2] == 0:
                del cells[coord]
                yield coord[0], coord[1], entry[0] / entry[1]
        return reduce

    def _payload_for_mode(self, mode: str, evaluator: CampaignEvaluator
                          ) -> tuple[dict, Callable, Callable[[bool], None]]:
        """``(payload, initializer, cleanup)`` for one ladder rung.

        Subclasses add rungs by handling their mode and delegating the
        rest to ``super()``; the chaos harness wraps the returned pieces
        to inject failures without touching dispatch logic.
        """
        if mode != "multiprocessing":
            raise ValueError(f"unknown executor mode {mode!r}")
        payload, cleanup = MultiprocessingExecutor._make_payload(
            self, evaluator)
        return payload, _init_worker, cleanup

    def _pool_functions(self, mode: str) -> tuple[Callable, Callable]:
        """The (job, shard) functions dispatched to pool workers, looked
        up late from the module globals so tests (and the chaos harness)
        can substitute them."""
        return _run_worker_job, _run_worker_shard

    @staticmethod
    def _n_batches(evaluator: CampaignEvaluator) -> int:
        return math.ceil(len(evaluator.x_test) / evaluator.batch_size)


class SharedMemoryExecutor(MultiprocessingExecutor):
    """Pool executor whose test set *and* prefix activations live in
    shared memory.

    The parent publishes ``x_test``/``y_test`` plus its cached fault-free
    prefix activation batches (and the first suffix layer's derived
    im2col/packed input representations) as planes in a
    :class:`SharedPlaneRegistry`; workers attach everything zero-copy in
    their initializer.  The pickled per-worker payload carries only the
    model and block descriptors — independent of dataset size — and no
    worker ever recomputes the fault-free prefix.

    Planes are fingerprinted against the evaluator's data + weights and
    kept alive across ``run`` calls of the same campaign (e.g. the
    per-layer sweeps of a Fig. 4 grid republish nothing); a fingerprint
    change republishes, a failed or abandoned run releases immediately,
    and a ``weakref`` finalizer unlinks whatever remains when the
    executor is garbage-collected or the interpreter exits.
    """

    name = "shared_memory"
    ladder: tuple[str, ...] = ("shared_memory", "multiprocessing", "serial")

    def __init__(self, n_jobs: int | None = None,
                 policy: RetryPolicy | None = None):
        super().__init__(n_jobs, policy)
        self._registry: SharedPlaneRegistry | None = None
        self._payload: dict | None = None
        self._prefix_info: dict | None = None

    def _payload_for_mode(self, mode: str, evaluator: CampaignEvaluator
                          ) -> tuple[dict, Callable, Callable[[bool], None]]:
        if mode != "shared_memory":
            return super()._payload_for_mode(mode, evaluator)
        payload, cleanup = self._make_payload(evaluator)
        return payload, _init_worker_shm, cleanup

    def release_planes(self) -> None:
        """Unlink every published plane now (idempotent).  Called on
        failed runs, by :meth:`FaultCampaign.close`, and by the registry
        finalizer as a last resort."""
        if self._registry is not None:
            self._registry.release()
        self._registry = None
        self._payload = None
        self._prefix_info = None

    def _publish_prefix(self, evaluator: CampaignEvaluator,
                        registry: SharedPlaneRegistry) -> dict:
        """Publish the evaluator's fault-free prefix activation batches
        (computing them once, in the parent) plus the first suffix
        layer's derived input representations when that layer memoizes
        one (see :mod:`repro.binary.layers`).

        At ``split == 0`` (a fully mapped model: no fault-free prefix)
        the activation batches are byte-for-byte slices of ``x_test``,
        which workers already attach — ``batches`` is ``None`` then and
        workers slice the test-set plane instead of attaching redundant
        copies.
        """
        split = evaluator._baseline_split()
        with evaluator._evaluation_scope():
            batches = evaluator._batches_for(split)
            descriptors = None
            if split > 0:
                descriptors = [registry.publish(z, label=f"prefix{index}")
                               for index, (z, _) in enumerate(batches)]
            reps: list[dict] | None = None
            layers = evaluator.model.layers
            if split < len(layers) and hasattr(layers[split],
                                               "_input_cache"):
                layer = layers[split]
                reps = []
                for z, _ in batches:
                    # one forward memoizes exactly the representation the
                    # workers will look up — shared code path, no drift
                    layer.forward(z, training=False)
                    for tag in ("packed", "cols"):
                        rep = layer._input_cache.peek(tag, z)
                        if rep is not None:
                            reps.append(_publish_rep(registry, tag, rep))
                            break
                    else:
                        # this layer memoizes nothing: drop the partially
                        # published set — nobody will ever attach it
                        for published in reps:
                            registry.discard(published["array"])
                        reps = None
                        break
        return {"split": split, "n_batches": len(batches),
                "batches": descriptors, "reps": reps}

    def _make_payload(self, evaluator: CampaignEvaluator
                      ) -> tuple[dict, Callable[[bool], None]]:
        def cleanup(success: bool) -> None:
            if not success:
                self.release_planes()

        fingerprint = evaluator.plane_fingerprint()
        if (self._registry is not None and self._payload is not None
                and self._registry.fingerprint == fingerprint):
            # campaign-aware caching: same data/weights/geometry — the
            # planes published for the previous run are still exact
            self.prefix_plane = dict(self._prefix_info, reused=True)
            return self._payload, cleanup
        self.release_planes()
        registry = SharedPlaneRegistry(fingerprint=fingerprint)
        registry.on_warning = self.on_warning
        try:
            x_desc = registry.publish(evaluator.x_test, label="x_test")
            y_desc = registry.publish(evaluator.y_test, label="y_test")
            prefix = self._publish_prefix(evaluator, registry)
            payload = {
                "model": evaluator.model,
                "planes_fingerprint": fingerprint,
                "x_shm": x_desc,
                "y_shm": y_desc,
                "prefix": prefix,
                "batch_size": evaluator.batch_size,
                "continue_time":
                    evaluator.injector.continue_time_across_layers,
                "backend": evaluator.backend,
            }
        except Exception:
            registry.release()
            raise
        self._registry = registry
        self._payload = payload
        self._prefix_info = {
            "split": prefix["split"],
            "batches": prefix["n_batches"],
            "rep_planes": len(prefix["reps"] or []),
            "bytes": registry.nbytes,
        }
        self.prefix_plane = dict(self._prefix_info, reused=False)
        return payload, cleanup


def _publish_rep(registry: SharedPlaneRegistry, tag: str, rep) -> dict:
    """Decompose one memoized input representation into a plane descriptor
    (``(array, (oh, ow))`` conv tuples or bare dense word arrays)."""
    if isinstance(rep, tuple):
        array, extra = rep
    else:
        array, extra = rep, None
    return {"tag": tag, "array": registry.publish(array, label=f"rep-{tag}"),
            "extra": extra}


def _strip_transient_state(model: Sequential) -> None:
    """Drop per-layer scratch state (training caches, memoized packings)
    before pickling a model into worker processes."""
    for layer in model.all_layers():
        if hasattr(layer, "_invalidate_caches"):
            layer._invalidate_caches()
        if hasattr(layer, "_input_cache"):
            layer._input_cache = type(layer._input_cache)()
        if hasattr(layer, "_cache"):
            layer._cache = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "multiprocessing": MultiprocessingExecutor,
    "shared_memory": SharedMemoryExecutor,
    "shm": SharedMemoryExecutor,
}


def get_executor(executor, n_jobs: int | None = None,
                 policy: RetryPolicy | None = None):
    """Resolve an executor by name ('serial' / 'multiprocessing' /
    'shared_memory') or pass executor objects through.  ``policy``
    (a :class:`~repro.core.resilience.RetryPolicy`) arms retries,
    per-job timeouts, and the degradation ladder; ``None`` keeps the
    legacy raise-on-first-failure behavior."""
    if not isinstance(executor, str):
        return executor
    cls = _EXECUTORS.get(executor)
    if cls is None:
        raise ValueError(f"unknown executor {executor!r}; use 'serial', "
                         "'multiprocessing' or 'shared_memory'")
    if cls is SerialExecutor:
        return cls(policy=policy)
    return cls(n_jobs, policy=policy)
