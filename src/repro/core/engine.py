"""Campaign execution engine: the repeat×sweep grid as independent jobs.

The paper's methodology is brute-force statistical — every accuracy curve
is a sweep of fault rates, each point repeated with fresh seeds, each
repetition a full test-set inference (§IV).  This module turns that grid
into a fast, embarrassingly parallel workload.

Job model
---------
A sweep of ``len(xs)`` points × ``repeats`` repetitions flattens into
``len(xs) * repeats`` independent :class:`CampaignJob` values.  Each job
carries its grid coordinates and a *pre-generated* fault plan — the
expensive mask distribution/mapping runs once, up front, in the parent
process (:func:`build_jobs`), never inside the evaluation loop.  Executors
only evaluate: attach the plan, run the test set, detach, report accuracy.

Seeding scheme
--------------
Job plans are drawn from :meth:`FaultGenerator.job_seed`
(``base_seed + 7919*repeat + 104729*point``), a pure function of the grid
coordinates.  Because plans are generated before any executor runs, the
``serial`` and ``multiprocessing`` executors are *bit-identical*: same
seeds → same plans → same accuracies, regardless of scheduling order.

Redundant-work elimination
--------------------------
:class:`CampaignEvaluator` owns every cache a campaign can legally share:

* the fault-free **baseline** accuracy is computed once per evaluator;
* jobs whose plan contains no faulty cell (e.g. the rate-0 sweep point)
  reuse the baseline outright — attaching an all-clear plan wires no
  hooks, so the evaluation would be the baseline bit-for-bit anyway;
* the **fault-free prefix** of the model (every layer before the first
  layer a plan can touch) is evaluated once and its activations are
  cached, batch by batch, as read-only arrays; each job then only runs
  the suffix.  For LeNet this skips the unmapped CMOS conv0 + pooling
  stack — roughly half the inference — in every repetition;
* the read-only activation batches are *identically the same objects*
  across jobs, which arms the quantized layers' input-representation
  caches (im2col / bit-packing reuse, see :mod:`repro.binary.layers`).

Packed vs float execution
-------------------------
``backend="packed"`` switches the quantized layers to the XNOR/popcount
fast path on packed uint64 words — the integer arithmetic the LIM
crossbar natively performs.  The two backends are bit-identical (±1 sums
are exact in float32); layers fall back to float automatically wherever
packed semantics cannot express the computation (product-level hooks,
non-strictly-binary quantizers, ``same`` padding, training).

Executors
---------
``serial``
    In-process loop.  Shares the caller's evaluator and all its caches.
``multiprocessing``
    A process pool (default ``n_jobs=os.cpu_count()``); each worker
    builds one evaluator (worker-local model + read-only test set) in its
    initializer and reuses it for every job it is handed.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..nn.model import Sequential
from .faults import FaultSpec
from .generator import FaultGenerator, FaultPlan, mapped_layers
from .injector import FaultInjector

__all__ = [
    "CampaignJob",
    "CampaignEvaluator",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "build_jobs",
    "get_executor",
    "plan_has_faults",
]


@dataclass(frozen=True)
class CampaignJob:
    """One (sweep point, repetition) cell of the campaign grid."""

    point_index: int
    repeat_index: int
    x_value: float
    seed: int
    plan: FaultPlan


def plan_has_faults(plan: FaultPlan) -> bool:
    """Whether any mask in the plan marks at least one faulty cell."""
    return any(masks.has_faults for masks in plan.values())


def build_jobs(model: Sequential,
               spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
               xs: Sequence[float], repeats: int, seed: int,
               rows: int, cols: int,
               layers: list[str] | None = None) -> list[CampaignJob]:
    """Flatten the sweep grid into jobs with pre-generated fault plans.

    Mask generation happens here — outside the evaluation loop, before any
    executor starts — so scheduling order can never affect the plans.
    """
    jobs: list[CampaignJob] = []
    for i, x_value in enumerate(xs):
        specs = spec_factory(x_value)
        for j in range(repeats):
            job_seed = FaultGenerator.job_seed(seed, i, j)
            generator = FaultGenerator(specs, rows=rows, cols=cols,
                                       seed=job_seed)
            jobs.append(CampaignJob(
                point_index=i, repeat_index=j, x_value=x_value,
                seed=job_seed, plan=generator.generate(model, layers=layers)))
    return jobs


class CampaignEvaluator:
    """Evaluates fault plans on a fixed model + test set, with caching.

    The test set is treated as **read-only** for the lifetime of the
    evaluator (batches and cached prefix activations are marked
    non-writeable so the layer-level input caches may key on identity).
    """

    def __init__(self, model: Sequential, x_test: np.ndarray,
                 y_test: np.ndarray, batch_size: int = 256,
                 continue_time_across_layers: bool = True,
                 backend: str = "float"):
        if backend not in ("float", "packed"):
            raise ValueError(f"unknown execution backend {backend!r}; "
                             "use 'float' or 'packed'")
        self.model = model
        self.batch_size = batch_size
        self.backend = backend
        self.x_test = x_test.view()
        self.x_test.flags.writeable = False
        self.y_test = y_test
        self.injector = FaultInjector(continue_time_across_layers)
        self._baseline: float | None = None
        #: top-level split index -> list of (activation batch, label batch)
        self._suffix_batches: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._weights_version = getattr(model, "weights_version", None)

    def _check_weights_version(self) -> None:
        """Drop caches when the model's parameters changed in place."""
        version = getattr(self.model, "weights_version", None)
        if version != self._weights_version:
            self.clear_caches()
            self._weights_version = version

    def clear_caches(self) -> None:
        """Release every memoized evaluation artifact: the baseline, the
        prefix activation batches, and the layers' input/kernel caches."""
        self._baseline = None
        self._suffix_batches.clear()
        _strip_transient_state(self.model)

    @contextmanager
    def _backend_scope(self):
        """Run with this evaluator's backend, restore the previous one after.

        The campaign must not permanently re-mode a shared model — two
        campaigns with different backends on one model would otherwise
        silently override each other.
        """
        previous = [(layer, layer.execution_backend)
                    for layer in self.model.all_layers()
                    if hasattr(layer, "execution_backend")]
        self.model.set_execution_backend(self.backend)
        try:
            yield
        finally:
            for layer, saved in previous:
                layer.execution_backend = saved

    # -- prefix/suffix splitting ----------------------------------------
    def _split_for(self, layer_names) -> int:
        """Index of the first top-level layer whose subtree contains any of
        ``layer_names`` — everything before it is fault-free for sure."""
        names = set(layer_names)

        def contains(layer) -> bool:
            if layer.name in names:
                return True
            return any(contains(child) for child in layer.sub_layers())

        for index, layer in enumerate(self.model.layers):
            if contains(layer):
                return index
        return len(self.model.layers)

    def _batches_for(self, split: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-batch activations after ``layers[:split]``, computed once.

        Batch boundaries match :meth:`Sequential.evaluate`, so suffix
        evaluation is arithmetic-for-arithmetic the full forward pass.
        """
        cached = self._suffix_batches.get(split)
        if cached is not None:
            return cached
        prefix = self.model.layers[:split]
        batches: list[tuple[np.ndarray, np.ndarray]] = []
        n = len(self.x_test)
        for start in range(0, n, self.batch_size):
            z = self.x_test[start:start + self.batch_size]
            for layer in prefix:
                z = layer.forward(z, training=False)
            z = np.ascontiguousarray(z)
            z.flags.writeable = False
            batches.append((z, self.y_test[start:start + self.batch_size]))
        self._suffix_batches[split] = batches
        return batches

    def _evaluate_suffix(self, split: int) -> float:
        suffix = self.model.layers[split:]
        correct = 0
        total = 0
        for z, labels in self._batches_for(split):
            out = z
            for layer in suffix:
                out = layer.forward(out, training=False)
            correct += int((out.argmax(axis=-1) == labels).sum())
            total += len(labels)
        return correct / total

    # -- public API ------------------------------------------------------
    def baseline(self) -> float:
        """Fault-free accuracy, computed once per evaluator (and again only
        if the model's weights change in place)."""
        self._check_weights_version()
        if self._baseline is None:
            mapped = [layer.name for layer in mapped_layers(self.model)]
            split = self._split_for(mapped) if mapped else 0
            with self._backend_scope():
                self._baseline = self._evaluate_suffix(split)
        return self._baseline

    def evaluate_plan(self, plan: FaultPlan) -> float:
        """Accuracy under ``plan`` — bit-identical to attaching the plan
        and running ``model.evaluate`` on the full test set."""
        if not plan_has_faults(plan):
            # an all-clear plan wires no hooks: the run is the baseline
            return self.baseline()
        self._check_weights_version()
        split = self._split_for(plan.keys())
        with self._backend_scope(), self.injector.injecting(self.model, plan):
            return self._evaluate_suffix(split)

    def run_job(self, job: CampaignJob) -> tuple[int, int, float]:
        return job.point_index, job.repeat_index, self.evaluate_plan(job.plan)


# -- executors ------------------------------------------------------------

class SerialExecutor:
    """In-process job loop; shares the caller's evaluator and caches."""

    name = "serial"

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[tuple[int, int, float]]:
        return [evaluator.run_job(job) for job in jobs]


_WORKER_EVALUATOR: CampaignEvaluator | None = None


def _init_worker(payload: dict) -> None:
    """Pool initializer: build the worker-local evaluator exactly once."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CampaignEvaluator(
        payload["model"], payload["x_test"], payload["y_test"],
        batch_size=payload["batch_size"],
        continue_time_across_layers=payload["continue_time"],
        backend=payload["backend"])


def _run_worker_job(job: CampaignJob) -> tuple[int, int, float]:
    return _WORKER_EVALUATOR.run_job(job)


class MultiprocessingExecutor:
    """Process-pool executor with worker-local models.

    The model and test set ship to each worker once (pool initializer);
    jobs only carry their fault plans.  Results are bit-identical to the
    serial executor because plans are pre-generated and the per-batch
    arithmetic is unchanged.
    """

    name = "multiprocessing"

    def __init__(self, n_jobs: int | None = None):
        self.n_jobs = n_jobs if n_jobs and n_jobs > 0 else (os.cpu_count() or 1)

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[tuple[int, int, float]]:
        if self.n_jobs == 1 or len(jobs) <= 1:
            return SerialExecutor().run(jobs, evaluator)
        import multiprocessing

        _strip_transient_state(evaluator.model)
        payload = {
            "model": evaluator.model,
            "x_test": np.asarray(evaluator.x_test),
            "y_test": evaluator.y_test,
            "batch_size": evaluator.batch_size,
            "continue_time": evaluator.injector.continue_time_across_layers,
            "backend": evaluator.backend,
        }
        chunksize = max(1, len(jobs) // (4 * self.n_jobs))
        with multiprocessing.Pool(self.n_jobs, initializer=_init_worker,
                                  initargs=(payload,)) as pool:
            return pool.map(_run_worker_job, jobs, chunksize=chunksize)


def _strip_transient_state(model: Sequential) -> None:
    """Drop per-layer scratch state (training caches, memoized packings)
    before pickling a model into worker processes."""
    for layer in model.all_layers():
        if hasattr(layer, "_invalidate_caches"):
            layer._invalidate_caches()
        if hasattr(layer, "_input_cache"):
            layer._input_cache = []
        if hasattr(layer, "_cache"):
            layer._cache = None


def get_executor(executor, n_jobs: int | None = None):
    """Resolve an executor by name ('serial' / 'multiprocessing') or pass
    executor objects through."""
    if not isinstance(executor, str):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "multiprocessing":
        return MultiprocessingExecutor(n_jobs)
    raise ValueError(f"unknown executor {executor!r}; "
                     "use 'serial' or 'multiprocessing'")
