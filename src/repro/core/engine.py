"""Campaign execution engine: the repeat×sweep grid as independent jobs.

The paper's methodology is brute-force statistical — every accuracy curve
is a sweep of fault rates, each point repeated with fresh seeds, each
repetition a full test-set inference (§IV).  This module turns that grid
into a fast, embarrassingly parallel workload.

Job model
---------
A sweep of ``len(xs)`` points × ``repeats`` repetitions flattens into
``len(xs) * repeats`` independent :class:`CampaignJob` values.  Each job
carries its grid coordinates and a *pre-generated* fault plan — the
expensive mask distribution/mapping runs once, up front, in the parent
process (:func:`build_jobs`), never inside the evaluation loop.  Executors
only evaluate: attach the plan, run the test set, detach, report accuracy.

Seeding scheme
--------------
Job plans are drawn from :meth:`FaultGenerator.job_seed`
(``base_seed + 7919*repeat + 104729*point``), a pure function of the grid
coordinates.  Because plans are generated before any executor runs, every
executor is *bit-identical*: same seeds → same plans → same accuracies,
regardless of scheduling order.

Redundant-work elimination
--------------------------
:class:`CampaignEvaluator` owns every cache a campaign can legally share:

* the fault-free **baseline** accuracy is computed once per evaluator;
* jobs whose plan contains no faulty cell (e.g. the rate-0 sweep point)
  reuse the baseline outright — attaching an all-clear plan wires no
  hooks, so the evaluation would be the baseline bit-for-bit anyway;
* the **fault-free prefix** of the model (every layer before the first
  layer a plan can touch) is evaluated once and its activations are
  cached, batch by batch, as read-only arrays; each job then only runs
  the suffix.  For LeNet this skips the unmapped CMOS conv0 + pooling
  stack — roughly half the inference — in every repetition;
* the read-only activation batches are *identically the same objects*
  across jobs, which arms the quantized layers' input-representation
  caches (im2col / bit-packing reuse, see :mod:`repro.binary.layers`).

The evaluator takes a **defensive snapshot** of the test set at
construction: mutating the caller's arrays afterwards can never desync the
cached prefix activations from the data they were computed on.

Packed vs float execution
-------------------------
``backend="packed"`` switches the quantized layers to the XNOR/popcount
fast path on packed uint64 words — the integer arithmetic the LIM
crossbar natively performs.  The two backends are bit-identical (±1 sums
are exact in float32); layers fall back to float automatically wherever
packed semantics cannot express the computation (product-level hooks,
non-strictly-binary quantizers, ``same`` padding, training).

Executors
---------
``serial``
    In-process loop.  Shares the caller's evaluator and all its caches.
``multiprocessing``
    A process pool (default ``n_jobs=os.cpu_count()``, overridable with
    the ``REPRO_N_JOBS`` environment variable); each worker builds one
    evaluator in its initializer and reuses it for every job it is
    handed.  The test set is pickled into each worker once.
``shared_memory``
    Same pool, but the test set lives in
    :mod:`multiprocessing.shared_memory` blocks that workers attach
    **zero-copy** — the per-worker payload shrinks to the model plus a
    few block descriptors, independent of dataset size.

Both pool executors *stream* results back (``imap_unordered``) through
:meth:`run_iter`, so callers can journal/report progress as cells finish,
and both preserve the caller's warm layer caches: the model's transient
state is stripped only for the duration of worker start-up and restored
afterwards.

Batch-level parallelism
-----------------------
When the job grid is smaller than the pool (e.g. a single-point sweep on
a many-core machine), the pool executors split *within* each evaluation:
test batches are sharded across workers and the per-shard
``(correct, total)`` counts reduced in the parent.  Integer count
reduction keeps the accuracy bit-identical to the unsharded division.
"""

from __future__ import annotations

import math
import os
import pickle
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..nn.model import Sequential
from .faults import FaultSpec
from .generator import FaultGenerator, FaultPlan, mapped_layers
from .injector import FaultInjector

__all__ = [
    "CampaignJob",
    "CampaignEvaluator",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "SharedMemoryExecutor",
    "build_jobs",
    "get_executor",
    "plan_has_faults",
]

#: job result: (point index, repeat index, accuracy)
JobResult = tuple[int, int, float]


@dataclass(frozen=True)
class CampaignJob:
    """One (sweep point, repetition) cell of the campaign grid."""

    point_index: int
    repeat_index: int
    x_value: float
    seed: int
    plan: FaultPlan


def plan_has_faults(plan: FaultPlan) -> bool:
    """Whether any mask in the plan marks at least one faulty cell."""
    return any(masks.has_faults for masks in plan.values())


def build_jobs(model: Sequential,
               spec_factory: Callable[[float], list[FaultSpec] | FaultSpec],
               xs: Sequence[float], repeats: int, seed: int,
               rows: int, cols: int,
               layers: list[str] | None = None,
               skip: set[tuple[int, int]] | None = None) -> list[CampaignJob]:
    """Flatten the sweep grid into jobs with pre-generated fault plans.

    Mask generation happens here — outside the evaluation loop, before any
    executor starts — so scheduling order can never affect the plans.
    ``skip`` omits (point, repeat) cells (e.g. already-journaled ones)
    without disturbing the remaining cells' plans: each job's seed is a
    pure function of its own grid coordinates.
    """
    jobs: list[CampaignJob] = []
    for i, x_value in enumerate(xs):
        if skip is not None and all((i, j) in skip for j in range(repeats)):
            continue
        specs = spec_factory(x_value)
        for j in range(repeats):
            if skip is not None and (i, j) in skip:
                continue
            job_seed = FaultGenerator.job_seed(seed, i, j)
            generator = FaultGenerator(specs, rows=rows, cols=cols,
                                       seed=job_seed)
            jobs.append(CampaignJob(
                point_index=i, repeat_index=j, x_value=x_value,
                seed=job_seed, plan=generator.generate(model, layers=layers)))
    return jobs


class CampaignEvaluator:
    """Evaluates fault plans on a fixed model + test set, with caching.

    The evaluator snapshots ``x_test``/``y_test`` at construction
    (``copy_data=True``, the default) and marks the snapshot read-only, so
    the layer-level input caches may key on identity and later caller-side
    mutations cannot silently serve stale prefix activations.  Workers
    attaching process-private or shared-memory arrays pass
    ``copy_data=False`` to stay zero-copy; such arrays must never be
    written while the evaluator lives.

    Cache invalidation keys on ``model.weights_version``, which training
    steps and ``load_state_dict`` bump.  Code that mutates
    ``layer.params[...]`` directly, bypassing those paths, must bump
    ``model.weights_version`` (or call :meth:`clear_caches`) itself —
    the evaluator cannot observe raw in-place array writes.
    """

    def __init__(self, model: Sequential, x_test: np.ndarray,
                 y_test: np.ndarray, batch_size: int = 256,
                 continue_time_across_layers: bool = True,
                 backend: str = "float", copy_data: bool = True):
        if backend not in ("float", "packed"):
            raise ValueError(f"unknown execution backend {backend!r}; "
                             "use 'float' or 'packed'")
        self.model = model
        self.batch_size = batch_size
        self.backend = backend
        self.x_test = np.array(x_test) if copy_data else x_test.view()
        self.x_test.flags.writeable = False
        self.y_test = np.array(y_test) if copy_data else y_test.view()
        self.y_test.flags.writeable = False
        self.injector = FaultInjector(continue_time_across_layers)
        self._baseline: float | None = None
        #: (split, shard, n_shards) -> list of (activation batch, label batch)
        self._suffix_batches: dict[tuple[int, int, int],
                                   list[tuple[np.ndarray, np.ndarray]]] = {}
        self._weights_version = getattr(model, "weights_version", None)

    def _check_weights_version(self) -> None:
        """Drop caches when the model's parameters changed in place."""
        version = getattr(self.model, "weights_version", None)
        if version != self._weights_version:
            self.clear_caches()
            self._weights_version = version

    def clear_caches(self) -> None:
        """Release every memoized evaluation artifact: the baseline, the
        prefix activation batches, and the layers' input/kernel caches."""
        self._baseline = None
        self._suffix_batches.clear()
        _strip_transient_state(self.model)

    @contextmanager
    def _backend_scope(self):
        """Run with this evaluator's backend, restore the previous one after.

        The campaign must not permanently re-mode a shared model — two
        campaigns with different backends on one model would otherwise
        silently override each other.
        """
        previous = [(layer, layer.execution_backend)
                    for layer in self.model.all_layers()
                    if hasattr(layer, "execution_backend")]
        self.model.set_execution_backend(self.backend)
        try:
            yield
        finally:
            for layer, saved in previous:
                layer.execution_backend = saved

    # -- prefix/suffix splitting ----------------------------------------
    def _split_for(self, layer_names) -> int:
        """Index of the first top-level layer whose subtree contains any of
        ``layer_names`` — everything before it is fault-free for sure."""
        names = set(layer_names)

        def contains(layer) -> bool:
            if layer.name in names:
                return True
            return any(contains(child) for child in layer.sub_layers())

        for index, layer in enumerate(self.model.layers):
            if contains(layer):
                return index
        return len(self.model.layers)

    def _baseline_split(self) -> int:
        """The deepest fault-free prefix any plan could share: everything
        before the first mapped layer."""
        mapped = [layer.name for layer in mapped_layers(self.model)]
        return self._split_for(mapped) if mapped else 0

    def _batches_for(self, split: int, shard: int = 0, n_shards: int = 1
                     ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-batch activations after ``layers[:split]``, computed once.

        Batch boundaries match :meth:`Sequential.evaluate` regardless of
        sharding — a shard takes every ``n_shards``-th *global* batch — so
        suffix evaluation is arithmetic-for-arithmetic the full forward
        pass and shard counts sum to the unsharded counts exactly.
        """
        key = (split, shard, n_shards)
        cached = self._suffix_batches.get(key)
        if cached is not None:
            return cached
        prefix = self.model.layers[:split]
        batches: list[tuple[np.ndarray, np.ndarray]] = []
        n = len(self.x_test)
        for index, start in enumerate(range(0, n, self.batch_size)):
            if index % n_shards != shard:
                continue
            z = self.x_test[start:start + self.batch_size]
            for layer in prefix:
                z = layer.forward(z, training=False)
            z = np.ascontiguousarray(z)
            z.flags.writeable = False
            batches.append((z, self.y_test[start:start + self.batch_size]))
        self._suffix_batches[key] = batches
        return batches

    def _suffix_counts(self, split: int, shard: int = 0, n_shards: int = 1
                       ) -> tuple[int, int]:
        suffix = self.model.layers[split:]
        correct = 0
        total = 0
        for z, labels in self._batches_for(split, shard, n_shards):
            out = z
            for layer in suffix:
                out = layer.forward(out, training=False)
            correct += int((out.argmax(axis=-1) == labels).sum())
            total += len(labels)
        return correct, total

    def _evaluate_suffix(self, split: int) -> float:
        correct, total = self._suffix_counts(split)
        return correct / total

    # -- public API ------------------------------------------------------
    def baseline(self) -> float:
        """Fault-free accuracy, computed once per evaluator (and again only
        if the model's weights change in place)."""
        self._check_weights_version()
        if self._baseline is None:
            with self._backend_scope():
                self._baseline = self._evaluate_suffix(self._baseline_split())
        return self._baseline

    def evaluate_plan(self, plan: FaultPlan) -> float:
        """Accuracy under ``plan`` — bit-identical to attaching the plan
        and running ``model.evaluate`` on the full test set."""
        if not plan_has_faults(plan):
            # an all-clear plan wires no hooks: the run is the baseline
            return self.baseline()
        self._check_weights_version()
        split = self._split_for(plan.keys())
        with self._backend_scope(), self.injector.injecting(self.model, plan):
            return self._evaluate_suffix(split)

    def evaluate_plan_counts(self, plan: FaultPlan, shard: int = 0,
                             n_shards: int = 1) -> tuple[int, int]:
        """``(correct, total)`` under ``plan`` over every ``n_shards``-th
        test batch starting at ``shard``.

        The batch-level splitter reduces these integer counts across
        shards; ``sum(correct)/sum(total)`` equals :meth:`evaluate_plan`
        bit-for-bit because the per-batch arithmetic and the final
        division are unchanged.
        """
        self._check_weights_version()
        if not plan_has_faults(plan):
            with self._backend_scope():
                return self._suffix_counts(self._baseline_split(),
                                           shard, n_shards)
        split = self._split_for(plan.keys())
        with self._backend_scope(), self.injector.injecting(self.model, plan):
            return self._suffix_counts(split, shard, n_shards)

    def run_job(self, job: CampaignJob) -> JobResult:
        return job.point_index, job.repeat_index, self.evaluate_plan(job.plan)


# -- executors ------------------------------------------------------------

class SerialExecutor:
    """In-process job loop; shares the caller's evaluator and caches."""

    name = "serial"

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[JobResult]:
        return list(self.run_iter(jobs, evaluator))

    def run_iter(self, jobs: Sequence[CampaignJob],
                 evaluator: CampaignEvaluator) -> Iterator[JobResult]:
        for job in jobs:
            yield evaluator.run_job(job)


_WORKER_EVALUATOR: CampaignEvaluator | None = None
#: attached shared-memory blocks, kept referenced so the mappings survive
_WORKER_SHM: list = []


def _init_worker(payload: dict) -> None:
    """Pool initializer: build the worker-local evaluator exactly once."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CampaignEvaluator(
        payload["model"], payload["x_test"], payload["y_test"],
        batch_size=payload["batch_size"],
        continue_time_across_layers=payload["continue_time"],
        backend=payload["backend"],
        copy_data=False)  # the pickled arrays are already process-private


def _attach_shared_array(descriptor: dict) -> np.ndarray:
    """Attach one shared-memory block zero-copy as a read-only array."""
    from multiprocessing import shared_memory

    # NOTE: CPython < 3.13 registers attachments with the (fork-shared)
    # resource tracker as if this worker owned the block (bpo-39959).
    # That is harmless here — registrations deduplicate and the parent
    # unregisters on unlink — and unregistering per worker would race the
    # parent into a double-unregister.
    shm = shared_memory.SharedMemory(name=descriptor["name"])
    array = np.ndarray(tuple(descriptor["shape"]),
                       dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf)
    array.flags.writeable = False
    _WORKER_SHM.append(shm)  # keep the mapping alive for the worker's life
    return array


def _init_worker_shm(payload: dict) -> None:
    """Pool initializer for the shared-memory executor: attach, don't copy."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CampaignEvaluator(
        payload["model"],
        _attach_shared_array(payload["x_shm"]),
        _attach_shared_array(payload["y_shm"]),
        batch_size=payload["batch_size"],
        continue_time_across_layers=payload["continue_time"],
        backend=payload["backend"],
        copy_data=False)


def _run_worker_job(job: CampaignJob) -> JobResult:
    return _WORKER_EVALUATOR.run_job(job)


def _run_worker_shard(task: tuple[CampaignJob, int, int]
                      ) -> tuple[int, int, int, int]:
    """Evaluate one shard of one job: (point, repeat, correct, total)."""
    job, shard, n_shards = task
    correct, total = _WORKER_EVALUATOR.evaluate_plan_counts(
        job.plan, shard, n_shards)
    return job.point_index, job.repeat_index, correct, total


def _payload_nbytes(payload: dict) -> int:
    """Serialized size of a worker initializer payload.

    Arrays are counted at ``nbytes`` instead of being pickled: serializing
    a multi-megabyte test set per :meth:`run_iter` call just to measure it
    would dwarf the metric's value (on fork start, nothing is pickled at
    all).  Called inside the transient-state stash so the model component
    reflects what a worker actually receives, not the caller's warm
    caches.
    """
    arrays = sum(value.nbytes for value in payload.values()
                 if isinstance(value, np.ndarray))
    rest = {key: value for key, value in payload.items()
            if not isinstance(value, np.ndarray)}
    return arrays + len(pickle.dumps(rest, protocol=pickle.HIGHEST_PROTOCOL))


@contextmanager
def _transient_state_stashed(model: Sequential):
    """Strip per-layer scratch state for the duration of the block, then
    restore it.

    Worker start-up must not pickle (or fork-inherit) the caller's warm
    im2col/packing caches — but it must not *discard* them either: a
    serial evaluator sharing the model would silently lose its warm state
    every time a pool spins up.
    """
    saved: list[tuple[object, dict]] = []
    for layer in model.all_layers():
        entry = {attr: getattr(layer, attr)
                 for attr in ("_packed_kernel_cache", "_input_cache", "_cache")
                 if hasattr(layer, attr)}
        if entry:
            saved.append((layer, entry))
    _strip_transient_state(model)
    try:
        yield
    finally:
        for layer, entry in saved:
            for attr, value in entry.items():
                setattr(layer, attr, value)


class MultiprocessingExecutor:
    """Process-pool executor with worker-local models.

    The model and test set ship to each worker once (pool initializer);
    jobs only carry their fault plans.  Results stream back unordered as
    they complete.  They are bit-identical to the serial executor because
    plans are pre-generated and the per-batch arithmetic is unchanged.

    When the job grid is smaller than the pool, evaluation splits at the
    batch level instead: each worker scores a shard of the test batches
    and the parent reduces the integer ``(correct, total)`` counts.
    """

    name = "multiprocessing"
    _initializer = staticmethod(_init_worker)

    def __init__(self, n_jobs: int | None = None):
        if not n_jobs or n_jobs <= 0:
            n_jobs = int(os.environ.get("REPRO_N_JOBS", 0) or 0)
        self.n_jobs = n_jobs if n_jobs > 0 else (os.cpu_count() or 1)
        #: serialized size of the per-worker initializer payload on the
        #: most recent pooled run, arrays counted at ``nbytes`` (0 after a
        #: serial fallback, None before any run) — see _payload_nbytes
        self.payload_bytes: int | None = None

    def _make_payload(self, evaluator: CampaignEvaluator
                      ) -> tuple[dict, Callable[[], None]]:
        """Build the initializer payload; returns ``(payload, cleanup)``."""
        payload = {
            "model": evaluator.model,
            "x_test": np.asarray(evaluator.x_test),
            "y_test": np.asarray(evaluator.y_test),
            "batch_size": evaluator.batch_size,
            "continue_time": evaluator.injector.continue_time_across_layers,
            "backend": evaluator.backend,
        }
        return payload, lambda: None

    def _shard_count(self, n_pending: int, n_batches: int) -> int:
        """Shards per job when the grid underfills the pool, else 1."""
        if n_pending == 0 or n_pending >= self.n_jobs or n_batches <= 1:
            return 1
        return min(n_batches, math.ceil(self.n_jobs / n_pending))

    def run(self, jobs: Sequence[CampaignJob],
            evaluator: CampaignEvaluator) -> list[JobResult]:
        return list(self.run_iter(jobs, evaluator))

    def run_iter(self, jobs: Sequence[CampaignJob],
                 evaluator: CampaignEvaluator) -> Iterator[JobResult]:
        jobs = list(jobs)
        n_shards = self._shard_count(len(jobs), self._n_batches(evaluator))
        if self.n_jobs == 1 or (len(jobs) <= 1 and n_shards <= 1):
            self.payload_bytes = 0
            yield from SerialExecutor().run_iter(jobs, evaluator)
            return
        import multiprocessing

        payload, cleanup = self._make_payload(evaluator)
        try:
            with _transient_state_stashed(evaluator.model):
                self.payload_bytes = _payload_nbytes(payload)
                pool = multiprocessing.Pool(self.n_jobs,
                                            initializer=self._initializer,
                                            initargs=(payload,))
            try:
                if n_shards > 1:
                    yield from self._run_sharded(pool, jobs, n_shards)
                else:
                    chunksize = max(1, len(jobs) // (4 * self.n_jobs))
                    yield from pool.imap_unordered(_run_worker_job, jobs,
                                                   chunksize=chunksize)
            finally:
                pool.terminate()
                pool.join()
        finally:
            cleanup()

    @staticmethod
    def _n_batches(evaluator: CampaignEvaluator) -> int:
        return math.ceil(len(evaluator.x_test) / evaluator.batch_size)

    @staticmethod
    def _run_sharded(pool, jobs: Sequence[CampaignJob], n_shards: int
                     ) -> Iterator[JobResult]:
        """Batch-level splitter: shard each job across the pool and reduce
        integer counts; yields each cell once its shards all arrived."""
        tasks = [(job, shard, n_shards)
                 for job in jobs for shard in range(n_shards)]
        pending: dict[tuple[int, int], list[int]] = {}
        for i, j, correct, total in pool.imap_unordered(_run_worker_shard,
                                                        tasks):
            entry = pending.setdefault((i, j), [0, 0, n_shards])
            entry[0] += correct
            entry[1] += total
            entry[2] -= 1
            if entry[2] == 0:
                del pending[(i, j)]
                yield i, j, entry[0] / entry[1]


class SharedMemoryExecutor(MultiprocessingExecutor):
    """Pool executor whose test set lives in shared memory.

    The parent copies ``x_test``/``y_test`` into
    :class:`multiprocessing.shared_memory.SharedMemory` blocks once;
    workers attach them zero-copy in their initializer.  The pickled
    per-worker payload therefore carries only the model and two block
    descriptors — it no longer scales with the dataset.  Blocks are
    unlinked as soon as the run finishes.
    """

    name = "shared_memory"
    _initializer = staticmethod(_init_worker_shm)

    def _make_payload(self, evaluator: CampaignEvaluator
                      ) -> tuple[dict, Callable[[], None]]:
        from multiprocessing import shared_memory

        blocks: list = []

        def share(array: np.ndarray) -> dict:
            array = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, array.nbytes))
            blocks.append(shm)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            return {"name": shm.name, "shape": array.shape,
                    "dtype": str(array.dtype)}

        def cleanup() -> None:
            for shm in blocks:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

        try:
            payload = {
                "model": evaluator.model,
                "x_shm": share(evaluator.x_test),
                "y_shm": share(evaluator.y_test),
                "batch_size": evaluator.batch_size,
                "continue_time":
                    evaluator.injector.continue_time_across_layers,
                "backend": evaluator.backend,
            }
        except Exception:
            cleanup()
            raise
        return payload, cleanup


def _strip_transient_state(model: Sequential) -> None:
    """Drop per-layer scratch state (training caches, memoized packings)
    before pickling a model into worker processes."""
    for layer in model.all_layers():
        if hasattr(layer, "_invalidate_caches"):
            layer._invalidate_caches()
        if hasattr(layer, "_input_cache"):
            layer._input_cache = []
        if hasattr(layer, "_cache"):
            layer._cache = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "multiprocessing": MultiprocessingExecutor,
    "shared_memory": SharedMemoryExecutor,
    "shm": SharedMemoryExecutor,
}


def get_executor(executor, n_jobs: int | None = None):
    """Resolve an executor by name ('serial' / 'multiprocessing' /
    'shared_memory') or pass executor objects through."""
    if not isinstance(executor, str):
        return executor
    cls = _EXECUTORS.get(executor)
    if cls is None:
        raise ValueError(f"unknown executor {executor!r}; use 'serial', "
                         "'multiprocessing' or 'shared_memory'")
    if cls is SerialExecutor:
        return cls()
    return cls(n_jobs)
