"""FLIM core: fault models, masks, mapping, vectors, injector, campaigns.

The platform structure mirrors the paper's Fig. 2: a :class:`FaultGenerator`
builds fault vectors offline (distribution → mapping → extraction), and a
:class:`FaultInjector` applies them during inference through the fault
hooks of the quantized layers.  :class:`FaultCampaign` wraps the
sweep-with-repetitions protocol of §IV.
"""

from .campaign import FaultCampaign, SweepResult
from .detection import (majority_vote_predict, march_test,
                        masks_from_detection, remap_columns)
from .engine import (CampaignEvaluator, CampaignJob, MultiprocessingExecutor,
                     SerialExecutor, SharedMemoryExecutor,
                     SharedPlaneRegistry, build_jobs, get_executor,
                     plan_has_faults)
from .faults import FaultSpec, FaultType, Semantics, SpatialMode, StuckPolarity
from .generator import FaultGenerator, FaultPlan, mapped_layers
from .injector import FaultInjector
from .journal import CampaignJournal
from .mapping import LayerMapping, tile_vector
from .resilience import (ExecutorDegraded, JobQuarantined, JobRetried,
                         RetryPolicy, SupervisorGaveUp, WorkerLost)
from .masks import (LayerMasks, assemble_layer_masks, build_bitflip_mask,
                    build_clustered_mask, build_line_mask, build_rate_mask,
                    build_row_burst_mask, build_stuck_mask)
from .vectors import load_fault_vectors, save_fault_vectors

__all__ = [
    "FaultType", "StuckPolarity", "Semantics", "SpatialMode", "FaultSpec",
    "LayerMasks", "build_bitflip_mask", "build_stuck_mask", "build_line_mask",
    "build_clustered_mask", "build_row_burst_mask", "build_rate_mask",
    "assemble_layer_masks",
    "LayerMapping", "tile_vector",
    "FaultGenerator", "FaultPlan", "mapped_layers",
    "FaultInjector",
    "FaultCampaign", "SweepResult",
    "CampaignJob", "CampaignEvaluator", "SerialExecutor",
    "MultiprocessingExecutor", "SharedMemoryExecutor",
    "SharedPlaneRegistry", "CampaignJournal",
    "build_jobs", "get_executor", "plan_has_faults",
    "RetryPolicy", "SupervisorGaveUp", "JobRetried", "JobQuarantined",
    "WorkerLost", "ExecutorDegraded",
    "save_fault_vectors", "load_fault_vectors",
    "march_test", "masks_from_detection", "remap_columns",
    "majority_vote_predict",
]
