"""On-disk JSONL journal making interrupted campaigns resumable.

A journaled :meth:`FaultCampaign.run` appends one JSON line per completed
``(point, repeat)`` cell as results stream out of the executor.  If the
process dies mid-grid, rerunning with the same journal path replays the
recorded cells from disk and only evaluates the missing ones — the
resumed :class:`SweepResult` is bit-identical to an uninterrupted run
because accuracies round-trip exactly through ``repr``-based JSON floats
and the per-cell seeds are pure functions of the grid coordinates.

File layout: the first line is a header describing the campaign grid
(``xs``, ``repeats``, ``seed``, crossbar geometry, backend, layer
restriction, injection timing, and a fingerprint of the test-set
snapshot + model weights); every following line is a result cell::

    {"kind": "header", "version": 1, "xs": [0.0, 0.1], "repeats": 3, ...}
    {"point": 0, "repeat": 0, "x": 0.0, "accuracy": 0.9625}
    ...

Resuming validates the header against the requested grid and refuses to
mix journals across campaigns.  A torn final line (the process was killed
mid-write) is discarded with a warning; that cell is simply re-evaluated.
Corruption anywhere *before* the final line is not a crash artifact of
append-only writes and is refused outright.

Besides result cells, the journal records resilience events (worker
losses, retries, quarantined cells, executor degradations) as
``{"kind": "event", ...}`` note lines — an audit trail of what the
supervision layer did to complete the run.  When the campaign is
observed (:mod:`repro.obs`), closed trace spans are likewise persisted
as ``{"kind": "trace", ...}`` lines (rendered back by ``repro trace``).
Event and trace lines are ignored when resuming.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from collections.abc import Callable
from pathlib import Path

__all__ = ["CampaignJournal"]

_VERSION = 1

#: header fields that must match for a journal to be resumed; the
#: fingerprint digests the test-set snapshot and model weights, so stale
#: data or a retrained model cannot silently mix into a resumed result
_GRID_KEYS = ("xs", "repeats", "seed", "rows", "cols", "layers", "backend",
              "continue_time", "specs", "fingerprint")


class CampaignJournal:
    """Append-only JSONL record of completed campaign cells.

    Parameters
    ----------
    path:
        Journal file; created (with its parent directory) on first use.
    header:
        Grid description; must contain the :data:`_GRID_KEYS` fields.
    fsync:
        When True, every appended line is also ``os.fsync``-ed so it
        survives an OS crash or power loss, not just a process kill.
        Off by default: an fsync per cell can dominate short campaigns,
        and a torn tail from a process kill is already recoverable.
    on_warning:
        Callable receiving non-fatal diagnostics (e.g. a torn trailing
        line being discarded).  ``None`` falls back to
        :func:`warnings.warn`.
    """

    def __init__(self, path, header: dict, *, fsync: bool = False,
                 on_warning: Callable[[str], None] | None = None):
        self.path = Path(path)
        self.header = {"kind": "header", "version": _VERSION, **header}
        self.fsync = fsync
        self.on_warning = on_warning
        #: cells already on disk: (point, repeat) -> accuracy
        self.completed: dict[tuple[int, int], float] = {}
        self._handle = None

    def _warn(self, message: str) -> None:
        if self.on_warning is not None:
            self.on_warning(message)
        else:
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    # -- lifecycle -------------------------------------------------------
    def open(self) -> "CampaignJournal":
        """Load any existing cells, then open the file for appending.

        Returns
        -------
        CampaignJournal
            ``self``, with :attr:`completed` holding every
            ``(point, repeat) -> accuracy`` cell already on disk.

        Raises
        ------
        ValueError
            If the file exists but is not a campaign journal, or its
            header (grid, specs, data/weights fingerprint) does not match
            this campaign — mixed journals are refused, never merged.
        """
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        if not fresh:
            self._load_existing()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_line(self.header)
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- I/O -------------------------------------------------------------
    def _load_existing(self) -> None:
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        try:
            head = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as error:
            raise ValueError(
                f"{self.path} is not a campaign journal "
                "(unreadable header line)") from error
        if head.get("kind") != "header":
            raise ValueError(f"{self.path} is not a campaign journal "
                             "(first line is not a header)")
        for key in _GRID_KEYS:
            if head.get(key) != self.header.get(key):
                raise ValueError(
                    f"journal {self.path} was written for a different "
                    f"campaign: {key}={head.get(key)!r} on disk vs "
                    f"{self.header.get(key)!r} requested")
        body = [(number, line) for number, line in
                enumerate(lines[1:], start=2) if line.strip()]
        for position, (number, line) in enumerate(body):
            try:
                cell = json.loads(line)
            except json.JSONDecodeError as error:
                if position == len(body) - 1:
                    # torn tail from a killed writer: warn, re-evaluate it
                    self._warn(
                        f"journal {self.path} ends in a torn line "
                        "(the writer died mid-append); discarding it — "
                        "that cell will be re-evaluated")
                    break
                # mid-file damage is not an append-crash artifact: the
                # journal cannot be trusted, so refuse rather than guess
                raise ValueError(
                    f"journal {self.path} is corrupt at line {number} "
                    "(damage before the final line cannot come from an "
                    "interrupted append); refusing to resume from it"
                ) from error
            if "point" in cell and "repeat" in cell and "accuracy" in cell:
                self.completed[(cell["point"], cell["repeat"])] = \
                    cell["accuracy"]

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def record(self, point: int, repeat: int, x: float,
               accuracy: float) -> None:
        """Append one completed cell (flushed; fsync-ed when enabled).

        Accuracies round-trip exactly: Python floats serialize via
        ``repr`` (shortest round-trippable form), so a resumed
        :class:`SweepResult` is bit-identical to an uninterrupted run.
        """
        self.completed[(point, repeat)] = accuracy
        self._write_line({"point": point, "repeat": repeat,
                          "x": float(x), "accuracy": float(accuracy)})

    def note(self, record) -> None:
        """Append one resilience event (a dataclass record from
        :mod:`repro.core.resilience`) as an audit line.  Event lines are
        skipped when resuming — they describe *how* the run completed,
        not its results."""
        self._write_line({"kind": "event",
                          "event": type(record).__name__,
                          **dataclasses.asdict(record)})

    def trace(self, record) -> None:
        """Append one closed trace span (a
        :class:`repro.obs.spans.SpanRecord`) as an audit line.  Like
        event lines, trace lines are skipped when resuming; ``repro
        trace`` renders them back into a span timeline."""
        from ..obs.trace import span_payload
        self._write_line({"kind": "trace", **span_payload(record)})
