"""Fault mapping: crossbar masks onto layer tensors (§III, "Fault mapping").

The Fault Generator "calculates the number of parallel XNOR operations
based on the crossbars" and "extracts the total number of required XNOR
operations" of each mapped layer; the mask planes are then translated to
the tensor domain each semantics level operates in:

* OUTPUT level — the flattened mask vector is tiled over the layer's
  flattened per-image feature map ("adjusted in length depending on the
  batch size and the input dimension");
* WEIGHT level — mask cell (r, c) covers kernel bits (t, f) with
  ``t ≡ r (mod rows)`` and ``f ≡ c (mod cols)``, following the
  weight-stationary schedule of :class:`repro.lim.TileSchedule`;
* PRODUCT level — mask cells enumerate the individual XNOR products they
  corrupt (device-true reference, shared arithmetic with
  :mod:`repro.lim.xfault`).
"""

from __future__ import annotations

import numpy as np

from ..binary.layers import QuantLayer
from ..lim.scheduler import TileSchedule

__all__ = ["LayerMapping", "tile_vector"]


def tile_vector(vector: np.ndarray, length: int) -> np.ndarray:
    """Repeat a 1-D mask vector to exactly ``length`` elements."""
    if len(vector) == 0:
        raise ValueError("cannot tile an empty vector")
    repeats = -(-length // len(vector))
    return np.tile(vector, repeats)[:length]


class LayerMapping:
    """Geometry binding one mapped layer to one crossbar."""

    def __init__(self, layer: QuantLayer, rows: int, cols: int):
        if not layer.is_mapped:
            raise ValueError(
                f"layer {layer.name!r} is not LIM-mapped (non-binary operands)")
        if not layer.built:
            raise ValueError(f"layer {layer.name!r} must be built before mapping")
        self.layer = layer
        self.rows = rows
        self.cols = cols
        self.schedule = TileSchedule(
            positions=layer.positions_per_image(),
            terms=layer.reduction_length(),
            filters=layer.output_channels,
            rows=rows, cols=cols)
        #: memoized (tiling divisor, occurrence template) — see
        #: :meth:`output_flip_selector`
        self._occurrence: tuple[int, np.ndarray] | None = None

    # -- op accounting (the generator's report) ------------------------------
    @property
    def parallel_ops(self) -> int:
        """XNOR operations the crossbar executes per step."""
        return self.rows * self.cols

    @property
    def total_ops(self) -> int:
        """XNOR operations the layer requires per image."""
        return self.schedule.total_ops

    @property
    def cell_reuse(self) -> float:
        return self.schedule.cell_reuse

    # -- OUTPUT-level translation -----------------------------------------
    def output_flip_selector(self, flip_vector: np.ndarray,
                             period: int = 0,
                             time_offset: int = 0) -> np.ndarray:
        """Boolean selector over the flattened per-image feature map.

        The crossbar-shaped mask vector tiles over the ``O`` output
        elements.  With a dynamic period ``n > 1`` only every n-th
        *occurrence* (tiling repetition, optionally offset by the
        cumulative op time of earlier layers) stays active.
        """
        outputs = self.layer.outputs_per_image()
        selector = tile_vector(flip_vector, outputs).copy()
        if period > 1:
            cached = self._occurrence
            if (cached is None or cached[0] != len(flip_vector)
                    or len(cached[1]) != outputs):
                # plan-independent template, reused across campaign
                # repetitions; keyed on the tiling divisor so vectors of a
                # different length cannot reuse the wrong schedule
                cached = (len(flip_vector),
                          np.arange(outputs) // len(flip_vector))
                self._occurrence = cached
            occurrence = cached[1] + time_offset
            selector &= (occurrence % period == 0)
        return selector

    # -- WEIGHT-level translation ---------------------------------------------
    def weight_plane(self, mask: np.ndarray) -> np.ndarray:
        """Expand a crossbar mask plane to kernel-bit shape ``(K, F)``."""
        terms = self.schedule.terms
        filters = self.schedule.filters
        return mask[np.arange(terms) % self.rows][:, np.arange(filters) % self.cols]

    def weight_stuck_planes(self, stuck_mask: np.ndarray,
                            stuck_values: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Kernel-bit stuck mask and bipolar stuck values (±1)."""
        kmask = self.weight_plane(stuck_mask)
        kvals = self.weight_plane(stuck_values).astype(np.float32) * 2.0 - 1.0
        return kmask, kvals

    # -- PRODUCT-level translation ---------------------------------------------
    def product_cells(self, mask: np.ndarray) -> list[tuple[int, int]]:
        """Faulty (row, col) gate coordinates for product-level injection."""
        rows, cols = np.nonzero(mask)
        return list(zip(rows.tolist(), cols.tolist()))

    def cell_terms(self, row: int) -> np.ndarray:
        return self.schedule.terms_on_row(row)

    def cell_channels(self, col: int) -> np.ndarray:
        return self.schedule.channels_on_column(col)

    def describe(self) -> dict[str, object]:
        """Mapping report entry (used by FaultGenerator.report)."""
        return {
            "layer": self.layer.name,
            "crossbar": (self.rows, self.cols),
            "parallel_xnor_ops": self.parallel_ops,
            "xnor_ops_per_image": self.total_ops,
            "cell_reuse": round(self.cell_reuse, 2),
            "outputs_per_image": self.layer.outputs_per_image(),
            "reduction_length": self.layer.reduction_length(),
        }
