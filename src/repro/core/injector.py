"""The Fault Injector (Fig. 2b).

"The Fault Injector is deeply integrated with the Larq and Tensorflow
framework ... the original convolution method has been overwritten" — in
this reproduction the integration point is the fault hooks every
:class:`~repro.binary.layers.QuantLayer` exposes.  Attaching a plan wires
closures into the hooks; detaching restores the vanilla forward path
(FLIM with no faults is bit-identical to the vanilla model, the paper's
first verification).

The injector also implements the paper's *notion of time*: mapped layers
execute in model order, so each layer's fault masks start at the
cumulative occurrence count of the layers before it.  Dynamic (period-n)
faults thereby fire every n-th XNOR occurrence across the whole inference,
not just within one layer.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..nn.model import Sequential
from .generator import FaultPlan, mapped_layers
from .mapping import LayerMapping, tile_vector
from . import semantics as sem

__all__ = ["FaultInjector"]


class FaultInjector:
    """Attaches/detaches fault plans to the mapped layers of a model."""

    def __init__(self, continue_time_across_layers: bool = True,
                 force_hooks: bool = False):
        self.continue_time_across_layers = continue_time_across_layers
        #: wire the masking hooks even when every mask bit is clear — used
        #: by the Fig. 4f performance protocol, where FLIM "maps the
        #: respective operations but does not inject actual faults"
        self.force_hooks = force_hooks
        self._attached: list = []
        #: (layer name, rows, cols) -> (layer, LayerMapping) — the mapping
        #: geometry (tile schedule, occurrence templates) is plan-independent,
        #: so a long-lived injector reuses it across every repetition of a
        #: campaign instead of rebuilding it per attach
        self._mapping_cache: dict[tuple[str, int, int], tuple] = {}

    # -- lifecycle ----------------------------------------------------------
    def attach(self, model: Sequential, plan: FaultPlan) -> None:
        """Wire the plan's masks into the model's fault hooks."""
        if self._attached:
            raise RuntimeError("injector already attached; call detach() first")
        unknown = set(plan) - {layer.name for layer in mapped_layers(model)}
        if unknown:
            raise KeyError(f"plan names layers that are not mapped: {sorted(unknown)}")
        time_offset = 0
        for layer in mapped_layers(model):
            masks = plan.get(layer.name)
            if masks is None:
                continue
            mapping = self._mapping_for(layer, masks.rows, masks.cols)
            offset = time_offset if self.continue_time_across_layers else 0
            self._wire_layer(layer, mapping, masks, offset)
            self._attached.append(layer)
            mask_len = masks.rows * masks.cols
            time_offset += -(-layer.outputs_per_image() // mask_len)

    def detach(self) -> None:
        """Restore the vanilla forward path on all touched layers."""
        for layer in self._attached:
            layer.clear_fault_hooks()
        self._attached.clear()

    @contextmanager
    def injecting(self, model: Sequential, plan: FaultPlan):
        """Context manager: attach on entry, always detach on exit."""
        self.attach(model, plan)
        try:
            yield self
        finally:
            self.detach()

    def _mapping_for(self, layer, rows: int, cols: int) -> LayerMapping:
        """Cached :class:`LayerMapping` for (layer, crossbar geometry)."""
        key = (layer.name, rows, cols)
        hit = self._mapping_cache.get(key)
        if hit is not None and hit[0] is layer:
            return hit[1]
        mapping = LayerMapping(layer, rows, cols)
        self._mapping_cache[key] = (layer, mapping)
        return mapping

    # -- wiring ------------------------------------------------------------
    def _wire_layer(self, layer, mapping: LayerMapping, masks, time_offset: int):
        output_ops = []
        kernel_ops = []
        product_ops = []

        if masks.flip_mask.any() or self.force_hooks:
            if masks.flip_semantics == "output":
                selector = mapping.output_flip_selector(
                    masks.flip_vector(), masks.flip_period, time_offset)
                if selector.any() or self.force_hooks:
                    output_ops.append(
                        lambda out, _sel=selector: sem.apply_output_flips(out, _sel))
            elif masks.flip_semantics == "weight":
                kflip = mapping.weight_plane(masks.flip_mask)
                kernel_ops.append(
                    lambda qk, _m=kflip: sem.apply_weight_stuck(
                        qk, _m, -qk.reshape(-1, qk.shape[-1])))
            elif masks.flip_semantics == "product":
                cells = mapping.product_cells(masks.flip_mask)
                period = masks.flip_period
                product_ops.append(
                    lambda out, cols, qw, _c=cells, _p=period:
                        sem.product_flip(out, cols, qw, mapping, _c, _p))
            else:
                raise ValueError(f"unknown flip semantics {masks.flip_semantics!r}")

        if masks.stuck_mask.any():
            if masks.stuck_semantics == "weight":
                kmask, kvals = mapping.weight_stuck_planes(
                    masks.stuck_mask, masks.stuck_values)
                kernel_ops.append(
                    lambda qk, _m=kmask, _v=kvals: sem.apply_weight_stuck(qk, _m, _v))
            elif masks.stuck_semantics == "output":
                selector = tile_vector(masks.stuck_mask.reshape(-1),
                                       layer.outputs_per_image())
                signs = tile_vector(
                    masks.stuck_values.reshape(-1).astype(np.float32) * 2 - 1,
                    layer.outputs_per_image())
                rail = float(layer.reduction_length())
                output_ops.append(
                    lambda out, _s=selector, _g=signs, _r=rail:
                        sem.apply_output_stuck(out, _s, _g, _r))
            elif masks.stuck_semantics == "product":
                cells = mapping.product_cells(masks.stuck_mask)
                signs = {(r, c): float(masks.stuck_values[r, c]) * 2 - 1
                         for r, c in cells}
                product_ops.append(
                    lambda out, cols, qw, _c=cells, _s=signs:
                        sem.product_stuck(out, cols, qw, mapping, _c, _s))
            else:
                raise ValueError(f"unknown stuck semantics {masks.stuck_semantics!r}")

        if kernel_ops:
            def kernel_hook(qkernel, _layer, _ops=tuple(kernel_ops)):
                for op in _ops:
                    qkernel = op(qkernel)
                return qkernel
            layer.kernel_fault_hook = kernel_hook

        if output_ops:
            def output_hook(out, _layer, _ops=tuple(output_ops)):
                for op in _ops:
                    out = op(out)
                return out
            layer.output_fault_hook = output_hook

        if product_ops:
            def product_hook(out, cols, qw, _layer, _ops=tuple(product_ops)):
                for op in _ops:
                    out = op(out, cols, qw)
                return out
            layer.product_fault_hook = product_hook
