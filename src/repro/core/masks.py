"""Fault-mask construction (the Fault Generator's "fault distribution").

A mask is a 2-dimensional Boolean array with the dimensions of the
crossbar executing the layer; the injection rate sets the exact number of
elements marked faulty (§III, "Fault masking").  Stuck-at masks carry an
additional value plane recording the frozen level of each faulty cell.
Faulty rows/columns are encoded by setting whole lines of the bit-flip
mask, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .faults import FaultSpec, FaultType, StuckPolarity

__all__ = ["LayerMasks", "build_bitflip_mask", "build_stuck_mask",
           "build_line_mask", "assemble_layer_masks"]


def _exact_count(rate: float, cells: int) -> int:
    """Number of faulty cells for an injection rate (paper: exact count)."""
    return int(round(rate * cells))


def build_bitflip_mask(rows: int, cols: int, rate: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Uniformly distributed bit-flip mask at the given injection rate."""
    mask = np.zeros((rows, cols), dtype=bool)
    count = _exact_count(rate, rows * cols)
    if count:
        flat = rng.choice(rows * cols, size=count, replace=False)
        mask.reshape(-1)[flat] = True
    return mask


def build_stuck_mask(rows: int, cols: int, rate: float,
                     polarity: StuckPolarity,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Stuck-at mask plus the per-cell frozen levels.

    Returns ``(mask, values)`` where ``values`` holds {0, 1} levels (only
    meaningful where ``mask`` is set).
    """
    mask = build_bitflip_mask(rows, cols, rate, rng)
    values = np.zeros((rows, cols), dtype=np.uint8)
    if polarity == StuckPolarity.RANDOM:
        values[mask] = rng.integers(0, 2, size=int(mask.sum()), dtype=np.uint8)
    else:
        values[mask] = polarity.value
    return mask, values


def build_line_mask(rows: int, cols: int, kind: FaultType, count: int,
                    rng: np.random.Generator,
                    indices: np.ndarray | None = None) -> np.ndarray:
    """Mask with ``count`` whole rows or columns set.

    Specific line indices may be forced via ``indices``; otherwise distinct
    lines are drawn uniformly.
    """
    mask = np.zeros((rows, cols), dtype=bool)
    size = rows if kind == FaultType.FAULTY_ROWS else cols
    if count > size:
        raise ValueError(f"cannot mark {count} faulty lines on a size-{size} axis")
    if indices is None:
        indices = rng.choice(size, size=count, replace=False) if count else np.array([], dtype=int)
    if kind == FaultType.FAULTY_ROWS:
        mask[np.asarray(indices, dtype=int), :] = True
    else:
        mask[:, np.asarray(indices, dtype=int)] = True
    return mask


@dataclass
class LayerMasks:
    """All fault state assigned to one mapped layer's crossbar.

    ``flip_mask``/``flip_period`` drive transient (possibly dynamic)
    bit-flips; ``stuck_mask``/``stuck_values`` drive permanent stuck-at
    faults; ``semantics`` record at which level each plane is applied.
    """

    rows: int
    cols: int
    flip_mask: np.ndarray = field(default=None)
    flip_period: int = 0
    stuck_mask: np.ndarray = field(default=None)
    stuck_values: np.ndarray = field(default=None)
    flip_semantics: str = "output"
    stuck_semantics: str = "output"

    def __post_init__(self):
        if self.flip_mask is None:
            self.flip_mask = np.zeros((self.rows, self.cols), dtype=bool)
        if self.stuck_mask is None:
            self.stuck_mask = np.zeros((self.rows, self.cols), dtype=bool)
        if self.stuck_values is None:
            self.stuck_values = np.zeros((self.rows, self.cols), dtype=np.uint8)
        for plane in (self.flip_mask, self.stuck_mask, self.stuck_values):
            if plane.shape != (self.rows, self.cols):
                raise ValueError(
                    f"mask plane shape {plane.shape} != crossbar {(self.rows, self.cols)}")

    @property
    def has_faults(self) -> bool:
        return bool(self.flip_mask.any() or self.stuck_mask.any())

    def fault_counts(self) -> dict[str, int]:
        return {"bitflips": int(self.flip_mask.sum()),
                "stuck": int(self.stuck_mask.sum())}

    def flip_vector(self) -> np.ndarray:
        """Flattened 1-D noise vector (the paper's 'fault vector extraction')."""
        return self.flip_mask.reshape(-1)

    def stuck_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        return self.stuck_mask.reshape(-1), self.stuck_values.reshape(-1)


def assemble_layer_masks(rows: int, cols: int, specs: list[FaultSpec],
                         rng: np.random.Generator) -> LayerMasks:
    """Combine fault specs into one :class:`LayerMasks` for a crossbar.

    Bit-flip and line faults OR into the flip plane (the paper's
    treatment); stuck-at specs OR into the stuck plane with later specs
    winning value conflicts.  A dynamic period on any bit-flip spec applies
    to the whole flip plane (one period per layer, as in Fig. 4c).
    """
    masks = LayerMasks(rows=rows, cols=cols)
    for spec in specs:
        if spec.kind == FaultType.BITFLIP:
            masks.flip_mask |= build_bitflip_mask(rows, cols, spec.rate, rng)
            if spec.period > 1:
                masks.flip_period = spec.period
            masks.flip_semantics = spec.effective_semantics.value
        elif spec.kind in (FaultType.FAULTY_ROWS, FaultType.FAULTY_COLUMNS):
            masks.flip_mask |= build_line_mask(rows, cols, spec.kind, spec.count, rng)
            masks.flip_semantics = spec.effective_semantics.value
        elif spec.kind == FaultType.STUCK_AT:
            mask, values = build_stuck_mask(rows, cols, spec.rate, spec.polarity, rng)
            masks.stuck_mask |= mask
            masks.stuck_values[mask] = values[mask]
            masks.stuck_semantics = spec.effective_semantics.value
        else:
            raise ValueError(f"unhandled fault kind {spec.kind}")
    return masks
