"""Fault-mask construction (the Fault Generator's "fault distribution").

A mask is a 2-dimensional Boolean array with the dimensions of the
crossbar executing the layer; the injection rate sets the exact number of
elements marked faulty (§III, "Fault masking").  Stuck-at masks carry an
additional value plane recording the frozen level of each faulty cell.
Faulty rows/columns are encoded by setting whole lines of the bit-flip
mask, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .faults import FaultSpec, FaultType, SpatialMode, StuckPolarity

__all__ = ["LayerMasks", "build_bitflip_mask", "build_stuck_mask",
           "build_line_mask", "build_clustered_mask", "build_row_burst_mask",
           "build_rate_mask", "assemble_layer_masks"]


def _exact_count(rate: float, cells: int) -> int:
    """Number of faulty cells for an injection rate (paper: exact count)."""
    return int(round(rate * cells))


def build_bitflip_mask(rows: int, cols: int, rate: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Uniformly distributed bit-flip mask at the given injection rate."""
    mask = np.zeros((rows, cols), dtype=bool)
    count = _exact_count(rate, rows * cols)
    if count:
        flat = rng.choice(rows * cols, size=count, replace=False)
        mask.reshape(-1)[flat] = True
    return mask


def build_clustered_mask(rows: int, cols: int, rate: float, cluster_size: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Spatially-clustered mask: compact neighbourhoods of faulty cells.

    Seed cells are drawn uniformly; each cluster then absorbs the
    ``cluster_size`` nearest unmarked cells (expanding Chebyshev rings in
    a fixed scan order), so correlated variation forms contiguous blobs
    instead of the i.i.d. salt-and-pepper of :func:`build_bitflip_mask`.
    The injection rate still sets the *exact* total number of faulty
    cells, preserving the paper's exact-count contract.
    """
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    mask = np.zeros((rows, cols), dtype=bool)
    remaining = _exact_count(rate, rows * cols)
    max_radius = max(rows, cols)
    while remaining > 0:
        seed_r = int(rng.integers(rows))
        seed_c = int(rng.integers(cols))
        take = min(cluster_size, remaining)
        for radius in range(max_radius + 1):
            if take == 0:
                break
            r_lo, r_hi = max(0, seed_r - radius), min(rows, seed_r + radius + 1)
            c_lo, c_hi = max(0, seed_c - radius), min(cols, seed_c + radius + 1)
            for r in range(r_lo, r_hi):
                for c in range(c_lo, c_hi):
                    if take == 0:
                        break
                    if max(abs(r - seed_r), abs(c - seed_c)) != radius:
                        continue  # interior ring cells were already visited
                    if not mask[r, c]:
                        mask[r, c] = True
                        take -= 1
                        remaining -= 1
    return mask


def build_row_burst_mask(rows: int, cols: int, rate: float, burst_rows: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Row-burst mask: faults fill bands of consecutive crossbar rows.

    Models a degrading row driver taking its neighbouring word lines with
    it: each burst starts at a uniformly drawn row and fills
    ``burst_rows`` consecutive rows cell-by-cell (left to right) until
    the exact injection count is placed.  Fully saturated bursts fall
    back to the first unmarked cell in scan order, so the count contract
    holds at any rate up to 1.
    """
    if burst_rows < 1:
        raise ValueError(f"burst_rows must be >= 1, got {burst_rows}")
    mask = np.zeros((rows, cols), dtype=bool)
    remaining = _exact_count(rate, rows * cols)
    while remaining > 0:
        start = int(rng.integers(rows))
        placed = False
        for r in range(start, min(start + burst_rows, rows)):
            for c in range(cols):
                if remaining == 0:
                    break
                if not mask[r, c]:
                    mask[r, c] = True
                    remaining -= 1
                    placed = True
        if not placed and remaining > 0:
            # the drawn burst was already saturated: place on the first
            # unmarked cell so high rates always terminate
            flat = np.flatnonzero(~mask.reshape(-1))
            mask.reshape(-1)[flat[0]] = True
            remaining -= 1
    return mask


def build_rate_mask(rows: int, cols: int, spec: FaultSpec,
                    rng: np.random.Generator) -> np.ndarray:
    """Mask for one rate-based spec, honouring its spatial mode."""
    if spec.spatial == SpatialMode.CLUSTERED:
        return build_clustered_mask(rows, cols, spec.rate, spec.cluster_size,
                                    rng)
    if spec.spatial == SpatialMode.ROW_BURST:
        return build_row_burst_mask(rows, cols, spec.rate, spec.cluster_size,
                                    rng)
    return build_bitflip_mask(rows, cols, spec.rate, rng)


def _stuck_values(mask: np.ndarray, polarity: StuckPolarity,
                  rng: np.random.Generator) -> np.ndarray:
    """Frozen {0, 1} levels for the set cells of a stuck mask."""
    values = np.zeros(mask.shape, dtype=np.uint8)
    if polarity == StuckPolarity.RANDOM:
        values[mask] = rng.integers(0, 2, size=int(mask.sum()), dtype=np.uint8)
    else:
        values[mask] = polarity.value
    return values


def build_stuck_mask(rows: int, cols: int, rate: float,
                     polarity: StuckPolarity,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Stuck-at mask plus the per-cell frozen levels.

    Returns ``(mask, values)`` where ``values`` holds {0, 1} levels (only
    meaningful where ``mask`` is set).
    """
    mask = build_bitflip_mask(rows, cols, rate, rng)
    return mask, _stuck_values(mask, polarity, rng)


def build_line_mask(rows: int, cols: int, kind: FaultType, count: int,
                    rng: np.random.Generator,
                    indices: np.ndarray | None = None) -> np.ndarray:
    """Mask with ``count`` whole rows or columns set.

    Specific line indices may be forced via ``indices``; otherwise distinct
    lines are drawn uniformly.
    """
    mask = np.zeros((rows, cols), dtype=bool)
    size = rows if kind == FaultType.FAULTY_ROWS else cols
    if count > size:
        raise ValueError(f"cannot mark {count} faulty lines on a size-{size} axis")
    if indices is None:
        indices = rng.choice(size, size=count, replace=False) if count else np.array([], dtype=int)
    if kind == FaultType.FAULTY_ROWS:
        mask[np.asarray(indices, dtype=int), :] = True
    else:
        mask[:, np.asarray(indices, dtype=int)] = True
    return mask


@dataclass
class LayerMasks:
    """All fault state assigned to one mapped layer's crossbar.

    ``flip_mask``/``flip_period`` drive transient (possibly dynamic)
    bit-flips; ``stuck_mask``/``stuck_values`` drive permanent stuck-at
    faults; ``semantics`` record at which level each plane is applied.
    """

    rows: int
    cols: int
    flip_mask: np.ndarray = field(default=None)
    flip_period: int = 0
    stuck_mask: np.ndarray = field(default=None)
    stuck_values: np.ndarray = field(default=None)
    flip_semantics: str = "output"
    stuck_semantics: str = "output"

    def __post_init__(self):
        if self.flip_mask is None:
            self.flip_mask = np.zeros((self.rows, self.cols), dtype=bool)
        if self.stuck_mask is None:
            self.stuck_mask = np.zeros((self.rows, self.cols), dtype=bool)
        if self.stuck_values is None:
            self.stuck_values = np.zeros((self.rows, self.cols), dtype=np.uint8)
        for plane in (self.flip_mask, self.stuck_mask, self.stuck_values):
            if plane.shape != (self.rows, self.cols):
                raise ValueError(
                    f"mask plane shape {plane.shape} != crossbar {(self.rows, self.cols)}")

    @property
    def has_faults(self) -> bool:
        return bool(self.flip_mask.any() or self.stuck_mask.any())

    def fault_counts(self) -> dict[str, int]:
        return {"bitflips": int(self.flip_mask.sum()),
                "stuck": int(self.stuck_mask.sum())}

    def flip_vector(self) -> np.ndarray:
        """Flattened 1-D noise vector (the paper's 'fault vector extraction')."""
        return self.flip_mask.reshape(-1)

    def stuck_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        return self.stuck_mask.reshape(-1), self.stuck_values.reshape(-1)


def assemble_layer_masks(rows: int, cols: int, specs: list[FaultSpec],
                         rng: np.random.Generator) -> LayerMasks:
    """Combine fault specs into one :class:`LayerMasks` for a crossbar.

    Bit-flip and line faults OR into the flip plane (the paper's
    treatment); stuck-at specs OR into the stuck plane with later specs
    winning value conflicts.  A dynamic period on any bit-flip spec applies
    to the whole flip plane (one period per layer, as in Fig. 4c).
    """
    masks = LayerMasks(rows=rows, cols=cols)
    for spec in specs:
        if spec.kind == FaultType.BITFLIP:
            masks.flip_mask |= build_rate_mask(rows, cols, spec, rng)
            if spec.period > 1:
                masks.flip_period = spec.period
            masks.flip_semantics = spec.effective_semantics.value
        elif spec.kind in (FaultType.FAULTY_ROWS, FaultType.FAULTY_COLUMNS):
            masks.flip_mask |= build_line_mask(rows, cols, spec.kind, spec.count, rng)
            masks.flip_semantics = spec.effective_semantics.value
        elif spec.kind == FaultType.STUCK_AT:
            mask = build_rate_mask(rows, cols, spec, rng)
            values = _stuck_values(mask, spec.polarity, rng)
            masks.stuck_mask |= mask
            masks.stuck_values[mask] = values[mask]
            masks.stuck_semantics = spec.effective_semantics.value
        else:
            raise ValueError(f"unhandled fault kind {spec.kind}")
    return masks
