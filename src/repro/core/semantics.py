"""Mask application at the three abstraction levels (DESIGN.md §3).

The FLIM fast path applies masks "by performing another XNOR operation"
on the computed feature map — in the bipolar domain that is a sign flip.
The weight level freezes binarized kernel bits; the product level corrupts
individual XNOR products through the tile schedule and serves as the
device-true reference the fast path is verified against.
"""

from __future__ import annotations

import numpy as np

from .mapping import LayerMapping

__all__ = [
    "apply_output_flips",
    "apply_output_stuck",
    "apply_weight_stuck",
    "product_flip",
    "product_stuck",
]


def _per_image(feature_map: np.ndarray) -> np.ndarray:
    """View of the feature map flattened to (batch, outputs_per_image)."""
    return feature_map.reshape(feature_map.shape[0], -1)


def apply_output_flips(feature_map: np.ndarray, selector: np.ndarray) -> np.ndarray:
    """Flip (negate) the selected output elements of every image.

    On strictly binary tensors this is exactly the paper's Fig. 3 mask
    XNOR; on integer popcount maps it is the op-level upper-bound
    abstraction FLIM trades accuracy for.
    """
    flat = _per_image(feature_map).copy()
    flat[:, selector] = -flat[:, selector]
    return flat.reshape(feature_map.shape)


def apply_output_stuck(feature_map: np.ndarray, selector: np.ndarray,
                       signs: np.ndarray, rail: float) -> np.ndarray:
    """Freeze selected output elements at their rail (canonical stuck-at).

    A transient bit-flip inverts a result that still depends on the data;
    a *dead* gate does not compute at all — its output line is frozen, so
    the accumulated feature-map element rails at ``±rail`` (the reduction
    length K, i.e. all-match / all-mismatch) regardless of the inputs.
    This data-independence is what makes permanent faults so much more
    damaging per injection rate than bit-flips (paper Fig. 4a vs 4b and
    the 10× tighter sweep axis of Fig. 5b).

    ``signs`` holds the ±1 stuck polarity per output position (only read
    where ``selector`` is set).
    """
    flat = _per_image(feature_map).copy()
    flat[:, selector] = signs[selector] * rail
    return flat.reshape(feature_map.shape)


def apply_weight_stuck(qkernel: np.ndarray, kmask: np.ndarray,
                       kvalues: np.ndarray) -> np.ndarray:
    """Freeze binarized kernel bits at their stuck levels.

    ``qkernel`` may be conv-shaped ``(kh, kw, c_in, F)`` or dense-shaped
    ``(K, F)``; the mask planes are ``(K, F)``.
    """
    flat = qkernel.reshape(-1, qkernel.shape[-1])
    out = np.where(kmask, kvalues, flat)
    return out.reshape(qkernel.shape).astype(qkernel.dtype)


def _occurrence_grid(mapping: LayerMapping, t_sel: np.ndarray, f_sel: np.ndarray,
                     positions: int) -> np.ndarray:
    """Occurrence index of ops (p, t, f) for one gate — shape (P, |t|, |f|)."""
    schedule = mapping.schedule
    tile = ((f_sel[None, :] // schedule.cols) * schedule.row_passes
            + (t_sel[:, None] // schedule.rows))
    p = np.arange(positions)[:, None, None]
    return tile[None, :, :] * schedule.positions + p


def product_flip(out_flat: np.ndarray, cols: np.ndarray, qw: np.ndarray,
                 mapping: LayerMapping, flip_cells: list[tuple[int, int]],
                 period: int = 0) -> np.ndarray:
    """Device-true bit-flips: negate individual XNOR products.

    ``out_flat`` is the clean GEMM result ``(batch*P, F)``; ``cols`` the
    bipolar im2col matrix (zeros at padding — padded ops are never
    scheduled, so faults there have no effect); ``qw`` the bipolar kernel
    ``(K, F)``.  A flipped product changes its accumulation by ``-2·p``.
    """
    out = out_flat.copy()
    positions = mapping.schedule.positions
    batch = out_flat.shape[0] // positions
    for row, col in flip_cells:
        t_sel = mapping.cell_terms(row)
        f_sel = mapping.cell_channels(col)
        prods = cols[:, t_sel][:, :, None] * qw[t_sel][:, f_sel][None, :, :]
        if period > 1:
            occ = _occurrence_grid(mapping, t_sel, f_sel, positions)
            active = (occ % period == 0)
            active = np.tile(active, (batch, 1, 1))
            prods = prods * active
        out[:, f_sel] -= 2.0 * prods.sum(axis=1)
    return out


def product_stuck(out_flat: np.ndarray, cols: np.ndarray, qw: np.ndarray,
                  mapping: LayerMapping, stuck_cells: list[tuple[int, int]],
                  stuck_signs: dict[tuple[int, int], float]) -> np.ndarray:
    """Device-true stuck-at: force individual XNOR products to ±1.

    Only ops actually scheduled (non-padding) are affected: a stuck cell
    replaces the product ``x·w`` with the stuck bipolar level.
    """
    out = out_flat.copy()
    for row, col in stuck_cells:
        t_sel = mapping.cell_terms(row)
        f_sel = mapping.cell_channels(col)
        sign = stuck_signs[(row, col)]
        x_block = cols[:, t_sel]
        prods = x_block[:, :, None] * qw[t_sel][:, f_sel][None, :, :]
        valid = (x_block != 0)[:, :, None]
        delta = (sign - prods) * valid
        out[:, f_sel] += delta.sum(axis=1)
    return out
