"""Annotated binary fault-vector files (§III, "Fault vector extraction").

"The 2-dimensional arrays are flattened to 1 dimension.  Furthermore, the
vectors are stored in a binary file annotated with meta-information about
the assigned layer and mask type.  The binary file is independent of the
dataset and reusable for a myriad of experiments."

File layout (little-endian):

========  ======  =====================================================
offset    type    meaning
========  ======  =====================================================
0         4s      magic ``b"FLIM"``
4         u16     format version (currently 1)
6         u32     record count
--- per record ---
          u16     layer-name length, then that many UTF-8 bytes
          u32     crossbar rows
          u32     crossbar cols
          u32     dynamic flip period (0/1 = static)
          u8      flip semantics (0 output, 1 weight, 2 product)
          u8      stuck semantics
          bytes   packed flip mask   (ceil(rows*cols/8) bytes)
          bytes   packed stuck mask  (same length)
          bytes   packed stuck values (same length)
========  ======  =====================================================
"""

from __future__ import annotations

import struct

import numpy as np

from .masks import LayerMasks

__all__ = ["MAGIC", "VERSION", "save_fault_vectors", "load_fault_vectors"]

MAGIC = b"FLIM"
VERSION = 1

_SEMANTICS_CODE = {"output": 0, "weight": 1, "product": 2}
_SEMANTICS_NAME = {code: name for name, code in _SEMANTICS_CODE.items()}


def _pack_plane(plane: np.ndarray) -> bytes:
    return np.packbits(plane.astype(np.uint8).reshape(-1)).tobytes()


def _unpack_plane(payload: bytes, rows: int, cols: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                         count=rows * cols)
    return bits.reshape(rows, cols)


def save_fault_vectors(path, plan: dict[str, LayerMasks]) -> None:
    """Write a fault plan to an annotated binary vector file.

    Raises :class:`ValueError` if a layer name does not fit the format's
    u16 name field (after UTF-8 encoding) — truncating or wrapping it
    silently would corrupt every record that follows.
    """
    chunks = [struct.pack("<4sHI", MAGIC, VERSION, len(plan))]
    for name, masks in plan.items():
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(
                f"layer name too long for the fault-vector format: "
                f"{len(encoded)} UTF-8 bytes (max 65535) for "
                f"{name[:32] + '...' if len(name) > 32 else name!r}")
        chunks.append(struct.pack("<H", len(encoded)))
        chunks.append(encoded)
        chunks.append(struct.pack(
            "<IIIBB", masks.rows, masks.cols, masks.flip_period,
            _SEMANTICS_CODE[masks.flip_semantics],
            _SEMANTICS_CODE[masks.stuck_semantics]))
        chunks.append(_pack_plane(masks.flip_mask))
        chunks.append(_pack_plane(masks.stuck_mask))
        chunks.append(_pack_plane(masks.stuck_values))
    with open(path, "wb") as handle:
        handle.write(b"".join(chunks))


def _take(data: bytes, offset: int, size: int, what: str) -> int:
    """Bounds-check a read of ``size`` bytes; returns the new offset."""
    if offset + size > len(data):
        raise ValueError(
            f"truncated or corrupt fault-vector file: needed {size} bytes "
            f"for {what} at offset {offset}, file ends at {len(data)}")
    return offset + size


def load_fault_vectors(path) -> dict[str, LayerMasks]:
    """Read a fault plan back from an annotated binary vector file.

    Raises :class:`ValueError` (never a bare :class:`struct.error`) on
    foreign, truncated or otherwise corrupt files, naming the field and
    offset where the data ran out.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header_size = struct.calcsize("<4sHI")
    _take(data, 0, header_size, "file header")
    magic, version, count = struct.unpack_from("<4sHI", data, 0)
    if magic != MAGIC:
        raise ValueError(f"not a FLIM fault-vector file (magic {magic!r})")
    if version != VERSION:
        raise ValueError(f"unsupported fault-vector version {version}")
    offset = header_size
    plan: dict[str, LayerMasks] = {}
    for record in range(count):
        what = f"record {record}/{count}"
        _take(data, offset, 2, f"{what} name length")
        (name_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
        end = _take(data, offset, name_len, f"{what} layer name")
        name = data[offset:end].decode("utf-8")
        offset = end
        meta_size = struct.calcsize("<IIIBB")
        _take(data, offset, meta_size, f"{what} ({name}) geometry")
        rows, cols, period, flip_sem, stuck_sem = struct.unpack_from(
            "<IIIBB", data, offset)
        offset += meta_size
        if rows == 0 or cols == 0:
            raise ValueError(f"corrupt fault-vector file: {what} ({name}) "
                             f"declares an empty {rows}x{cols} crossbar")
        if flip_sem not in _SEMANTICS_NAME or stuck_sem not in _SEMANTICS_NAME:
            raise ValueError(
                f"corrupt fault-vector file: {what} ({name}) has unknown "
                f"semantics codes flip={flip_sem} stuck={stuck_sem}")
        plane_bytes = -(-rows * cols // 8)
        _take(data, offset, 3 * plane_bytes, f"{what} ({name}) mask planes")
        flip = _unpack_plane(data[offset:offset + plane_bytes], rows, cols)
        offset += plane_bytes
        stuck = _unpack_plane(data[offset:offset + plane_bytes], rows, cols)
        offset += plane_bytes
        values = _unpack_plane(data[offset:offset + plane_bytes], rows, cols)
        offset += plane_bytes
        plan[name] = LayerMasks(
            rows=rows, cols=cols,
            flip_mask=flip.astype(bool), flip_period=period,
            stuck_mask=stuck.astype(bool), stuck_values=values.astype(np.uint8),
            flip_semantics=_SEMANTICS_NAME[flip_sem],
            stuck_semantics=_SEMANTICS_NAME[stuck_sem])
    return plan
