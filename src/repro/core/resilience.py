"""Fault tolerance for the campaign engine itself.

The paper's premise is that computation must survive device faults; this
module makes the *fault injector* survive its own faults.  A pool worker
SIGKILLed mid-grid, an initializer that raises, a job that hangs — none
of these should cost a running campaign more than the lost cells'
re-evaluation, because every cell's fault plan is a pure function of its
grid coordinates (:mod:`repro.core.engine`): re-running a lost job
yields the bit-identical accuracy, no matter where or when it re-runs.

Three cooperating pieces:

:class:`RetryPolicy`
    Deterministic knobs: attempts per job, exponential backoff, an
    optional per-job wall-clock timeout, a stall watchdog, a pool
    rebuild budget, and whether the executor may *degrade*
    (``shared_memory`` → ``multiprocessing`` → ``serial``) when a pool
    keeps failing.  ``policy=None`` everywhere means the legacy
    semantics: one attempt, first failure raises.
:class:`PoolSupervisor`
    Wraps one ``multiprocessing.Pool`` rung: dispatches tasks with
    ``apply_async`` under a bounded window, re-schedules failed tasks
    with backoff, detects lost workers (a SIGKILLed process is respawned
    by the pool but its in-flight task is silently gone forever) via
    worker-pid churn and a no-results stall watchdog, rebuilds the pool
    and re-dispatches only the in-flight tasks, and quarantines poison
    tasks after ``max_attempts`` failures instead of aborting the grid.
    Shutdown is graceful on success (``close``/``join``); ``terminate``
    is reserved for the error/abandon path.
:func:`supervised_serial`
    The same retry/quarantine contract for in-process execution — the
    bottom rung of the degradation ladder and the serial executor.

Events (:class:`JobRetried`, :class:`JobQuarantined`,
:class:`WorkerLost`, :class:`ExecutorDegraded`) are frozen dataclasses
with JSON-able fields; executors forward them through their ``on_event``
hook, campaigns journal them as ``{"kind": "event", ...}`` lines and
summarize them in ``SweepResult.meta["resilience"]``, and
:mod:`repro.api` mirrors them as typed run events.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = [
    "RetryPolicy",
    "JobRetried",
    "JobQuarantined",
    "WorkerLost",
    "ExecutorDegraded",
    "SupervisorGaveUp",
    "PoolSupervisor",
    "supervised_serial",
    "new_stats",
    "note_stats",
    "stats_to_metrics",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic fault-tolerance knobs for campaign execution.

    Parameters
    ----------
    max_attempts:
        Evaluations of one job before it is quarantined (1 = no retry).
    backoff / backoff_factor / max_backoff:
        Delay before attempt ``n+1`` after ``n`` failures is
        ``min(max_backoff, backoff * backoff_factor**(n-1))`` seconds —
        a pure function of the attempt number, so schedules are
        reproducible.
    job_timeout:
        Optional wall-clock budget (seconds) per dispatched job.  A pool
        cannot cancel a running task, so an expired job triggers a pool
        rebuild; the expired job is charged one failed attempt, the
        other in-flight jobs are re-dispatched unharmed.
    stall_timeout:
        Watchdog: with jobs in flight but no result (and no observed
        worker death) for this long, the pool is presumed wedged and
        rebuilt.
    max_rebuilds:
        Unattributed pool rebuilds (worker loss, stall) tolerated per
        rung before the supervisor gives up — the signal for the
        degradation ladder to move on.  Timeout rebuilds are bounded by
        per-job attempts instead and do not count here.
    degrade:
        Whether the pool executors may fall down their ladder
        (``shared_memory`` → ``multiprocessing`` → ``serial``) when a
        rung keeps failing.  With ``False`` the first rung's failure
        raises :class:`SupervisorGaveUp`.
    """

    max_attempts: int = 3
    backoff: float = 0.25
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    job_timeout: float | None = None
    stall_timeout: float = 60.0
    max_rebuilds: int = 2
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.backoff < 0 or self.backoff_factor < 1 or self.max_backoff < 0:
            raise ValueError("backoff must be >= 0, backoff_factor >= 1, "
                             "max_backoff >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive or None, "
                             f"got {self.job_timeout}")
        if self.stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, "
                             f"got {self.stall_timeout}")
        if self.max_rebuilds < 0:
            raise ValueError(f"max_rebuilds must be >= 0, "
                             f"got {self.max_rebuilds}")

    def delay_for(self, attempt: int) -> float:
        """Backoff (seconds) before the retry that follows failed
        attempt number ``attempt`` (1-based)."""
        return min(self.max_backoff,
                   self.backoff * self.backoff_factor ** (attempt - 1))


# -- typed resilience events ----------------------------------------------

@dataclass(frozen=True)
class JobRetried:
    """One job attempt failed and the job was re-scheduled.

    ``cause`` is ``"error"`` (the job raised) or ``"timeout"`` (its
    wall-clock budget expired); ``attempt`` is the failed attempt
    number; ``delay`` the backoff before the next one.
    """

    point: int
    repeat: int
    attempt: int
    delay: float
    cause: str
    error: str


@dataclass(frozen=True)
class JobQuarantined:
    """A job failed ``attempts`` times and was set aside (its cell
    reports NaN) instead of aborting the campaign."""

    point: int
    repeat: int
    attempts: int
    error: str


@dataclass(frozen=True)
class WorkerLost:
    """A pool worker died (or the pool wedged); the pool was rebuilt and
    the ``in_flight`` jobs re-dispatched without attempt charges."""

    reason: str
    in_flight: int


@dataclass(frozen=True)
class ExecutorDegraded:
    """One rung of the executor ladder kept failing; execution moved
    from ``from_mode`` to ``to_mode`` for the remaining jobs."""

    from_mode: str
    to_mode: str
    reason: str


class SupervisorGaveUp(RuntimeError):
    """A pool rung exhausted its rebuild budget (or a rebuild itself
    failed).  The degradation ladder catches this to move on; with
    ``degrade=False`` it propagates to the caller."""


def new_stats() -> dict[str, Any]:
    """A fresh per-run resilience summary (mutated by :func:`note_stats`,
    always attached to ``SweepResult.meta["resilience"]`` — zeroed on a
    clean run).  This dict is the backward-compatible *view*; the
    canonical counter store is the run's
    :class:`repro.obs.metrics.MetricsRegistry` (see
    :func:`stats_to_metrics`)."""
    return {"retries": 0, "timeouts": 0, "quarantined": [],
            "workers_lost": 0, "degraded": []}


def note_stats(stats: dict[str, Any], record: object) -> None:
    """Fold one resilience event into a :func:`new_stats` summary."""
    if isinstance(record, JobRetried):
        stats["retries"] += 1
        if record.cause == "timeout":
            stats["timeouts"] += 1
    elif isinstance(record, JobQuarantined):
        coord = (record.point, record.repeat)
        if coord not in stats["quarantined"]:
            stats["quarantined"].append(coord)
    elif isinstance(record, WorkerLost):
        stats["workers_lost"] += 1
    elif isinstance(record, ExecutorDegraded):
        stats["degraded"].append(f"{record.from_mode}->{record.to_mode}")


def stats_to_metrics(stats: dict[str, Any], registry: Any) -> None:
    """Fold one run's :func:`new_stats` summary into a
    :class:`repro.obs.metrics.MetricsRegistry` — the single mapping
    from the legacy dict shape to the canonical telemetry counters
    (``repro_jobs_retried_total`` and friends).  Call once per run with
    the finished summary; the dict itself stays attached to
    ``SweepResult.meta["resilience"]`` as the compatibility view."""
    registry.counter("repro_jobs_retried_total",
                     "job attempts that failed and were "
                     "re-scheduled").inc(int(stats.get("retries", 0)))
    registry.counter("repro_job_timeouts_total",
                     "retries caused by per-job wall-clock "
                     "timeouts").inc(int(stats.get("timeouts", 0)))
    registry.counter("repro_jobs_quarantined_total",
                     "poison jobs set aside after exhausting their "
                     "attempts").inc(len(stats.get("quarantined", ())))
    registry.counter("repro_workers_lost_total",
                     "pool workers that died (or wedged) and forced a "
                     "rebuild").inc(int(stats.get("workers_lost", 0)))
    registry.counter("repro_executor_degraded_total",
                     "rungs the executor ladder fell down "
                     "mid-run").inc(len(stats.get("degraded", ())))


def _default_key(task: object) -> tuple[int, int]:
    job = task[0] if isinstance(task, tuple) else task
    return (getattr(job, "point_index", -1), getattr(job, "repeat_index", -1))


# -- supervised serial execution (bottom rung) -----------------------------

def supervised_serial(tasks: Sequence[Any], call: Callable[[Any], Any],
                      policy: RetryPolicy | None = None, *,
                      key: Callable[[Any], tuple[int, int]] = _default_key,
                      on_event: Callable[[object], None] | None = None,
                      sleep: Callable[[float], None] = time.sleep
                      ) -> Iterator[tuple[Any, tuple[str, Any]]]:
    """Run ``call(task)`` per task with the retry/quarantine contract.

    Yields ``(task, ("ok", value))`` or ``(task, ("quarantined",
    error_repr))`` per task, in task order.  With ``policy=None`` the
    first failure raises (legacy semantics).
    """
    def emit(record: object) -> None:
        if on_event is not None:
            on_event(record)

    for task in tasks:
        attempt = 1
        while True:
            try:
                value = call(task)
            except Exception as error:
                if policy is None:
                    raise
                point, repeat = key(task)
                if attempt >= policy.max_attempts:
                    emit(JobQuarantined(point=point, repeat=repeat,
                                        attempts=attempt, error=repr(error)))
                    yield task, ("quarantined", repr(error))
                    break
                delay = policy.delay_for(attempt)
                emit(JobRetried(point=point, repeat=repeat, attempt=attempt,
                                delay=delay, cause="error",
                                error=repr(error)))
                if delay > 0:
                    sleep(delay)
                attempt += 1
                continue
            yield task, ("ok", value)
            break


# -- pool supervision ------------------------------------------------------

#: liveness/stall poll cadence (seconds) while waiting on results
_POLL_INTERVAL = 0.2


class PoolSupervisor:
    """Fault-tolerant dispatch of one task list onto one process pool.

    Parameters
    ----------
    pool_factory:
        Zero-argument callable returning a fresh, initialized
        ``multiprocessing.Pool`` — also used for rebuilds after worker
        loss (the factory re-runs the worker initializer).
    func:
        Picklable module-level function applied to each task in a
        worker.
    tasks:
        The task list.  Tasks need not be hashable; identity is by
        index.
    policy:
        :class:`RetryPolicy`, or ``None`` for legacy semantics (single
        attempt, first failure raises, no liveness monitoring).
    key:
        ``key(task) -> (point, repeat)`` grid coordinates for event
        reporting.
    on_event:
        Receives :class:`JobRetried` / :class:`JobQuarantined` /
        :class:`WorkerLost` records as they happen.
    window:
        Maximum tasks in flight at once (defaults to the pool size
        passed by the executor); a bounded window keeps dispatch close
        to start so ``job_timeout`` deadlines measure actual work.

    :meth:`run` is a generator yielding ``(task, ("ok", value))`` /
    ``(task, ("quarantined", error_repr))`` as results arrive
    (unordered).  After a :class:`SupervisorGaveUp`, :meth:`unfinished`
    lists the tasks that never produced an outcome — the degradation
    ladder hands exactly those to the next rung.
    """

    def __init__(self, pool_factory: Callable[[], Any],
                 func: Callable[[Any], Any],
                 tasks: Sequence[Any], policy: RetryPolicy | None = None, *,
                 key: Callable[[Any], tuple[int, int]] = _default_key,
                 on_event: Callable[[object], None] | None = None,
                 window: int = 8) -> None:
        self._pool_factory = pool_factory
        self._func = func
        self._tasks = list(tasks)
        self.policy = policy
        self._key = key
        self._on_event = on_event
        self._window = max(1, window)
        self._unfinished: set[int] = set(range(len(self._tasks)))

    def unfinished(self) -> list[Any]:
        """Tasks with no outcome yet (for hand-off to the next rung)."""
        return [self._tasks[index] for index in sorted(self._unfinished)]

    def _emit(self, record: object) -> None:
        if self._on_event is not None:
            self._on_event(record)

    @staticmethod
    def _pool_pids(pool: Any) -> set[int | None]:
        processes = getattr(pool, "_pool", None)
        if not processes:
            return set()
        return {process.pid for process in processes}

    @staticmethod
    def _workers_churned(pool: Any, pids: set[int | None]) -> bool:
        """Whether the pool replaced (or holds dead) worker processes —
        the observable trace of a killed worker, whose in-flight task is
        gone for good (the pool respawns processes, not tasks)."""
        processes = getattr(pool, "_pool", None)
        if processes is None:  # unexpected pool implementation: no signal
            return False
        current = {process.pid for process in processes}
        if current != pids:
            return True
        return any(not process.is_alive() for process in processes)

    def run(self) -> Iterator[tuple[Any, tuple[str, Any]]]:
        import queue as queue_mod

        policy = self.policy
        results: queue_mod.SimpleQueue[tuple[int, bool, Any]] = \
            queue_mod.SimpleQueue()
        todo: deque[tuple[int, int]] = \
            deque((index, 1) for index in range(len(self._tasks)))
        retries: list[tuple[float, int, int, int]] = \
            []                   # heap of (due, tiebreak, task_index, attempt)
        pending: dict[int, tuple[int, int, float | None]] = \
            {}                   # dispatch token -> (task_index, attempt, deadline)
        tokens = itertools.count()
        tiebreak = itertools.count()
        rebuilds = 0
        pool = None
        completed = False
        try:
            pool = self._pool_factory()
            pids = self._pool_pids(pool)
            last_progress = time.monotonic()
            while self._unfinished:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, index, attempt = heapq.heappop(retries)
                    todo.append((index, attempt))
                while todo and len(pending) < self._window:
                    index, attempt = todo.popleft()
                    token = next(tokens)
                    deadline = (now + policy.job_timeout
                                if policy is not None
                                and policy.job_timeout is not None else None)
                    pending[token] = (index, attempt, deadline)
                    pool.apply_async(
                        self._func, (self._tasks[index],),
                        callback=lambda value, token=token:
                            results.put((token, True, value)),
                        error_callback=lambda error, token=token:
                            results.put((token, False, error)))
                try:
                    token, ok, value = results.get(
                        timeout=self._wait_timeout(pending, retries,
                                                   last_progress))
                except queue_mod.Empty:
                    if policy is None:
                        continue
                    (pool, pids, rebuilds, last_progress,
                     terminal) = self._health_check(
                        pool, pids, pending, todo, retries, rebuilds,
                        last_progress)
                    for index, outcome in terminal:
                        self._unfinished.discard(index)
                        yield self._tasks[index], outcome
                    continue
                entry = pending.pop(token, None)
                if entry is None:
                    continue  # straggler from before a rebuild: ignore
                index, attempt, _ = entry
                last_progress = time.monotonic()
                if ok:
                    self._unfinished.discard(index)
                    yield self._tasks[index], ("ok", value)
                elif policy is None:
                    raise value
                else:
                    outcome = self._attempt_failed(index, attempt, value,
                                                   retries, tiebreak,
                                                   cause="error")
                    if outcome is not None:
                        self._unfinished.discard(index)
                        yield self._tasks[index], outcome
                if policy is not None and self._workers_churned(pool, pids):
                    pool, pids, rebuilds = self._worker_loss(
                        pool, pending, todo, rebuilds,
                        "worker process died mid-run")
                    last_progress = time.monotonic()
            completed = True
        finally:
            if pool is not None:
                # success drains gracefully; errors and an abandoned
                # consumer (GeneratorExit) must not wait on stragglers
                if completed:
                    pool.close()
                else:
                    pool.terminate()
                pool.join()

    def _wait_timeout(self, pending: dict[int, tuple[int, int, float | None]],
                      retries: list[tuple[float, int, int, int]],
                      last_progress: float) -> float | None:
        """How long to block on the result queue before a health check.
        ``None`` (block forever) only under legacy ``policy=None``."""
        policy = self.policy
        if policy is None:
            return None
        now = time.monotonic()
        wait = _POLL_INTERVAL
        if retries:
            wait = min(wait, retries[0][0] - now)
        for _, _, deadline in pending.values():
            if deadline is not None:
                wait = min(wait, deadline - now)
        if pending:
            wait = min(wait, last_progress + policy.stall_timeout - now)
        return max(0.0, wait)

    def _attempt_failed(self, index: int, attempt: int, error: object,
                        retries: list[tuple[float, int, int, int]],
                        tiebreak: Iterator[int], *, cause: str
                        ) -> tuple[str, Any] | None:
        """Schedule a retry (returns ``None``) or quarantine (returns
        the terminal outcome) after one failed attempt."""
        policy = self.policy
        assert policy is not None  # callers gate on a configured policy
        point, repeat = self._key(self._tasks[index])
        if attempt >= policy.max_attempts:
            self._emit(JobQuarantined(point=point, repeat=repeat,
                                      attempts=attempt, error=repr(error)))
            return ("quarantined", repr(error))
        delay = policy.delay_for(attempt)
        self._emit(JobRetried(point=point, repeat=repeat, attempt=attempt,
                              delay=delay, cause=cause, error=repr(error)))
        heapq.heappush(retries, (time.monotonic() + delay, next(tiebreak),
                                 index, attempt + 1))
        return None

    def _health_check(self, pool: Any, pids: set[int | None],
                      pending: dict[int, tuple[int, int, float | None]],
                      todo: deque[tuple[int, int]],
                      retries: list[tuple[float, int, int, int]],
                      rebuilds: int, last_progress: float
                      ) -> tuple[Any, set[int | None], int, float,
                                 list[tuple[int, tuple[str, Any]]]]:
        """Timeout / worker-loss / stall handling on a quiet poll.

        Returns the (possibly rebuilt) pool state plus a list of
        ``(task_index, terminal_outcome)`` pairs for jobs quarantined by
        an expired wall-clock budget — :meth:`run` yields those.
        """
        policy = self.policy
        assert policy is not None  # run() only health-checks under a policy
        now = time.monotonic()
        terminal: list[tuple[int, tuple[str, Any]]] = []
        expired = [token for token, (_, _, deadline) in pending.items()
                   if deadline is not None and deadline <= now]
        if expired:
            # a pool cannot cancel a running task: rebuild, charging the
            # expired job(s) one attempt and re-dispatching the rest
            tiebreak = itertools.count(len(retries))
            for token in expired:
                index, attempt, _ = pending.pop(token)
                budget = policy.job_timeout
                outcome = self._attempt_failed(
                    index, attempt,
                    TimeoutError(f"job exceeded its {budget:g}s wall-clock "
                                 "budget"),
                    retries, tiebreak, cause="timeout")
                if outcome is not None:
                    terminal.append((index, outcome))
            pool = self._rebuild(pool, pending, todo,
                                 f"{len(expired)} job(s) timed out")
            return (pool, self._pool_pids(pool), rebuilds, time.monotonic(),
                    terminal)
        if self._workers_churned(pool, pids):
            pool, pids, rebuilds = self._worker_loss(
                pool, pending, todo, rebuilds, "worker process died mid-run")
            return pool, pids, rebuilds, time.monotonic(), terminal
        if pending and now - last_progress > policy.stall_timeout:
            pool, pids, rebuilds = self._worker_loss(
                pool, pending, todo, rebuilds,
                f"no results for {policy.stall_timeout:g}s with "
                f"{len(pending)} job(s) in flight")
            return pool, pids, rebuilds, time.monotonic(), terminal
        return pool, pids, rebuilds, last_progress, terminal

    def _worker_loss(self, pool: Any,
                     pending: dict[int, tuple[int, int, float | None]],
                     todo: deque[tuple[int, int]], rebuilds: int,
                     reason: str) -> tuple[Any, set[int | None], int]:
        """Unattributed loss: emit, count against the rebuild budget,
        rebuild the pool, and re-dispatch the in-flight tasks with their
        attempt counts unchanged (innocent bystanders pay nothing)."""
        policy = self.policy
        assert policy is not None  # only a configured policy rebuilds pools
        self._emit(WorkerLost(reason=reason, in_flight=len(pending)))
        rebuilds += 1
        if rebuilds > policy.max_rebuilds:
            pool.terminate()
            pool.join()
            raise SupervisorGaveUp(
                f"pool rebuilt {policy.max_rebuilds} time(s) and "
                f"workers kept dying ({reason}); "
                f"{len(self._unfinished)} job(s) unfinished")
        pool = self._rebuild(pool, pending, todo, reason)
        return pool, self._pool_pids(pool), rebuilds

    def _rebuild(self, pool: Any,
                 pending: dict[int, tuple[int, int, float | None]],
                 todo: deque[tuple[int, int]], reason: str) -> Any:
        """Terminate + recreate the pool, requeueing every in-flight
        task at its current attempt count."""
        pool.terminate()
        pool.join()
        for index, attempt, _ in pending.values():
            todo.append((index, attempt))
        pending.clear()
        try:
            return self._pool_factory()
        except Exception as error:
            raise SupervisorGaveUp(
                f"pool rebuild after {reason!r} failed: {error!r}"
            ) from error
