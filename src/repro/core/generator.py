"""The Fault Generator (Fig. 2a).

"The Fault Generator constructs a set of fault vectors encoding the fault
type, location, and injection rate.  This tool is implemented in vanilla
Python and hence, independent of the fault injection mechanism." — §III.

Mask generation is an offline process: the expensive distribution and
mapping of faults happens once per plan and is reused over the whole
simulation (and, through :mod:`repro.core.vectors`, over a myriad of
experiments).
"""

from __future__ import annotations

import numpy as np

from ..binary.layers import QuantLayer
from ..nn.model import Sequential
from .faults import FaultSpec
from .mapping import LayerMapping
from .masks import LayerMasks, assemble_layer_masks

__all__ = ["FaultPlan", "FaultGenerator", "mapped_layers"]

#: A fault plan assigns each mapped layer (by name) its crossbar masks.
FaultPlan = dict[str, LayerMasks]


def mapped_layers(model: Sequential,
                  names: list[str] | None = None) -> list[QuantLayer]:
    """The LIM-mapped quantized layers of a model, optionally filtered.

    Only fully binarized conv/dense layers are mapped (the paper follows
    X-Fault's conservative approach: non-binary ops run in CMOS).
    """
    layers = [layer for layer in model.layers_of_type(QuantLayer) if layer.is_mapped]
    if names is None:
        return layers
    by_name = {layer.name: layer for layer in layers}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise KeyError(f"not mapped layers of this model: {missing}; "
                       f"mapped: {sorted(by_name)}")
    return [by_name[name] for name in names]


class FaultGenerator:
    """Builds fault plans: distribution + mapping + vector extraction.

    Parameters
    ----------
    rows, cols:
        Crossbar geometry; every mapped layer gets its own crossbar with
        these dimensions ("each layer is mapped onto a single crossbar").
    specs:
        Fault directives, combined per layer (e.g. bit-flips + stuck-at).
    seed:
        Seed of the generator's private RNG.  The paper re-runs each
        experiment a hundred times, reinitializing the random generator
        with a new seed value — create one generator per repetition.
    """

    def __init__(self, specs: list[FaultSpec] | FaultSpec,
                 rows: int = 40, cols: int = 10, seed: int = 0):
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        self.rows = rows
        self.cols = cols
        self.rng = np.random.default_rng(seed)

    @staticmethod
    def job_seed(base_seed: int, point_index: int, repeat_index: int) -> int:
        """Deterministic per-(sweep point, repetition) generator seed.

        The campaign protocol re-seeds every repetition ("reinitialized the
        random generator with a new seed value", §IV); spreading the grid
        over two primes keeps every job's seed distinct while remaining a
        pure function of the grid coordinates — serial, parallel and
        resumed runs all draw identical fault plans.
        """
        return base_seed + 7919 * repeat_index + 104729 * point_index

    def generate(self, model: Sequential,
                 layers: list[str] | None = None) -> FaultPlan:
        """Draw fresh masks for every (selected) mapped layer.

        Specs carrying their own ``layers`` restriction (composite plans
        — e.g. a compiled scenario whose clauses target different layer
        subsets) only contribute to the masks of the layers they name;
        specs with ``layers=None`` apply everywhere, as before.  Mask
        draws happen layer by layer in model order from this generator's
        single RNG, so a composite plan is as deterministic under its
        seed as a uniform one.
        """
        plan: FaultPlan = {}
        for layer in mapped_layers(model, layers):
            specs = [spec for spec in self.specs
                     if spec.layers is None or layer.name in spec.layers]
            plan[layer.name] = assemble_layer_masks(
                self.rows, self.cols, specs, self.rng)
        return plan

    def mapping_for(self, layer: QuantLayer) -> LayerMapping:
        return LayerMapping(layer, self.rows, self.cols)

    def report(self, model: Sequential,
               layers: list[str] | None = None) -> list[dict[str, object]]:
        """Per-layer mapping report: parallel ops, totals, reuse factors."""
        return [self.mapping_for(layer).describe()
                for layer in mapped_layers(model, layers)]

    def extract_vectors(self, plan: FaultPlan, path) -> None:
        """Serialize the plan as an annotated binary fault-vector file.

        The file is independent of the dataset and reusable across
        experiments (§III, "Fault vector extraction").
        """
        from .vectors import save_fault_vectors
        save_fault_vectors(path, plan)
