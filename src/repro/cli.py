"""Command-line interface to the FLIM platform.

Usage::

    python -m repro <command> [options]

Commands
--------
``run``           run any registered experiment (``repro.api``)
``list``          the experiment registry
``describe``      one experiment's parameters + an example invocation
``serve``         run the campaign service (async job server)
``submit``        queue an experiment on a running service
``status``        job records of a running service
``watch``         stream a job's events until it finishes
``fetch``         fetch and print a finished job's report
``cancel``        cancel a queued or running job
``trace``         render a journal's trace spans as a timeline
``report``        mapping report of a model (ops per crossbar, reuse)
``vectors``       generate an annotated fault-vector file for a model
``inspect``       print the contents of a fault-vector file
``sweep``         deprecated shim for ``run sweep``
``scenarios``     scenario zoo listing (``list``) and the deprecated
                  ``run`` shim for ``run <scenario-name>``
``table1``        the adopted experimental setup (paper Table I)
``table2``        model characteristics (paper Table II)
``cost``          per-layer LIM energy/latency estimate of a model

Exit codes are uniform across every subcommand:

* ``0`` — success;
* ``2`` — usage/validation error (unknown experiment, malformed
  ``--param`` or scenario spec, a journal that does not match the
  requested campaign, argparse usage errors);
* ``1`` — runtime failure inside a valid request.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import markdown_table
from .core import (FaultGenerator, FaultSpec, FaultType, load_fault_vectors)
from .models import build_lenet, build_model, model_names

__all__ = ["main"]


def _resolve_model(name: str, seed: int = 0):
    if name == "lenet":
        return build_lenet(seed=seed)
    return build_model(name, seed=seed)


# -- the one event renderer every streaming command shares ----------------

def _event_renderer(show_cells: bool, stream=None):
    """A RunHandle subscriber rendering typed events to ``stream``.

    This replaces the per-subcommand ``progress`` closures: warnings are
    always surfaced; per-cell lines only when the caller asked
    (``show_cells`` — journaled or ``--progress`` runs).
    """
    from .api import (CellDone, CheckpointDone, ExecutorDegraded,
                      JobQuarantined, JobRetried, JobStateChanged,
                      RunFinished, RunStarted, RunWarning,
                      TelemetrySnapshot, WorkerLost)
    out = stream or sys.stderr

    def render(event):
        if isinstance(event, RunStarted):
            if show_cells:
                print(f"run: {event.experiment}", file=out)
        elif isinstance(event, RunFinished):
            return  # the command prints the assembled report itself
        elif isinstance(event, CellDone) and show_cells:
            print(f"[{event.done}/{event.total}] {event.series} "
                  f"point {event.point} repeat {event.repeat}: "
                  f"{100 * event.accuracy:.1f}%", file=out)
        elif isinstance(event, CheckpointDone) and show_cells:
            print(f"checkpoint {event.index + 1}/{event.total} "
                  f"(age {event.age:g}) complete", file=out)
        elif isinstance(event, RunWarning):
            print(f"warning: {event.message}", file=out)
        elif isinstance(event, JobRetried):
            print(f"retry: cell ({event.point}, {event.repeat}) "
                  f"attempt {event.attempt} failed ({event.cause}); "
                  f"retrying in {event.delay:g}s", file=out)
        elif isinstance(event, JobQuarantined):
            print(f"quarantined: cell ({event.point}, {event.repeat}) "
                  f"failed {event.attempts} attempt(s); its accuracy "
                  "is NaN", file=out)
        elif isinstance(event, WorkerLost):
            print(f"worker lost: {event.reason}; pool rebuilt, "
                  f"{event.in_flight} in-flight job(s) re-dispatched",
                  file=out)
        elif isinstance(event, ExecutorDegraded):
            print(f"degrading executor: {event.from_mode} -> "
                  f"{event.to_mode} ({event.reason})", file=out)
        elif isinstance(event, JobStateChanged):
            line = f"job {event.job_id}: {event.state}"
            if event.error:
                line += f" ({event.error})"
            print(line, file=out)
        elif isinstance(event, TelemetrySnapshot) and show_cells:
            phases = " ".join(f"{name}={seconds:.2f}s" for name, seconds
                              in sorted(event.phases.items()))
            print(f"telemetry: {phases}", file=out)
    return render


def _cache_bytes(args) -> int | None:
    return (args.cache_cap * 2 ** 20 if args.cache_cap is not None
            else None)


def _default_executor(args) -> str:
    if args.executor is not None:
        return args.executor
    serial = args.jobs is None or args.jobs == 1
    return "serial" if serial else "multiprocessing"


# -- registry commands: run / list / describe -----------------------------

def _parse_param_tokens(tokens) -> dict:
    from .api import ApiError
    params = {}
    for token in tokens or ():
        name, separator, value = token.partition("=")
        if not separator or not name:
            raise ApiError(f"malformed --param {token!r}; expected "
                           "--param name=value")
        params[name] = value
    return params


def _cmd_run(args) -> int:
    from . import api
    request = api.RunRequest(
        experiment=args.experiment,
        params=_parse_param_tokens(args.param),
        executor=_default_executor(args), n_jobs=args.jobs or None,
        backend=args.backend, cache_bytes=_cache_bytes(args),
        journal=args.journal, resume=args.resume, quick=args.quick,
        retries=args.retries, job_timeout=args.job_timeout,
        degrade=not args.no_degrade)
    handle = api.submit(request)
    handle.subscribe(_event_renderer(
        show_cells=args.progress or bool(args.journal)))
    report = handle.run()
    _print_report(report)
    if args.out:
        path = report.save(args.out)
        print(f"[report] {path}")
    return 0


def _print_report(report) -> None:
    engine = report.engine
    header = f"experiment: {report.experiment}"
    if report.baseline is not None:
        header += f"  baseline: {100 * report.baseline:.1f}%"
    header += f"  [{engine['executor']}/{engine['backend']}]"
    print(header)
    resumed = report.meta.get("resumed_cells")
    for name, path in sorted(report.artifacts.items()):
        if name.startswith("journal"):
            print(f"{name}: {path}"
                  + (f" ({resumed} cells resumed)"
                     if resumed is not None else ""))
    if report.series:
        rows = []
        for series in report.series:
            for x, mean, std in zip(series.xs, series.mean, series.std):
                rows.append((series.label, f"{x:g}", f"{100 * mean:.1f}",
                             f"{100 * std:.1f}"))
        print(markdown_table(["series", "x", "accuracy %", "std %"], rows))
    for name, payload in report.tables.items():
        print(f"\n[{name}]")
        if isinstance(payload, dict) and "columns" in payload:
            print(markdown_table(payload["columns"],
                                 [tuple(row) for row in payload["rows"]]))
        else:
            import json
            print(json.dumps(payload, indent=2, default=str))


def _cmd_list(args) -> int:
    from . import api
    if args.names:
        for name in api.experiment_names():
            print(name)
        return 0
    rows = []
    for name in api.experiment_names():
        info = api.describe(name)
        description = info["description"]
        if len(description) > 56:
            description = description[:53] + "..."
        rows.append((name, len(info["params"]),
                     "yes" if info["supports_journal"] else "no",
                     description))
    print(markdown_table(["experiment", "params", "journal", "description"],
                         rows))
    return 0


def _format_param_value(kind: str, value) -> str:
    """CLI text for one param value (delegates to Param.format — the
    single source of truth for the ``--param`` syntax)."""
    from .api import Param
    return Param("_", kind).format(value)


def _cmd_describe(args) -> int:
    from . import api
    info = api.describe(args.experiment)
    print(f"{info['name']} — {info['description']}")
    if info["aliases"]:
        print(f"aliases: {', '.join(info['aliases'])}")
    print(f"journal support: {'yes' if info['supports_journal'] else 'no'}")
    if info["params"]:
        rows = []
        for param in info["params"]:
            default = ("" if param["default"] is None
                       else _format_param_value(param["kind"],
                                                param["default"]))
            quick = info["quick"].get(param["name"])
            rows.append((param["name"], param["kind"], default,
                         "" if quick is None
                         else _format_param_value(param["kind"], quick),
                         param.get("help", "")))
        print(markdown_table(["param", "kind", "default", "quick", "help"],
                             rows))
    # params without a default (e.g. scenario's name/spec) fall back to
    # their quick value so the printed invocation actually runs
    tokens = []
    for param in info["params"]:
        value = param["default"]
        if value is None:
            value = info["quick"].get(param["name"])
        if value is not None:
            tokens.append(f"--param {param['name']}="
                          f"{_format_param_value(param['kind'], value)}")
    print("invocation:")
    print(f"  python -m repro run {info['name']} " + " ".join(tokens))
    return 0


# -- campaign service: serve / submit / status / watch / fetch / cancel ---

def _service_client(args):
    from .service import ServiceClient
    return ServiceClient(host=args.host, port=args.port, client=args.client)


def _cmd_serve(args) -> int:
    from .service.server import serve_from_args
    return serve_from_args(args)


def _cmd_submit(args) -> int:
    """Submit an experiment to a running service; prints the job id
    (bare, on stdout) so shells can capture it."""
    from . import api
    request = api.RunRequest(
        experiment=args.experiment,
        params=_parse_param_tokens(args.param),
        executor=_default_executor(args), n_jobs=args.jobs or None,
        backend=args.backend, cache_bytes=_cache_bytes(args),
        quick=args.quick, retries=args.retries,
        job_timeout=args.job_timeout, degrade=not args.no_degrade)
    record = _service_client(args).submit(request, durable=args.durable)
    print(f"queued {record.request.experiment} as {record.job_id}"
          + (" (durable)" if record.durable else ""), file=sys.stderr)
    print(record.job_id)
    return 0


def _job_row(record) -> tuple:
    return (record.job_id, record.request.experiment,
            record.state.value, "yes" if record.durable else "no",
            record.resumes, record.error)


def _cmd_status(args) -> int:
    client = _service_client(args)
    header = ["job", "experiment", "state", "durable", "resumes", "error"]
    if args.job:
        records = [client.job(args.job)]
    else:
        records = client.jobs()
    print(markdown_table(header, [_job_row(record) for record in records]))
    return 0


def _cmd_watch(args) -> int:
    """Stream a job's events until it reaches a terminal state;
    exit 0 only for ``done``."""
    from .service.jobs import JobState
    client = _service_client(args)
    record = client.watch(args.job,
                          on_event=_event_renderer(show_cells=True))
    line = f"job {record.job_id}: {record.state.value}"
    if record.error:
        line += f" ({record.error})"
    print(line)
    return 0 if record.state is JobState.DONE else 1


def _cmd_fetch(args) -> int:
    """Fetch a finished job's report and print it like ``repro run``."""
    from .service import wire
    payload = _service_client(args).result(args.job)
    report = wire.decode_report(payload)
    _print_report(report)
    if args.out:
        path = report.save(args.out)
        print(f"[report] {path}")
    return 0


def _cmd_cancel(args) -> int:
    record = _service_client(args).cancel(args.job)
    print(f"job {record.job_id}: {record.state.value}")
    return 0


def _cmd_trace(args) -> int:
    """Render the trace spans of a campaign journal as a timeline."""
    from .obs.trace import load_trace, render_timeline
    spans = load_trace(args.journal)
    print(render_timeline(spans), end="")
    return 0


# -- standalone inspection commands ---------------------------------------

def _cmd_report(args) -> int:
    model = _resolve_model(args.model)
    generator = FaultGenerator(FaultSpec.bitflip(0.0),
                               rows=args.rows, cols=args.cols)
    entries = generator.report(model)
    header = ["layer", "crossbar", "parallel ops", "XNOR ops/image", "reuse"]
    rows = [(e["layer"], f"{e['crossbar'][0]}x{e['crossbar'][1]}",
             e["parallel_xnor_ops"], e["xnor_ops_per_image"], e["cell_reuse"])
            for e in entries]
    print(markdown_table(header, rows))
    return 0


def _build_spec(args) -> FaultSpec:
    kind = FaultType(args.fault)
    if kind == FaultType.BITFLIP:
        return FaultSpec.bitflip(args.rate, period=args.period)
    if kind == FaultType.STUCK_AT:
        return FaultSpec.stuck_at(args.rate)
    if kind == FaultType.FAULTY_ROWS:
        return FaultSpec.faulty_rows(args.count)
    return FaultSpec.faulty_columns(args.count)


def _cmd_vectors(args) -> int:
    model = _resolve_model(args.model)
    generator = FaultGenerator(_build_spec(args), rows=args.rows,
                               cols=args.cols, seed=args.seed)
    plan = generator.generate(model)
    generator.extract_vectors(plan, args.output)
    total = sum(masks.fault_counts()["bitflips"] + masks.fault_counts()["stuck"]
                for masks in plan.values())
    print(f"wrote {len(plan)} layer records ({total} faulty cells) "
          f"to {args.output}")
    return 0


def _cmd_inspect(args) -> int:
    plan = load_fault_vectors(args.path)
    header = ["layer", "crossbar", "bitflips", "period", "stuck",
              "flip semantics", "stuck semantics"]
    rows = []
    for name, masks in plan.items():
        counts = masks.fault_counts()
        rows.append((name, f"{masks.rows}x{masks.cols}", counts["bitflips"],
                     masks.flip_period, counts["stuck"],
                     masks.flip_semantics, masks.stuck_semantics))
    print(markdown_table(header, rows))
    return 0


# -- deprecated shims over the registry -----------------------------------

def _cmd_sweep(args) -> int:
    """Thin shim: ``repro sweep`` == ``repro run sweep`` (deprecated)."""
    from . import api
    from ._compat import warn_legacy
    warn_legacy("repro sweep", "repro run sweep")
    print("note: 'repro sweep' is deprecated; use 'repro run sweep' "
          "(see: repro describe sweep)", file=sys.stderr)
    request = api.RunRequest(
        "sweep",
        params=dict(fault=args.fault, rates=list(args.rates),
                    repeats=args.repeats, images=args.images,
                    rows=args.rows, cols=args.cols),
        executor=_default_executor(args), n_jobs=args.jobs or None,
        backend=args.backend, cache_bytes=_cache_bytes(args),
        journal=args.journal, resume=args.resume,
        retries=args.retries, job_timeout=args.job_timeout,
        degrade=not args.no_degrade)
    handle = api.submit(request)
    handle.subscribe(_event_renderer(show_cells=bool(args.journal)))
    result = handle.run().raw
    if args.journal:
        print(f"journal: {args.journal} "
              f"({result.meta['resumed_cells']} cells resumed)")
    print(f"baseline: {100 * result.baseline:.1f}%  "
          f"[{result.meta['executor']}/{result.meta['backend']}]")
    rows = [(f"{x:g}", f"{100 * m:.1f}", f"{100 * s:.1f}")
            for x, m, s in result.as_rows()]
    print(markdown_table(["rate", "accuracy %", "std %"], rows))
    return 0


def _cmd_scenarios_list(args) -> int:
    from .scenarios import get_scenario, scenario_names
    header = ["name", "checkpoints", "environments", "clauses", "story"]
    rows = []
    for name in scenario_names():
        scenario = get_scenario(name)
        clauses = (len(scenario.clauses)
                   + sum(len(e.clauses) for e in scenario.episodes))
        story = scenario.description
        if len(story) > 64:
            story = story[:61] + "..."
        rows.append((name, len(scenario.timeline.ages),
                     "+".join(scenario.episode_names()), clauses, story))
    print(markdown_table(header, rows))
    return 0


def _cmd_scenarios_run(args) -> int:
    """Thin shim: ``repro scenarios run X`` == ``repro run X``
    (deprecated)."""
    from . import api
    from ._compat import warn_legacy
    warn_legacy("repro scenarios run",
                "repro run <scenario-name> (or: repro run scenario)")
    print("note: 'repro scenarios run' is deprecated; use "
          "'repro run <scenario-name>' (see: repro list)", file=sys.stderr)
    if args.name is None and args.spec is None:
        print("error: name a zoo scenario or pass --spec FILE "
              "(see: repro scenarios list)", file=sys.stderr)
        return 2
    if args.name is not None and args.spec is not None:
        print(f"error: both a zoo name ({args.name!r}) and --spec given; "
              "pick one", file=sys.stderr)
        return 2
    request = api.RunRequest(
        "scenario",
        params=dict(name=args.name, spec=args.spec, repeats=args.repeats,
                    images=args.images, rows=args.rows, cols=args.cols,
                    seed=args.seed),
        executor=_default_executor(args), n_jobs=args.jobs or None,
        backend=args.backend, cache_bytes=_cache_bytes(args),
        journal=args.journal, resume=args.resume,
        retries=args.retries, job_timeout=args.job_timeout,
        degrade=not args.no_degrade)
    handle = api.submit(request)
    handle.subscribe(_event_renderer(show_cells=bool(args.journal)))
    result = handle.run().raw
    if args.journal:
        print(f"journal: {args.journal} "
              f"({result.sweep.meta['resumed_cells']} cells resumed)")
    print(f"scenario: {result.scenario.name}  "
          f"baseline: {100 * result.baseline:.1f}%  "
          f"[{result.meta['executor']}/{result.meta['backend']}]")
    multi = len(result.episodes) > 1
    header = ["age (cycles)", "stuck rate"]
    header += [f"{name} %" for name in result.episodes]
    if multi:
        header.append("blended %")
    rows = []
    for record in result.as_rows():
        row = [f"{record['age']:g}", f"{record['stuck_rate']:.4f}"]
        for name in result.episodes:
            episode = record["episodes"][name]
            row.append(f"{100 * episode['mean']:.1f}"
                       + (f" ±{100 * episode['std']:.1f}"
                          if args.repeats > 1 else ""))
        if multi:
            row.append(f"{100 * record['blended']:.1f}")
        rows.append(tuple(row))
    print(markdown_table(header, rows))
    return 0


def _cmd_lint(args) -> int:
    """Registry-independent static-analysis gate (``repro.lint``).

    Exit codes follow the repo convention: 0 clean, 1 findings, 2
    usage/validation errors (``LintUsageError`` is a ``ValueError``, so
    :func:`main` maps it like every other validation failure).
    """
    from .lint import lint_command
    return lint_command(args.paths, root=args.root, baseline=args.baseline,
                        update_baseline=args.write_baseline,
                        list_rules=args.list_rules, json_output=args.json,
                        changed=args.changed)


def _cmd_table1(args) -> int:
    from .experiments.tables import table1_setup
    for key, value in table1_setup():
        print(f"{key:22s} {value}")
    return 0


def _cmd_table2(args) -> int:
    from .experiments.tables import table2_model_stats
    rows = table2_model_stats(measure_accuracy=not args.no_accuracy)
    header = ["model", "top1%", "size MB", "params", "MACs", "bin%"]
    print(markdown_table(header, [
        (r["model"], r["top1_pct"], r["size_mb"], r["params"], r["macs"],
         r["binarized_pct"]) for r in rows]))
    return 0


def _cmd_cost(args) -> int:
    from .lim import estimate_model_cost
    model = _resolve_model(args.model)
    costs = estimate_model_cost(model, rows=args.rows, cols=args.cols,
                                gate_family=args.gate)
    header = ["layer", "XNOR ops", "driver steps", "energy nJ", "latency us"]
    print(markdown_table(header, [c.row() for c in costs]))
    total_e = sum(c.energy_nj for c in costs)
    total_l = sum(c.latency_us for c in costs)
    print(f"\ntotal per image ({args.gate}): {total_e:.2f} nJ, "
          f"{total_l:.2f} us")
    return 0


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine options every campaign-running command shares."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run the campaign on N worker processes "
                             "(default: 1 = in-process serial; 0 = all "
                             "cores)")
    parser.add_argument("--executor", default=None,
                        choices=["serial", "multiprocessing",
                                 "shared_memory"],
                        help="executor override (default: serial for "
                             "--jobs<=1, multiprocessing otherwise); "
                             "shared_memory attaches the test set "
                             "zero-copy in every worker")
    parser.add_argument("--backend", default="float",
                        choices=["float", "packed"],
                        help="inference backend: float GEMM or packed "
                             "uint64 XNOR/popcount (bit-identical)")
    parser.add_argument("--cache-cap", type=int, default=None,
                        metavar="MiB",
                        help="byte cap (in MiB), per quantized layer, "
                             "for the campaign's derived "
                             "input-representation cache (im2col / "
                             "packed words); default 256")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="stream completed cells into a JSONL "
                             "journal; rerun with --resume to continue "
                             "an interrupted campaign (multi-series "
                             "experiments derive one sibling file per "
                             "series)")
    parser.add_argument("--resume", action="store_true",
                        help="allow continuing existing --journal files")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="extra attempts per campaign cell before it "
                             "is quarantined as NaN (default 2; 0 still "
                             "recovers lost workers, it just never "
                             "re-attempts a failing cell)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock budget; a cell "
                             "exceeding it counts as a failed attempt "
                             "and the pool is rebuilt (default: none)")
    parser.add_argument("--no-degrade", action="store_true",
                        help="fail instead of walking the executor "
                             "degradation ladder (shared_memory -> "
                             "multiprocessing -> serial) when a rung "
                             "keeps failing")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FLIM fault-injection platform (DAC'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    model_choices = ["lenet"] + model_names()

    p_run = sub.add_parser(
        "run", help="run a registered experiment (see: repro list)")
    p_run.add_argument("experiment",
                       help="registry name (repro list) — fig4a..fig4f, "
                            "fig5a..fig5c, sweep, table1/2, scenario, or "
                            "a zoo scenario name")
    p_run.add_argument("--param", action="append", default=[],
                       metavar="K=V",
                       help="experiment parameter override (repeatable); "
                            "see: repro describe <experiment>")
    p_run.add_argument("--quick", action="store_true",
                       help="apply the experiment's tiny smoke-test "
                            "parameter overrides")
    p_run.add_argument("--progress", action="store_true",
                       help="stream per-cell progress lines to stderr")
    p_run.add_argument("--out", default=None, metavar="PATH",
                       help="write the RunReport JSON to PATH")
    _add_engine_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    def _add_service_arguments(p, with_job: bool = True) -> None:
        """Connection options every service client command shares."""
        if with_job:
            p.add_argument("job", help="job id (from repro submit)")
        p.add_argument("--host", default="127.0.0.1",
                       help="service host (default 127.0.0.1)")
        p.add_argument("--port", type=int, default=8642,
                       help="service port (default 8642)")
        p.add_argument("--client", default="cli", metavar="NAME",
                       help="client identity for the per-client cache "
                            "budget (default: cli)")

    p_serve = sub.add_parser(
        "serve", help="run the campaign service (async job server over "
                      "the registry)")
    from .service.server import add_serve_arguments
    add_serve_arguments(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit an experiment to a running service; "
                       "prints the job id")
    p_submit.add_argument("experiment",
                          help="registry name (repro list)")
    p_submit.add_argument("--param", action="append", default=[],
                          metavar="K=V",
                          help="experiment parameter override (repeatable)")
    p_submit.add_argument("--quick", action="store_true",
                          help="apply the experiment's quick overrides")
    p_submit.add_argument("--durable", action="store_true",
                          help="journal the campaign in the server's "
                               "store so a killed server resumes it")
    _add_service_arguments(p_submit, with_job=False)
    p_submit.add_argument("--jobs", type=int, default=None, metavar="N")
    p_submit.add_argument("--executor", default=None,
                          choices=["serial", "multiprocessing",
                                   "shared_memory"])
    p_submit.add_argument("--backend", default="float",
                          choices=["float", "packed"])
    p_submit.add_argument("--cache-cap", type=int, default=None,
                          metavar="MiB")
    p_submit.add_argument("--retries", type=int, default=2, metavar="N")
    p_submit.add_argument("--job-timeout", type=float, default=None,
                          metavar="SECONDS")
    p_submit.add_argument("--no-degrade", action="store_true")
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="one job's record, or the whole job table")
    p_status.add_argument("job", nargs="?", default=None,
                          help="job id (omit to list every job)")
    _add_service_arguments(p_status, with_job=False)
    p_status.set_defaults(func=_cmd_status)

    p_watch = sub.add_parser(
        "watch", help="stream a job's events until it finishes "
                      "(reconnects across server restarts)")
    _add_service_arguments(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_fetch = sub.add_parser(
        "fetch", help="fetch and print a finished job's report")
    _add_service_arguments(p_fetch)
    p_fetch.add_argument("--out", default=None, metavar="PATH",
                         help="also write the report JSON to PATH")
    p_fetch.set_defaults(func=_cmd_fetch)

    p_cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job")
    _add_service_arguments(p_cancel)
    p_cancel.set_defaults(func=_cmd_cancel)

    p_trace = sub.add_parser(
        "trace", help="render a campaign journal's trace spans as a "
                      "span-tree timeline with per-phase totals")
    p_trace.add_argument("journal", metavar="JOURNAL",
                         help="journal JSONL written by an observed run")
    p_trace.set_defaults(func=_cmd_trace)

    p_list = sub.add_parser("list", help="the experiment registry")
    p_list.add_argument("--names", action="store_true",
                        help="bare names only (one per line, for scripts)")
    p_list.set_defaults(func=_cmd_list)

    p_desc = sub.add_parser(
        "describe", help="one experiment's parameters + example invocation")
    p_desc.add_argument("experiment")
    p_desc.set_defaults(func=_cmd_describe)

    p_report = sub.add_parser("report", help="crossbar mapping report")
    p_report.add_argument("--model", default="lenet", choices=model_choices)
    p_report.add_argument("--rows", type=int, default=40)
    p_report.add_argument("--cols", type=int, default=10)
    p_report.set_defaults(func=_cmd_report)

    p_vec = sub.add_parser("vectors", help="generate a fault-vector file")
    p_vec.add_argument("output")
    p_vec.add_argument("--model", default="lenet", choices=model_choices)
    p_vec.add_argument("--fault", default="bitflip",
                       choices=[k.value for k in FaultType])
    p_vec.add_argument("--rate", type=float, default=0.1)
    p_vec.add_argument("--count", type=int, default=1)
    p_vec.add_argument("--period", type=int, default=0)
    p_vec.add_argument("--rows", type=int, default=40)
    p_vec.add_argument("--cols", type=int, default=10)
    p_vec.add_argument("--seed", type=int, default=0)
    p_vec.set_defaults(func=_cmd_vectors)

    p_ins = sub.add_parser("inspect", help="print a fault-vector file")
    p_ins.add_argument("path")
    p_ins.set_defaults(func=_cmd_inspect)

    p_sweep = sub.add_parser(
        "sweep", help="[deprecated: use `run sweep`] accuracy sweep on "
                      "trained LeNet")
    p_sweep.add_argument("--fault", default="bitflip",
                         choices=["bitflip", "stuck_at"])
    p_sweep.add_argument("--rates", type=float, nargs="+",
                         default=[0.0, 0.1, 0.2, 0.3])
    p_sweep.add_argument("--repeats", type=int, default=5)
    p_sweep.add_argument("--images", type=int, default=300)
    p_sweep.add_argument("--rows", type=int, default=40)
    p_sweep.add_argument("--cols", type=int, default=10)
    _add_engine_arguments(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_scen = sub.add_parser(
        "scenarios", help="declarative lifetime/environment fault scenarios")
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    p_slist = scen_sub.add_parser("list", help="the scenario zoo")
    p_slist.set_defaults(func=_cmd_scenarios_list)
    p_srun = scen_sub.add_parser(
        "run", help="[deprecated: use `run <scenario-name>`] run a "
                    "scenario on the trained LeNet")
    p_srun.add_argument("name", nargs="?", default=None,
                        help="zoo scenario name (see: repro scenarios list)")
    p_srun.add_argument("--spec", default=None, metavar="FILE",
                        help="YAML/JSON scenario spec file instead of a "
                             "zoo name")
    p_srun.add_argument("--repeats", type=int, default=3)
    p_srun.add_argument("--images", type=int, default=300)
    p_srun.add_argument("--rows", type=int, default=40)
    p_srun.add_argument("--cols", type=int, default=10)
    p_srun.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(p_srun)
    p_srun.set_defaults(func=_cmd_scenarios_run)

    p_lint = sub.add_parser(
        "lint", help="AST-based invariant checker (determinism, "
                     "shared-memory lifecycle, event protocol)")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/ and "
                             "tests/ under --root)")
    p_lint.add_argument("--root", default=None, metavar="DIR",
                        help="repository root for relative paths and "
                             "per-module rules (default: cwd)")
    p_lint.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: "
                             "<root>/lint-baseline.json when present)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline waiving every "
                             "current finding")
    p_lint.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="lint only python files git reports changed "
                             "vs BASE (default HEAD) plus untracked ones")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_lint.set_defaults(func=_cmd_lint)

    p_t1 = sub.add_parser("table1", help="experimental setup (Table I)")
    p_t1.set_defaults(func=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="model characteristics (Table II)")
    p_t2.add_argument("--no-accuracy", action="store_true",
                      help="skip the (slow) accuracy measurement")
    p_t2.set_defaults(func=_cmd_table2)

    p_cost = sub.add_parser("cost", help="LIM energy/latency estimate")
    p_cost.add_argument("--model", default="lenet", choices=model_choices)
    p_cost.add_argument("--gate", default="imply", choices=["imply", "magic"])
    p_cost.add_argument("--rows", type=int, default=40)
    p_cost.add_argument("--cols", type=int, default=10)
    p_cost.set_defaults(func=_cmd_cost)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Dispatch a CLI invocation; exit codes are uniform (see module
    docstring): validation errors (any :class:`ValueError`, which
    includes ``ApiError`` and ``ScenarioError``) exit 2, runtime
    failures exit 1."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # downstream pipe closed (e.g. `| head`)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # uniform runtime-failure exit code
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
