"""Command-line interface to the FLIM platform.

Usage::

    python -m repro <command> [options]

Commands
--------
``report``        mapping report of a model (ops per crossbar, reuse)
``vectors``       generate an annotated fault-vector file for a model
``inspect``       print the contents of a fault-vector file
``sweep``         accuracy-vs-rate sweep on the trained LeNet
``scenarios``     declarative lifetime/environment scenarios (list / run)
``table1``        the adopted experimental setup (paper Table I)
``table2``        model characteristics (paper Table II)
``cost``          per-layer LIM energy/latency estimate of a model

Errors in user-provided inputs — malformed scenario specs, unknown zoo
names, journals that do not match the requested campaign — exit with
status 2; internal failures raise.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import markdown_table
from .core import (FaultGenerator, FaultSpec, FaultType, load_fault_vectors)
from .models import build_lenet, build_model, model_names

__all__ = ["main"]


def _resolve_model(name: str, seed: int = 0):
    if name == "lenet":
        return build_lenet(seed=seed)
    return build_model(name, seed=seed)


def _cmd_report(args) -> int:
    model = _resolve_model(args.model)
    generator = FaultGenerator(FaultSpec.bitflip(0.0),
                               rows=args.rows, cols=args.cols)
    entries = generator.report(model)
    header = ["layer", "crossbar", "parallel ops", "XNOR ops/image", "reuse"]
    rows = [(e["layer"], f"{e['crossbar'][0]}x{e['crossbar'][1]}",
             e["parallel_xnor_ops"], e["xnor_ops_per_image"], e["cell_reuse"])
            for e in entries]
    print(markdown_table(header, rows))
    return 0


def _build_spec(args) -> FaultSpec:
    kind = FaultType(args.fault)
    if kind == FaultType.BITFLIP:
        return FaultSpec.bitflip(args.rate, period=args.period)
    if kind == FaultType.STUCK_AT:
        return FaultSpec.stuck_at(args.rate)
    if kind == FaultType.FAULTY_ROWS:
        return FaultSpec.faulty_rows(args.count)
    return FaultSpec.faulty_columns(args.count)


def _cmd_vectors(args) -> int:
    model = _resolve_model(args.model)
    generator = FaultGenerator(_build_spec(args), rows=args.rows,
                               cols=args.cols, seed=args.seed)
    plan = generator.generate(model)
    generator.extract_vectors(plan, args.output)
    total = sum(masks.fault_counts()["bitflips"] + masks.fault_counts()["stuck"]
                for masks in plan.values())
    print(f"wrote {len(plan)} layer records ({total} faulty cells) "
          f"to {args.output}")
    return 0


def _cmd_inspect(args) -> int:
    plan = load_fault_vectors(args.path)
    header = ["layer", "crossbar", "bitflips", "period", "stuck",
              "flip semantics", "stuck semantics"]
    rows = []
    for name, masks in plan.items():
        counts = masks.fault_counts()
        rows.append((name, f"{masks.rows}x{masks.cols}", counts["bitflips"],
                     masks.flip_period, counts["stuck"],
                     masks.flip_semantics, masks.stuck_semantics))
    print(markdown_table(header, rows))
    return 0


def _journal_args_error(args) -> str | None:
    """Exit-2 message when --journal/--resume are inconsistent, else None
    (shared by every journaling command so the guard cannot drift)."""
    import os

    if args.resume and not args.journal:
        return "--resume requires --journal PATH (nothing to resume)"
    if (args.journal and not args.resume and os.path.exists(args.journal)
            and os.path.getsize(args.journal) > 0):
        return (f"journal {args.journal} already exists; "
                "pass --resume to continue it")
    return None


def _cmd_sweep(args) -> int:
    from .core import FaultCampaign
    from .experiments import get_mnist, trained_lenet

    error = _journal_args_error(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(args.images)
    executor = args.executor
    if executor is None:
        serial = args.jobs is None or args.jobs == 1
        executor = "serial" if serial else "multiprocessing"
    campaign = FaultCampaign(model, test.x, test.y,
                             rows=args.rows, cols=args.cols,
                             executor=executor,
                             n_jobs=args.jobs or None,
                             backend=args.backend,
                             cache_bytes=(args.cache_cap * 2 ** 20
                                          if args.cache_cap is not None
                                          else None))
    spec_factory = (FaultSpec.bitflip if args.fault == "bitflip"
                    else FaultSpec.stuck_at)
    progress = None
    if args.journal:
        def progress(done, total, cell):
            point, repeat, accuracy = cell
            print(f"[{done}/{total}] point {point} repeat {repeat}: "
                  f"{100 * accuracy:.1f}%", file=sys.stderr)
    try:
        result = campaign.run(spec_factory, xs=args.rates,
                              repeats=args.repeats, label=args.fault,
                              journal=args.journal, progress=progress)
    except ValueError as error:
        # e.g. resuming a journal written for a different campaign
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.journal:
        print(f"journal: {args.journal} "
              f"({result.meta['resumed_cells']} cells resumed)")
    print(f"baseline: {100 * result.baseline:.1f}%  "
          f"[{result.meta['executor']}/{result.meta['backend']}]")
    rows = [(f"{x:g}", f"{100 * m:.1f}", f"{100 * s:.1f}")
            for x, m, s in result.as_rows()]
    print(markdown_table(["rate", "accuracy %", "std %"], rows))
    return 0


def _cmd_scenarios_list(args) -> int:
    from .scenarios import get_scenario, scenario_names
    header = ["name", "checkpoints", "environments", "clauses", "story"]
    rows = []
    for name in scenario_names():
        scenario = get_scenario(name)
        clauses = (len(scenario.clauses)
                   + sum(len(e.clauses) for e in scenario.episodes))
        story = scenario.description
        if len(story) > 64:
            story = story[:61] + "..."
        rows.append((name, len(scenario.timeline.ages),
                     "+".join(scenario.episode_names()), clauses, story))
    print(markdown_table(header, rows))
    return 0


def _cmd_scenarios_run(args) -> int:
    from .experiments import get_mnist, trained_lenet
    from .scenarios import Scenario, ScenarioError, resolve_scenario, run_scenario

    if args.name is None and args.spec is None:
        print("error: name a zoo scenario or pass --spec FILE "
              "(see: repro scenarios list)", file=sys.stderr)
        return 2
    if args.name is not None and args.spec is not None:
        print(f"error: both a zoo name ({args.name!r}) and --spec given; "
              "pick one", file=sys.stderr)
        return 2
    error = _journal_args_error(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        scenario = (Scenario.from_file(args.spec) if args.spec
                    else resolve_scenario(args.name))
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    model = trained_lenet()
    _, test = get_mnist()
    test = test.subset(args.images)
    executor = args.executor
    if executor is None:
        serial = args.jobs is None or args.jobs == 1
        executor = "serial" if serial else "multiprocessing"
    progress = None
    if args.journal:
        def progress(done, total, cell):
            point, repeat, accuracy = cell
            print(f"[{done}/{total}] cell {point} repeat {repeat}: "
                  f"{100 * accuracy:.1f}%", file=sys.stderr)
    try:
        result = run_scenario(
            scenario, model, test.x, test.y, repeats=args.repeats,
            seed=args.seed, rows=args.rows, cols=args.cols,
            executor=executor, n_jobs=args.jobs or None,
            backend=args.backend,
            cache_bytes=(args.cache_cap * 2 ** 20
                         if args.cache_cap is not None else None),
            journal=args.journal, progress=progress)
    except (ScenarioError, ValueError) as error:
        # malformed scenario, unmapped layer targets, or resuming a
        # journal written for a different scenario/grid
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.journal:
        print(f"journal: {args.journal} "
              f"({result.sweep.meta['resumed_cells']} cells resumed)")
    print(f"scenario: {result.scenario.name}  "
          f"baseline: {100 * result.baseline:.1f}%  "
          f"[{result.meta['executor']}/{result.meta['backend']}]")
    multi = len(result.episodes) > 1
    header = ["age (cycles)", "stuck rate"]
    header += [f"{name} %" for name in result.episodes]
    if multi:
        header.append("blended %")
    rows = []
    for record in result.as_rows():
        row = [f"{record['age']:g}", f"{record['stuck_rate']:.4f}"]
        for name in result.episodes:
            episode = record["episodes"][name]
            row.append(f"{100 * episode['mean']:.1f}"
                       + (f" ±{100 * episode['std']:.1f}"
                          if args.repeats > 1 else ""))
        if multi:
            row.append(f"{100 * record['blended']:.1f}")
        rows.append(tuple(row))
    print(markdown_table(header, rows))
    return 0


def _cmd_table1(args) -> int:
    from .experiments.tables import table1_setup
    for key, value in table1_setup():
        print(f"{key:22s} {value}")
    return 0


def _cmd_table2(args) -> int:
    from .experiments.tables import table2_model_stats
    rows = table2_model_stats(measure_accuracy=not args.no_accuracy)
    header = ["model", "top1%", "size MB", "params", "MACs", "bin%"]
    print(markdown_table(header, [
        (r["model"], r["top1_pct"], r["size_mb"], r["params"], r["macs"],
         r["binarized_pct"]) for r in rows]))
    return 0


def _cmd_cost(args) -> int:
    from .lim import estimate_model_cost
    model = _resolve_model(args.model)
    costs = estimate_model_cost(model, rows=args.rows, cols=args.cols,
                                gate_family=args.gate)
    header = ["layer", "XNOR ops", "driver steps", "energy nJ", "latency us"]
    print(markdown_table(header, [c.row() for c in costs]))
    total_e = sum(c.energy_nj for c in costs)
    total_l = sum(c.latency_us for c in costs)
    print(f"\ntotal per image ({args.gate}): {total_e:.2f} nJ, "
          f"{total_l:.2f} us")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FLIM fault-injection platform (DAC'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    model_choices = ["lenet"] + model_names()

    p_report = sub.add_parser("report", help="crossbar mapping report")
    p_report.add_argument("--model", default="lenet", choices=model_choices)
    p_report.add_argument("--rows", type=int, default=40)
    p_report.add_argument("--cols", type=int, default=10)
    p_report.set_defaults(func=_cmd_report)

    p_vec = sub.add_parser("vectors", help="generate a fault-vector file")
    p_vec.add_argument("output")
    p_vec.add_argument("--model", default="lenet", choices=model_choices)
    p_vec.add_argument("--fault", default="bitflip",
                       choices=[k.value for k in FaultType])
    p_vec.add_argument("--rate", type=float, default=0.1)
    p_vec.add_argument("--count", type=int, default=1)
    p_vec.add_argument("--period", type=int, default=0)
    p_vec.add_argument("--rows", type=int, default=40)
    p_vec.add_argument("--cols", type=int, default=10)
    p_vec.add_argument("--seed", type=int, default=0)
    p_vec.set_defaults(func=_cmd_vectors)

    p_ins = sub.add_parser("inspect", help="print a fault-vector file")
    p_ins.add_argument("path")
    p_ins.set_defaults(func=_cmd_inspect)

    p_sweep = sub.add_parser("sweep", help="accuracy sweep on trained LeNet")
    p_sweep.add_argument("--fault", default="bitflip",
                         choices=["bitflip", "stuck_at"])
    p_sweep.add_argument("--rates", type=float, nargs="+",
                         default=[0.0, 0.1, 0.2, 0.3])
    p_sweep.add_argument("--repeats", type=int, default=5)
    p_sweep.add_argument("--images", type=int, default=300)
    p_sweep.add_argument("--rows", type=int, default=40)
    p_sweep.add_argument("--cols", type=int, default=10)
    p_sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="run the campaign on N worker processes "
                              "(default: 1 = in-process serial; 0 = all cores)")
    p_sweep.add_argument("--executor", default=None,
                         choices=["serial", "multiprocessing",
                                  "shared_memory"],
                         help="executor override (default: serial for "
                              "--jobs<=1, multiprocessing otherwise); "
                              "shared_memory attaches the test set "
                              "zero-copy in every worker")
    p_sweep.add_argument("--backend", default="float",
                         choices=["float", "packed"],
                         help="inference backend: float GEMM or packed "
                              "uint64 XNOR/popcount (bit-identical)")
    p_sweep.add_argument("--cache-cap", type=int, default=None,
                         metavar="MiB",
                         help="byte cap (in MiB), per quantized layer, "
                              "for the campaign's derived "
                              "input-representation cache (im2col / "
                              "packed words); default 256")
    p_sweep.add_argument("--journal", default=None, metavar="PATH",
                         help="stream completed cells into a JSONL journal; "
                              "an interrupted sweep rerun with the same "
                              "journal (--resume) skips recorded cells")
    p_sweep.add_argument("--resume", action="store_true",
                         help="allow continuing an existing --journal file")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_scen = sub.add_parser(
        "scenarios", help="declarative lifetime/environment fault scenarios")
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    p_slist = scen_sub.add_parser("list", help="the scenario zoo")
    p_slist.set_defaults(func=_cmd_scenarios_list)
    p_srun = scen_sub.add_parser(
        "run", help="run a scenario on the trained LeNet; prints the "
                    "per-checkpoint accuracy trajectory")
    p_srun.add_argument("name", nargs="?", default=None,
                        help="zoo scenario name (see: repro scenarios list)")
    p_srun.add_argument("--spec", default=None, metavar="FILE",
                        help="YAML/JSON scenario spec file instead of a "
                             "zoo name")
    p_srun.add_argument("--repeats", type=int, default=3)
    p_srun.add_argument("--images", type=int, default=300)
    p_srun.add_argument("--rows", type=int, default=40)
    p_srun.add_argument("--cols", type=int, default=10)
    p_srun.add_argument("--seed", type=int, default=0)
    p_srun.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run the campaign on N worker processes "
                             "(default: 1 = in-process serial; 0 = all cores)")
    p_srun.add_argument("--executor", default=None,
                        choices=["serial", "multiprocessing",
                                 "shared_memory"],
                        help="executor override (default: serial for "
                             "--jobs<=1, multiprocessing otherwise)")
    p_srun.add_argument("--backend", default="float",
                        choices=["float", "packed"],
                        help="inference backend: float GEMM or packed "
                             "uint64 XNOR/popcount (bit-identical)")
    p_srun.add_argument("--cache-cap", type=int, default=None, metavar="MiB",
                        help="byte cap (in MiB), per quantized layer, for "
                             "the campaign's input-representation cache")
    p_srun.add_argument("--journal", default=None, metavar="PATH",
                        help="stream completed cells into a JSONL journal; "
                             "rerun with --resume to continue an "
                             "interrupted trajectory")
    p_srun.add_argument("--resume", action="store_true",
                        help="allow continuing an existing --journal file")
    p_srun.set_defaults(func=_cmd_scenarios_run)

    p_t1 = sub.add_parser("table1", help="experimental setup (Table I)")
    p_t1.set_defaults(func=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="model characteristics (Table II)")
    p_t2.add_argument("--no-accuracy", action="store_true",
                      help="skip the (slow) accuracy measurement")
    p_t2.set_defaults(func=_cmd_table2)

    p_cost = sub.add_parser("cost", help="LIM energy/latency estimate")
    p_cost.add_argument("--model", default="lenet", choices=model_choices)
    p_cost.add_argument("--gate", default="imply", choices=["imply", "magic"])
    p_cost.add_argument("--rows", type=int, default=40)
    p_cost.add_argument("--cols", type=int, default=10)
    p_cost.set_defaults(func=_cmd_cost)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
