"""Result handling: metrics, ASCII plotting, CSV export, runtime accounting."""

from .metrics import (accuracy, accuracy_drop_curve, critical_x, degradation,
                      top_k_accuracy)
from .plotting import ascii_bars, ascii_plot, markdown_table, write_csv
from .runtime import RuntimeSample, extrapolate, measure, speedup_table

__all__ = [
    "accuracy", "top_k_accuracy", "degradation", "critical_x",
    "accuracy_drop_curve",
    "ascii_plot", "ascii_bars", "write_csv", "markdown_table",
    "RuntimeSample", "measure", "extrapolate", "speedup_table",
]
