"""Accuracy and degradation metrics for fault-injection studies."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "degradation", "critical_x",
           "accuracy_drop_curve"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of logits against integer labels."""
    return float((logits.argmax(axis=-1) == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label ranks in the top-k logits."""
    top = np.argsort(logits, axis=-1)[:, -k:]
    return float((top == labels[:, None]).any(axis=1).mean())


def degradation(baseline: float, faulty: float) -> float:
    """Absolute accuracy loss caused by the injected faults."""
    return baseline - faulty


def accuracy_drop_curve(xs, means, baseline: float) -> list[tuple[float, float]]:
    """(x, degradation) pairs of a sweep."""
    return [(float(x), degradation(baseline, float(m))) for x, m in zip(xs, means)]


def critical_x(xs, means, threshold: float) -> float | None:
    """First sweep value at which mean accuracy falls below ``threshold``.

    Linear interpolation between the bracketing sweep points; ``None`` if
    the curve never crosses.  This is the "tolerable fault level" the
    paper's conclusion refers to.
    """
    xs = np.asarray(xs, dtype=float)
    means = np.asarray(means, dtype=float)
    below = means < threshold
    if not below.any():
        return None
    first = int(np.argmax(below))
    if first == 0:
        return float(xs[0])
    x0, x1 = xs[first - 1], xs[first]
    y0, y1 = means[first - 1], means[first]
    if y0 == y1:
        return float(x1)
    t = (y0 - threshold) / (y0 - y1)
    return float(x0 + t * (x1 - x0))
