"""Runtime measurement and extrapolation for the Fig. 4f comparison.

The paper measures FLIM and vanilla Larq on fifty full passes of the
10,000-image MNIST test set, but "estimate[s] the total run time of
X-Fault based on five images" — the device-level simulator is too slow to
run in full.  :func:`extrapolate` reproduces that protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["RuntimeSample", "measure", "extrapolate", "speedup_table"]


@dataclass(frozen=True)
class RuntimeSample:
    """One platform's runtime for a (possibly extrapolated) workload."""

    platform: str
    seconds: float
    images: int
    extrapolated_from: int | None = None

    @property
    def seconds_per_image(self) -> float:
        return self.seconds / self.images

    def describe(self) -> str:
        note = ("" if self.extrapolated_from is None
                else f" (extrapolated from {self.extrapolated_from} images)")
        return (f"{self.platform}: {self.seconds:.4g}s for {self.images} images"
                f" = {self.seconds_per_image * 1e3:.4g} ms/image{note}")


def measure(platform: str, fn, images: int, repeat: int = 1) -> RuntimeSample:
    """Time ``fn()`` (which processes ``images`` images) ``repeat`` times.

    The best (minimum) wall-clock time is reported, the standard defence
    against scheduler noise on a busy machine.
    """
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return RuntimeSample(platform, best, images)


def extrapolate(sample: RuntimeSample, total_images: int) -> RuntimeSample:
    """Scale a small-sample measurement to the full workload (paper's §IV)."""
    factor = total_images / sample.images
    return RuntimeSample(
        platform=sample.platform,
        seconds=sample.seconds * factor,
        images=total_images,
        extrapolated_from=sample.images)


def speedup_table(samples: list[RuntimeSample],
                  reference: str) -> list[tuple[str, float, float]]:
    """(platform, seconds, speedup-vs-reference) rows, like Fig. 4f.

    ``reference`` names the slow baseline (X-Fault in the paper); its own
    speedup is 1.
    """
    by_name = {sample.platform: sample for sample in samples}
    if reference not in by_name:
        raise KeyError(f"reference platform {reference!r} not among samples")
    base = by_name[reference].seconds
    return [(sample.platform, sample.seconds, base / sample.seconds)
            for sample in samples]
