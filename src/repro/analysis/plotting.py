"""Terminal-friendly result rendering: ASCII plots, CSV and markdown.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers render them without any plotting dependency.
"""

from __future__ import annotations

import csv

import numpy as np

__all__ = ["ascii_plot", "ascii_bars", "write_csv", "markdown_table"]

_MARKS = "ox+*#@%&"


def ascii_plot(series: dict[str, tuple], width: int = 64, height: int = 18,
               title: str = "", x_label: str = "x", y_label: str = "y",
               y_range: tuple[float, float] | None = None) -> str:
    """Render labelled (xs, ys) series as an ASCII line chart.

    ``series`` maps label -> (xs, ys).  Each series gets its own marker;
    the legend maps markers back to labels.
    """
    if not series:
        raise ValueError("no series to plot")
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    if y_range is not None:
        y_min, y_max = y_range
    else:
        y_min, y_max = float(all_y.min()), float(all_y.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        prefix = top_label.rjust(pad) if r == 0 else (
            bottom_label.rjust(pad) if r == height - 1 else " " * pad)
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * pad + f" +{'-' * width}+")
    lines.append(" " * pad + f"  {x_min:<.3g}{x_label:^{max(0, width - 12)}}{x_max:>.3g}")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]}={label}"
                        for i, label in enumerate(series))
    lines.append(f"{' ' * pad}  [{y_label}]  {legend}")
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], width: int = 50, title: str = "",
               log: bool = False, unit: str = "") -> str:
    """Horizontal bar chart; ``log=True`` scales bars by log10 (Fig. 4f)."""
    if not values:
        raise ValueError("no values to plot")
    magnitudes = {k: (np.log10(max(v, 1e-12)) if log else v)
                  for k, v in values.items()}
    low = min(0.0, min(magnitudes.values()))
    high = max(magnitudes.values())
    span = (high - low) or 1.0
    name_pad = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        filled = int(round((magnitudes[key] - low) / span * width))
        lines.append(f"{key.rjust(name_pad)} |{'#' * filled:<{width}}| "
                     f"{value:.4g}{unit}")
    return "\n".join(lines)


def write_csv(path, header: list[str], rows: list[tuple]) -> None:
    """Write experiment rows to CSV (one file per figure/table)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def markdown_table(header: list[str], rows: list[tuple]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    def fmt(cell):
        return f"{cell:.4g}" if isinstance(cell, float) else str(cell)

    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)
