"""Sequential model container.

Composite layers (residual / dense blocks) may nest layers arbitrarily
deep; :meth:`Sequential.all_layers` flattens the hierarchy in a stable
depth-first order, which is also the order used for weight (de)serialization.
"""

from __future__ import annotations

import numpy as np

from .layers import BatchNorm, Layer

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers with build/predict/evaluate/save support."""

    def __init__(self, layers: list[Layer], name: str = "model"):
        self.layers = list(layers)
        self.name = name
        self.built = False
        self.input_shape: tuple[int, ...] | None = None
        #: bumped whenever parameters change in place (training steps,
        #: weight loads) — lets long-lived consumers (e.g. the campaign
        #: evaluator) detect that cached derived state went stale
        self.weights_version = 0

    # -- construction ----------------------------------------------------
    def build(self, input_shape: tuple[int, ...], seed: int | np.random.Generator = 0):
        """Build every layer for ``input_shape`` (excluding the batch axis)."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        shape = tuple(input_shape)
        self.input_shape = shape
        for layer in self.layers:
            if not layer.built:
                layer.build(shape, rng)
            shape = layer.compute_output_shape(shape)
        self.output_shape = shape
        self.built = True
        return self

    def all_layers(self) -> list[Layer]:
        """All layers, flattened depth-first (parents before children)."""
        result: list[Layer] = []

        def visit(layer: Layer):
            result.append(layer)
            for child in layer.sub_layers():
                visit(child)

        for layer in self.layers:
            visit(layer)
        return result

    def layers_of_type(self, cls) -> list[Layer]:
        """All (possibly nested) layers that are instances of ``cls``."""
        return [layer for layer in self.all_layers() if isinstance(layer, cls)]

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    # -- computation -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError("call build(input_shape) before forward()")
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.weights_version += 1  # an optimizer step follows
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference returning stacked outputs."""
        outputs = [
            self.forward(x[i:i + batch_size])
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy of integer labels ``y``.

        Streams batch-by-batch (argmax per batch, no logit concatenation)
        — same result as ``predict(...).argmax(-1)``, less memory traffic.
        """
        correct = 0
        for i in range(0, len(x), batch_size):
            logits = self.forward(x[i:i + batch_size])
            correct += int((logits.argmax(axis=-1) == y[i:i + batch_size]).sum())
        return correct / len(x)

    def set_execution_backend(self, backend: str) -> "Sequential":
        """Switch every backend-aware layer (e.g. quantized layers with a
        packed XNOR/popcount fast path) to ``backend`` ('float'/'packed')."""
        if backend not in ("float", "packed"):
            raise ValueError(f"unknown execution backend {backend!r}; "
                             "use 'float' or 'packed'")
        for layer in self.all_layers():
            if hasattr(layer, "execution_backend"):
                layer.execution_backend = backend
        return self

    # -- introspection -----------------------------------------------------
    def summary(self) -> str:
        """Human-readable table of layers, output shapes and param counts."""
        lines = [f"Model: {self.name}", f"{'layer':<28}{'output shape':<20}{'params':>10}"]
        lines.append("-" * 58)
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.compute_output_shape(shape)
            lines.append(f"{layer.name:<28}{str(shape):<20}{layer.num_params():>10}")
        lines.append("-" * 58)
        lines.append(f"total params: {self.num_params()}")
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of every parameter and batch-norm statistic."""
        state: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.all_layers()):
            for key, value in layer.params.items():
                state[f"l{index}.{key}"] = value
            if isinstance(layer, BatchNorm) and layer.built:
                state[f"l{index}.running_mean"] = layer.running_mean
                state[f"l{index}.running_var"] = layer.running_var
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.weights_version += 1
        for index, layer in enumerate(self.all_layers()):
            for key in layer.params:
                layer.params[key][...] = state[f"l{index}.{key}"]
            if isinstance(layer, BatchNorm) and layer.built:
                layer.running_mean[...] = state[f"l{index}.running_mean"]
                layer.running_var[...] = state[f"l{index}.running_var"]
            if hasattr(layer, "_invalidate_caches"):
                layer._invalidate_caches()  # params changed in place

    def save_weights(self, path) -> None:
        np.savez_compressed(path, **self.state_dict())

    def load_weights(self, path) -> None:
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})
