"""Numpy neural-network engine — the TensorFlow/Keras substitute.

Provides NHWC convolutions, dense layers, batch-norm, pooling, a sequential
model container and a training loop with straight-through-estimator support
for binarized networks.
"""

from . import initializers, losses, ops, optimizers
from .layers import (AvgPool2D, BatchNorm, ChannelScale, Conv2D, Dense,
                     Flatten, GlobalAvgPool2D, Layer, MaxPool2D, ReLU, Sign)
from .model import Sequential
from .optimizers import SGD, Adam
from .training import Trainer, TrainingHistory

__all__ = [
    "ops", "initializers", "losses", "optimizers",
    "Layer", "Conv2D", "Dense", "BatchNorm", "ReLU", "Sign",
    "MaxPool2D", "AvgPool2D", "GlobalAvgPool2D", "Flatten", "ChannelScale",
    "Sequential", "SGD", "Adam", "Trainer", "TrainingHistory",
]
