"""Low-level tensor operations for the numpy NN engine.

All image tensors use the NHWC layout ``(batch, height, width, channels)``,
matching the TensorFlow convention the paper's stack (TF 2.8 + Larq) uses.
Convolutions are implemented with im2col + GEMM, which is both the fastest
pure-numpy formulation and the one that maps one-to-one onto the XNOR
operation stream scheduled onto crossbars (each GEMM multiply-accumulate
term is one XNOR op in the binary domain).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "same_padding",
    "pad_nhwc",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "maxpool2d",
    "maxpool2d_backward",
    "avgpool2d",
    "avgpool2d_backward",
]


def conv_output_size(size: int, kernel: int, stride: int, pad_total: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + pad_total - kernel) // stride + 1


def same_padding(size: int, kernel: int, stride: int) -> tuple[int, int]:
    """TF-style SAME padding (before, after) for one spatial axis."""
    out_size = -(-size // stride)  # ceil division
    pad_total = max((out_size - 1) * stride + kernel - size, 0)
    before = pad_total // 2
    return before, pad_total - before


def pad_nhwc(x: np.ndarray, pad_h: tuple[int, int], pad_w: tuple[int, int],
             value: float = 0.0) -> np.ndarray:
    """Zero-pad the spatial axes of an NHWC tensor."""
    if pad_h == (0, 0) and pad_w == (0, 0):
        return x
    return np.pad(x, ((0, 0), pad_h, pad_w, (0, 0)), constant_values=value)


def _resolve_padding(height: int, width: int, kh: int, kw: int,
                     stride: int, padding: str) -> tuple[tuple[int, int], tuple[int, int]]:
    if padding == "valid":
        return (0, 0), (0, 0)
    if padding == "same":
        return same_padding(height, kh, stride), same_padding(width, kw, stride)
    raise ValueError(f"unknown padding mode {padding!r}; use 'valid' or 'same'")


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1,
           padding: str = "valid") -> tuple[np.ndarray, tuple[int, int]]:
    """Extract convolution patches from an NHWC tensor.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(n * oh * ow, kh * kw * c)``.  Column ordering is (kh, kw, c), i.e. the
    channel index varies fastest — the same ordering ``conv2d`` expects for
    its ``(kh, kw, c_in, c_out)`` kernels.
    """
    n, h, w, c = x.shape
    pad_h, pad_w = _resolve_padding(h, w, kh, kw, stride, padding)
    x = pad_nhwc(x, pad_h, pad_w)
    ph, pw = x.shape[1], x.shape[2]
    oh = conv_output_size(h, kh, stride, sum(pad_h))
    ow = conv_output_size(w, kw, stride, sum(pad_w))
    # windows: (n, ph-kh+1, pw-kw+1, c, kh, kw)
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(1, 2))
    windows = windows[:, ::stride, ::stride]
    # -> (n, oh, ow, kh, kw, c)
    windows = windows.transpose(0, 1, 2, 4, 5, 3)
    cols = np.ascontiguousarray(windows).reshape(n * oh * ow, kh * kw * c)
    return cols, (oh, ow)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kh: int, kw: int,
           stride: int = 1, padding: str = "valid") -> np.ndarray:
    """Scatter-add patch gradients back to an NHWC tensor (inverse of im2col)."""
    n, h, w, c = x_shape
    pad_h, pad_w = _resolve_padding(h, w, kh, kw, stride, padding)
    ph = h + sum(pad_h)
    pw = w + sum(pad_w)
    oh = conv_output_size(h, kh, stride, sum(pad_h))
    ow = conv_output_size(w, kw, stride, sum(pad_w))
    patches = cols.reshape(n, oh, ow, kh, kw, c)
    out = np.zeros((n, ph, pw, c), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, i:i_max:stride, j:j_max:stride, :] += patches[:, :, :, i, j, :]
    return out[:, pad_h[0]:ph - pad_h[1], pad_w[0]:pw - pad_w[1], :]


def conv2d(x: np.ndarray, kernel: np.ndarray, stride: int = 1,
           padding: str = "valid") -> np.ndarray:
    """2-D convolution (cross-correlation, TF semantics) of NHWC input.

    ``kernel`` has shape ``(kh, kw, c_in, c_out)``.
    """
    kh, kw, c_in, c_out = kernel.shape
    if x.shape[3] != c_in:
        raise ValueError(f"input channels {x.shape[3]} != kernel channels {c_in}")
    cols, (oh, ow) = im2col(x, kh, kw, stride, padding)
    out = cols @ kernel.reshape(kh * kw * c_in, c_out)
    return out.reshape(x.shape[0], oh, ow, c_out)


def conv2d_backward(dout: np.ndarray, x: np.ndarray, kernel: np.ndarray,
                    stride: int = 1, padding: str = "valid"
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of ``conv2d`` w.r.t. input and kernel.

    Returns ``(dx, dkernel)``.
    """
    kh, kw, c_in, c_out = kernel.shape
    n, oh, ow, _ = dout.shape
    cols, _ = im2col(x, kh, kw, stride, padding)
    dout_flat = dout.reshape(n * oh * ow, c_out)
    dkernel = (cols.T @ dout_flat).reshape(kernel.shape)
    dcols = dout_flat @ kernel.reshape(kh * kw * c_in, c_out).T
    dx = col2im(dcols, x.shape, kh, kw, stride, padding)
    return dx, dkernel


def _pool_view(x: np.ndarray, size: int) -> np.ndarray:
    """Reshape NHWC into non-overlapping (size x size) pooling windows."""
    n, h, w, c = x.shape
    if h % size or w % size:
        raise ValueError(
            f"pooling size {size} must divide spatial dims {(h, w)}; "
            "pad the input first")
    return x.reshape(n, h // size, size, w // size, size, c)


def maxpool2d(x: np.ndarray, size: int = 2,
              with_mask: bool = True) -> tuple[np.ndarray, np.ndarray | None]:
    """Non-overlapping max pooling.  Returns ``(out, argmax_mask)``.

    The mask has the input's shape, with ones at the positions that won the
    max (ties broken toward the first occurrence), and is consumed by
    :func:`maxpool2d_backward`.  Building it costs more than the pooling
    itself, so inference passes set ``with_mask=False`` and get
    ``(out, None)``.
    """
    view = _pool_view(x, size)
    out = view.max(axis=(2, 4))
    if not with_mask:
        return out, None
    expanded = out[:, :, None, :, None, :]
    winners = (view == expanded)
    # break ties: keep only the first winner per window
    flat = winners.reshape(*winners.shape[:2], size, winners.shape[3], size, -1)
    n, oh, _, ow, _, c = flat.shape
    flat2 = winners.transpose(0, 1, 3, 5, 2, 4).reshape(n, oh, ow, c, size * size)
    first = np.zeros_like(flat2)
    idx = flat2.argmax(axis=-1)
    np.put_along_axis(first, idx[..., None], 1, axis=-1)
    mask = first.reshape(n, oh, ow, c, size, size).transpose(0, 1, 4, 2, 5, 3)
    mask = mask.reshape(x.shape)
    return out, mask.astype(x.dtype)


def maxpool2d_backward(dout: np.ndarray, mask: np.ndarray, size: int = 2) -> np.ndarray:
    """Route pooled gradients back to the max positions recorded in ``mask``."""
    upsampled = np.repeat(np.repeat(dout, size, axis=1), size, axis=2)
    return upsampled * mask


def avgpool2d(x: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping average pooling."""
    return _pool_view(x, size).mean(axis=(2, 4))


def avgpool2d_backward(dout: np.ndarray, size: int = 2) -> np.ndarray:
    """Gradient of average pooling: spread evenly over each window."""
    upsampled = np.repeat(np.repeat(dout, size, axis=1), size, axis=2)
    return upsampled / (size * size)
